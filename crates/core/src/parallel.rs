//! Shared-memory parallel execution of the fused kernel.
//!
//! On the Sunway machines fine-grained parallelism belongs to the CPE cluster
//! (emulated in `swlb-arch`); on an ordinary multicore host the natural analog is
//! a thread per y-slab. The pull scheme makes this easy to reason about: a step
//! reads only from `src` and writes only to `dst`, and slabs with disjoint y-ranges
//! write disjoint `dst` cells, so the only unsafe code needed is a `Send + Sync`
//! raw-pointer wrapper around the destination buffer.
//!
//! Threads are spawned per step with `crossbeam::scope`; at the grid sizes where
//! parallelism pays (≥ a few hundred thousand cells per step) the spawn cost is
//! noise, and the design stays dead-simple and panic-safe.

use crate::boundary::NodeKind;
use crate::collision::{collide, CollisionKind};
use crate::equilibrium::equilibrium;
use crate::flags::FlagField;
use crate::kernels::{gather_pull, MAX_Q};
use crate::lattice::Lattice;
use crate::layout::PopField;
use crate::Scalar;

/// A `Send + Sync` writer over a population field's raw storage.
///
/// # Safety contract
/// Constructed from a uniquely-borrowed field; concurrent users must write
/// disjoint `(cell, q)` index sets. The parallel driver below guarantees this by
/// assigning disjoint y-slabs.
struct SharedWriter {
    ptr: *mut Scalar,
    len: usize,
}

// SAFETY: the pointer refers to a buffer whose unique borrow is held (and not
// otherwise used) for the lifetime of the scope; disjointness of writes is
// guaranteed by the slab partition.
unsafe impl Send for SharedWriter {}
unsafe impl Sync for SharedWriter {}

impl SharedWriter {
    /// # Safety
    /// `index < len` and no other thread writes the same index concurrently.
    #[inline(always)]
    unsafe fn write(&self, index: usize, v: Scalar) {
        debug_assert!(index < self.len);
        unsafe { *self.ptr.add(index) = v };
    }
}

/// Thread-count configuration for the parallel driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Use exactly `threads` worker threads (≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Use the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Partition `0..ny` into at most `threads` contiguous, balanced slabs.
    pub fn slabs(&self, ny: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.threads.min(ny).max(1);
        let base = ny / n;
        let extra = ny % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// One fused stream+collide step executed by all worker threads.
    ///
    /// Produces exactly the same `dst` state as [`crate::kernels::fused_step`]
    /// (verified by tests and property tests), independent of thread count.
    pub fn fused_step<L: Lattice, F: PopField<L>>(
        &self,
        flags: &FlagField,
        src: &F,
        dst: &mut F,
        collision: &CollisionKind,
    ) {
        let dims = flags.dims();
        let slabs = self.slabs(dims.ny);
        if slabs.len() <= 1 {
            crate::kernels::fused_step(flags, src, dst, collision);
            return;
        }
        // `index_of` must not depend on &mut-ness; capture the mapping up front.
        let raw = dst.raw_mut();
        let writer = SharedWriter {
            ptr: raw.as_mut_ptr(),
            len: raw.len(),
        };
        let writer = &writer;
        // A fresh clone-free handle to compute layout offsets: the layout mapping
        // is a pure function of dims, so we use `src` (same dims) for it.
        crossbeam::scope(|scope| {
            for ys in slabs {
                scope.spawn(move |_| {
                    step_slab::<L, F>(flags, src, writer, collision, ys);
                });
            }
        })
        .expect("worker thread panicked");
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::auto()
    }
}

/// Per-thread body: fused step over one y-slab, writing through the shared writer.
fn step_slab<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    src: &F,
    writer: &SharedWriter,
    collision: &CollisionKind,
    ys: std::ops::Range<usize>,
) {
    let dims = flags.dims();
    let mut f = [0.0; MAX_Q];
    for y in ys {
        for x in 0..dims.nx {
            for z in 0..dims.nz {
                let this = dims.idx(x, y, z);
                let kind = flags.kind(this);
                match kind {
                    NodeKind::Fluid
                    | NodeKind::VelocityNebb { .. }
                    | NodeKind::PressureNebb { .. } => {
                        gather_pull::<L, F>(flags, src, x, y, z, &mut f[..L::Q]);
                        crate::kernels::reconstruct_nebb::<L>(&mut f[..L::Q], kind);
                        collide::<L>(&mut f[..L::Q], collision);
                        for q in 0..L::Q {
                            // SAFETY: (this, q) is inside this thread's slab.
                            unsafe { writer.write(src.index_of(this, q), f[q]) };
                        }
                    }
                    NodeKind::Wall | NodeKind::MovingWall { .. } => {
                        for q in 0..L::Q {
                            unsafe {
                                writer.write(src.index_of(this, q), src.get(this, q))
                            };
                        }
                    }
                    NodeKind::Inlet { rho, u } => {
                        equilibrium::<L>(rho, u, &mut f[..L::Q]);
                        for q in 0..L::Q {
                            unsafe { writer.write(src.index_of(this, q), f[q]) };
                        }
                    }
                    NodeKind::Outlet { normal } => {
                        let m = dims
                            .neighbor_checked(x, y, z, [-normal[0], -normal[1], -normal[2]])
                            .map(|[a, b, c]| dims.idx(a, b, c))
                            .unwrap_or(this);
                        for q in 0..L::Q {
                            unsafe {
                                writer.write(src.index_of(this, q), src.get(m, q))
                            };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::BgkParams;
    use crate::geometry::GridDims;
    use crate::kernels::fused_step;
    use crate::lattice::{D2Q9, D3Q19};
    use crate::layout::{AosField, SoaField};

    fn random_field<L: Lattice, F: PopField<L>>(dims: GridDims, seed: u64) -> F {
        let mut field = F::new(dims);
        let mut s = seed.max(1);
        for cell in 0..field.cells() {
            for q in 0..L::Q {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                let r = (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as Scalar
                    / (1u64 << 53) as Scalar;
                field.set(cell, q, 0.02 + 0.05 * r);
            }
        }
        field
    }

    #[test]
    fn slab_partition_is_balanced_and_covers() {
        let pool = ThreadPool::new(4);
        let slabs = pool.slabs(10);
        assert_eq!(slabs.len(), 4);
        let total: usize = slabs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(slabs[0], 0..3);
        assert_eq!(slabs.last().unwrap().end, 10);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = slabs.iter().map(|r| r.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn more_threads_than_rows_degrades_gracefully() {
        let pool = ThreadPool::new(16);
        let slabs = pool.slabs(3);
        assert_eq!(slabs.len(), 3);
        assert!(slabs.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn parallel_matches_serial_exactly_soa() {
        let dims = GridDims::new(9, 11, 5);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        flags.set(4, 5, 2, NodeKind::Wall);
        let src: SoaField<D3Q19> = random_field(dims, 42);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));

        let mut serial = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut serial, &coll);

        for threads in [1, 2, 3, 8] {
            let mut par = SoaField::<D3Q19>::new(dims);
            ThreadPool::new(threads).fused_step(&flags, &src, &mut par, &coll);
            for c in 0..dims.cells() {
                for q in 0..19 {
                    assert_eq!(
                        serial.get(c, q),
                        par.get(c, q),
                        "threads={threads} cell={c} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_exactly_aos_with_io_boundaries() {
        let dims = GridDims::new(8, 6, 4);
        let mut flags = FlagField::new(dims);
        flags.paint_channel_walls_y();
        flags.paint_inflow_outflow_x(1.0, [0.03, 0.0, 0.0]);
        let src: AosField<D3Q19> = random_field(dims, 7);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.65));

        let mut serial = AosField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut serial, &coll);
        let mut par = AosField::<D3Q19>::new(dims);
        ThreadPool::new(4).fused_step(&flags, &src, &mut par, &coll);
        for c in 0..dims.cells() {
            for q in 0..19 {
                assert_eq!(serial.get(c, q), par.get(c, q));
            }
        }
    }

    #[test]
    fn parallel_2d_with_moving_lid() {
        let dims = GridDims::new2d(16, 16);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        flags.paint_lid([0.1, 0.0, 0.0]);
        let src: SoaField<D2Q9> = random_field(dims, 3);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));

        let mut serial = SoaField::<D2Q9>::new(dims);
        fused_step(&flags, &src, &mut serial, &coll);
        let mut par = SoaField::<D2Q9>::new(dims);
        ThreadPool::new(3).fused_step(&flags, &src, &mut par, &coll);
        for c in 0..dims.cells() {
            for q in 0..9 {
                assert_eq!(serial.get(c, q), par.get(c, q));
            }
        }
    }

    #[test]
    fn auto_pool_reports_at_least_one_thread() {
        assert!(ThreadPool::auto().threads() >= 1);
        assert!(ThreadPool::default().threads() >= 1);
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }
}
