//! Boundary condition kinds.
//!
//! SunwayLB's pre-processing module classifies every lattice node before the run
//! starts (§IV-B: "boundary conditions processing"); the solver then dispatches on
//! the node kind inside the fused kernel. We implement the classical set used by
//! the paper's cases:
//!
//! * **halfway bounce-back** solid walls (cylinder, Suboff hull, buildings),
//! * **moving walls** (lid-driven cavity validation),
//! * **equilibrium velocity inlets** (wind inflow at 8 m/s in §V-C),
//! * **zero-gradient outlets**,
//! * **periodic** boundaries (the default — a pull across the domain edge wraps).

use crate::Scalar;

/// Classification of a lattice node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Bulk fluid: stream + collide.
    Fluid,
    /// Solid node: neighbors pulling *from* it bounce back instead (halfway
    /// bounce-back). The node's own populations are never used.
    Wall,
    /// Solid node moving with the given wall velocity; bounce-back with the
    /// standard momentum correction `6 w_q ρ₀ (c_q · u_w)`.
    MovingWall {
        /// Wall velocity in lattice units.
        u: [Scalar; 3],
    },
    /// Velocity inlet: the node is reset to `f_eq(ρ, u)` every step.
    Inlet {
        /// Imposed density (usually 1.0).
        rho: Scalar,
        /// Imposed velocity in lattice units.
        u: [Scalar; 3],
    },
    /// Zero-gradient outflow: the node copies the macroscopic state of its
    /// interior neighbor (at `x − normal`) and is set to the corresponding
    /// equilibrium.
    Outlet {
        /// Outward normal of the boundary face (unit lattice vector).
        normal: [i32; 3],
    },
    /// Non-equilibrium bounce-back (Zou–He-type) **velocity** boundary: after
    /// streaming, the populations entering from outside are reconstructed from
    /// the known ones so the imposed velocity is realized exactly (unlike the
    /// soft equilibrium [`NodeKind::Inlet`]); the node then collides normally.
    /// See [`crate::nebb`].
    VelocityNebb {
        /// Imposed velocity (lattice units).
        u: [Scalar; 3],
        /// Outward normal of the boundary face (unit lattice vector).
        normal: [i32; 3],
    },
    /// Non-equilibrium bounce-back **pressure** boundary: the density is
    /// imposed, the normal velocity is solved from the known populations, and
    /// the unknown populations are reconstructed. See [`crate::nebb`].
    PressureNebb {
        /// Imposed density (pressure = ρ/3).
        rho: Scalar,
        /// Outward normal of the boundary face (unit lattice vector).
        normal: [i32; 3],
    },
}

impl NodeKind {
    /// Whether the node is solid (wall or moving wall).
    #[inline(always)]
    pub fn is_solid(&self) -> bool {
        matches!(self, NodeKind::Wall | NodeKind::MovingWall { .. })
    }

    /// Whether the node carries fluid populations that evolve by stream+collide.
    #[inline(always)]
    pub fn is_fluid(&self) -> bool {
        matches!(self, NodeKind::Fluid)
    }

    /// Whether the node is a non-equilibrium bounce-back boundary (streams,
    /// reconstructs its unknown populations, then collides).
    #[inline(always)]
    pub fn is_nebb(&self) -> bool {
        matches!(
            self,
            NodeKind::VelocityNebb { .. } | NodeKind::PressureNebb { .. }
        )
    }

    /// Short tag for diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            NodeKind::Fluid => "fluid",
            NodeKind::Wall => "wall",
            NodeKind::MovingWall { .. } => "moving-wall",
            NodeKind::Inlet { .. } => "inlet",
            NodeKind::Outlet { .. } => "outlet",
            NodeKind::VelocityNebb { .. } => "velocity-nebb",
            NodeKind::PressureNebb { .. } => "pressure-nebb",
        }
    }
}

#[allow(clippy::derivable_impls)] // spelled out to document the semantic choice
impl Default for NodeKind {
    fn default() -> Self {
        // Written out (rather than derived) so the semantic choice — an
        // unpainted node is bulk fluid — is explicit and documented.
        NodeKind::Fluid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solidity_classification() {
        assert!(NodeKind::Wall.is_solid());
        assert!(NodeKind::MovingWall { u: [0.1, 0.0, 0.0] }.is_solid());
        assert!(!NodeKind::Fluid.is_solid());
        assert!(!NodeKind::Inlet { rho: 1.0, u: [0.0; 3] }.is_solid());
        assert!(!NodeKind::Outlet { normal: [1, 0, 0] }.is_solid());
    }

    #[test]
    fn fluid_classification() {
        assert!(NodeKind::Fluid.is_fluid());
        assert!(!NodeKind::Wall.is_fluid());
        assert!(!NodeKind::Inlet { rho: 1.0, u: [0.0; 3] }.is_fluid());
    }

    #[test]
    fn default_is_fluid() {
        assert_eq!(NodeKind::default(), NodeKind::Fluid);
    }

    #[test]
    fn tags_are_distinct() {
        let kinds = [
            NodeKind::Fluid,
            NodeKind::Wall,
            NodeKind::MovingWall { u: [0.0; 3] },
            NodeKind::Inlet { rho: 1.0, u: [0.0; 3] },
            NodeKind::Outlet { normal: [1, 0, 0] },
        ];
        let tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len());
    }
}
