//! Lattice ↔ physical unit conversion.
//!
//! LBM works in lattice units (`Δx = Δt = 1`, reference density 1). Case setup —
//! "flow past a cylinder at Re = 3900", "8 m/s wind over an 80 m building"
//! (§V-C) — happens in physical units; [`UnitConverter`] holds the scalings and
//! derives the relaxation time.

use crate::collision::BgkParams;
use crate::error::{CoreError, Result};
use crate::Scalar;

/// Conversion between physical (SI) and lattice units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitConverter {
    /// Physical size of one lattice cell \[m\].
    pub dx: Scalar,
    /// Physical duration of one time step \[s\].
    pub dt: Scalar,
    /// Physical reference density \[kg/m³\].
    pub rho0: Scalar,
}

impl UnitConverter {
    /// Direct construction from cell size, time step and reference density.
    pub fn new(dx: Scalar, dt: Scalar, rho0: Scalar) -> Result<Self> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting comparison
        if !(dx > 0.0 && dt > 0.0 && rho0 > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "dx, dt, rho0 must be positive (got {dx}, {dt}, {rho0})"
            )));
        }
        Ok(Self { dx, dt, rho0 })
    }

    /// Set up a simulation from a target Reynolds number.
    ///
    /// Given the physical characteristic length `l_phys` \[m\] and velocity
    /// `u_phys` \[m/s\], the lattice resolution `n` (cells across `l_phys`) and
    /// the desired lattice velocity `u_lat` (must stay ≪ c_s ≈ 0.577 for the
    /// low-Mach expansion to hold), derive `dx`, `dt` and the lattice viscosity
    /// that realizes `Re = u·l/ν`.
    pub fn from_reynolds(
        re: Scalar,
        l_phys: Scalar,
        u_phys: Scalar,
        n: usize,
        u_lat: Scalar,
        rho0: Scalar,
    ) -> Result<(Self, BgkParams)> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting comparison
        if !(re > 0.0) {
            return Err(CoreError::InvalidConfig(format!("Re must be positive, got {re}")));
        }
        if n == 0 {
            return Err(CoreError::InvalidConfig("resolution n must be ≥ 1".into()));
        }
        if !(u_lat > 0.0 && u_lat < 0.3) {
            return Err(CoreError::InvalidConfig(format!(
                "lattice velocity {u_lat} outside the sane low-Mach range (0, 0.3)"
            )));
        }
        let dx = l_phys / n as Scalar;
        let dt = u_lat / u_phys * dx;
        let nu_lat = u_lat * n as Scalar / re;
        let params = BgkParams::from_viscosity(nu_lat)?;
        Ok((Self::new(dx, dt, rho0)?, params))
    }

    /// Physical velocity \[m/s\] of a lattice velocity.
    pub fn velocity_to_physical(&self, u_lat: Scalar) -> Scalar {
        u_lat * self.dx / self.dt
    }

    /// Lattice velocity of a physical velocity \[m/s\].
    pub fn velocity_to_lattice(&self, u_phys: Scalar) -> Scalar {
        u_phys * self.dt / self.dx
    }

    /// Physical kinematic viscosity \[m²/s\] of a lattice viscosity.
    pub fn viscosity_to_physical(&self, nu_lat: Scalar) -> Scalar {
        nu_lat * self.dx * self.dx / self.dt
    }

    /// Physical time \[s\] after `steps` lattice steps.
    pub fn time_to_physical(&self, steps: u64) -> Scalar {
        steps as Scalar * self.dt
    }

    /// Physical pressure \[Pa\] from a lattice pressure fluctuation.
    pub fn pressure_to_physical(&self, p_lat: Scalar) -> Scalar {
        p_lat * self.rho0 * (self.dx / self.dt) * (self.dx / self.dt)
    }

    /// Reynolds number realized by lattice parameters `(u_lat, n, nu_lat)`.
    pub fn reynolds(u_lat: Scalar, n: usize, nu_lat: Scalar) -> Scalar {
        u_lat * n as Scalar / nu_lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reynolds_setup_roundtrip() {
        // Re = 3900 cylinder (the paper's DNS benchmark), D = 0.1 m, U = 1 m/s.
        let (uc, params) =
            UnitConverter::from_reynolds(3900.0, 0.1, 1.0, 200, 0.05, 1000.0).unwrap();
        // The realized Reynolds number must match.
        let re = UnitConverter::reynolds(0.05, 200, params.viscosity());
        assert!((re - 3900.0).abs() / 3900.0 < 1e-12);
        // Lattice velocity maps back to the physical one.
        assert!((uc.velocity_to_physical(0.05) - 1.0).abs() < 1e-12);
        assert!((uc.velocity_to_lattice(1.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn viscosity_scaling_is_dx2_over_dt() {
        let uc = UnitConverter::new(0.01, 0.001, 1.2).unwrap();
        let nu = uc.viscosity_to_physical(0.1);
        assert!((nu - 0.1 * 0.0001 / 0.001).abs() < 1e-15);
    }

    #[test]
    fn time_accumulates() {
        let uc = UnitConverter::new(0.5, 0.25, 1.0).unwrap();
        assert!((uc.time_to_physical(8) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn invalid_setups_are_rejected() {
        assert!(UnitConverter::new(0.0, 1.0, 1.0).is_err());
        assert!(UnitConverter::new(1.0, -1.0, 1.0).is_err());
        assert!(UnitConverter::from_reynolds(-5.0, 1.0, 1.0, 10, 0.05, 1.0).is_err());
        assert!(UnitConverter::from_reynolds(100.0, 1.0, 1.0, 0, 0.05, 1.0).is_err());
        // Transonic lattice velocity violates the low-Mach assumption.
        assert!(UnitConverter::from_reynolds(100.0, 1.0, 1.0, 10, 0.9, 1.0).is_err());
    }

    #[test]
    fn high_re_at_low_resolution_yields_small_tau() {
        // Under-resolved high-Re setups drive τ toward the stability limit; the
        // derived parameters must still be valid (τ > 0.5) or error out.
        let r = UnitConverter::from_reynolds(1e6, 1.0, 1.0, 100, 0.05, 1.0);
        // An Err is also acceptable: viscosity underflowed the stable range.
        if let Ok((_, p)) = r {
            assert!(p.tau > 0.5);
        }
    }

    #[test]
    fn pressure_scaling() {
        let uc = UnitConverter::new(0.1, 0.01, 1000.0).unwrap();
        // dx/dt = 10 m/s ⇒ factor 1000 * 100 = 1e5.
        assert!((uc.pressure_to_physical(0.01) - 1000.0).abs() < 1e-9);
    }
}
