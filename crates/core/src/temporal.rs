//! Depth-k temporal blocking: a cyclic y-slab wavefront that advances the
//! whole grid `k` time steps in **one sweep through memory**.
//!
//! ## Why
//!
//! A fused stream+collide step is memory-bound: every step streams the full
//! population set through DRAM once (twice under AB). When the grid is much
//! larger than the last-level cache, running `k` consecutive steps costs `k`
//! full-grid traversals. Temporal blocking restructures those `k` steps into a
//! single skewed sweep in which a small window of y-rows — the only state the
//! in-flight time levels touch — stays cache-resident while every level
//! advances through it, cutting DRAM traffic toward `1/k` of the naive
//! schedule (see `docs/PERFORMANCE.md`, "Temporal blocking").
//!
//! ## The schedule
//!
//! The grid is cut into `s = ceil(ny / by)` y-slabs. Time level `j ∈ 1..=k`
//! processes the slabs in cyclic order starting at slab `j - 1`, lagging level
//! `j - 1` by three wavefront iterations:
//!
//! ```text
//! for w in 0 .. s + 3*(k-1):
//!     for j in 1 ..= k:
//!         i = w - 3*(j-1)
//!         if 0 <= i < s:  process slab (i + j - 1) mod s at level j
//! ```
//!
//! Both the lag and the rotated start are load-bearing:
//!
//! - **Forward dependencies.** A pull-scheme update of slab `t` at level `j`
//!   reads slabs `t-1, t, t+1` of level `j-1`. With lag 3 and the +1 rotation,
//!   level `j-1` is always at least one slab past `t+1` when level `j` reaches
//!   `t` — including the periodic wrap, because the rotation defers each
//!   level's wrap-dependent first slab to the *end* of the previous level's
//!   cycle.
//! - **Anti-dependencies.** Under AB storage levels `j` and `j+2` share a
//!   buffer; six wavefronts of separation mean level `j+1` has consumed a slab
//!   of level-`j` output before level `j+2` overwrites it. Under AA storage the
//!   odd flavor scatters into the ±1-row neighborhood; the slot-ownership
//!   invariant (one writer = one reader per slot) plus the ≥1-slab margin the
//!   lag provides keeps every gather/scatter pair ordered.
//!
//! Degenerate slab counts (`s ≤ 3`) simply collapse toward sequential full
//! steps — the activity windows of consecutive levels stop overlapping — and
//! stay correct.
//!
//! ## Bit-exactness
//!
//! The sweep skews along **y only**: every `(level, slab)` dispatch covers the
//! full x- and z-extent, so z-pencils, tile-z chunking and per-cell kernel
//! eligibility are identical to the unblocked dispatch. The blocked schedule
//! is a pure reordering of the same per-cell updates and therefore
//! **bit-identical** to `k` plain steps on every lane, vectorized ones
//! included.

use crate::collision::CollisionKind;
use crate::flags::FlagField;
use crate::kernels::InteriorIndex;
use crate::lattice::Lattice;
use crate::layout::{AaParity, SoaField};
use crate::parallel::ThreadPool;
use crate::simd::KernelClass;
use std::ops::Range;

/// The cyclic rotated-start wavefront: yields `(level, y-range)` work items in
/// an order that satisfies the forward and anti-dependencies documented above.
pub struct WavefrontSchedule {
    ny: usize,
    by: usize,
    s: usize,
    k: usize,
}

/// Lag (in wavefront iterations) between consecutive time levels.
const LAG: usize = 3;

impl WavefrontSchedule {
    /// Schedule `k` time levels over `ny` rows in slabs of `by` rows.
    pub fn new(ny: usize, by: usize, k: usize) -> Self {
        assert!(k >= 1 && ny >= 1 && by >= 1, "degenerate wavefront");
        WavefrontSchedule {
            ny,
            by,
            s: ny.div_ceil(by),
            k,
        }
    }

    /// Slab count.
    pub fn slabs(&self) -> usize {
        self.s
    }

    /// The y-range of slab `t`.
    fn slab_range(&self, t: usize) -> Range<usize> {
        t * self.by..((t + 1) * self.by).min(self.ny)
    }

    /// Drive `f(level, yr)` over every `(level, slab)` pair in wavefront
    /// order. `level` is 1-based; every slab is visited exactly once per
    /// level.
    pub fn for_each(&self, mut f: impl FnMut(usize, Range<usize>)) {
        let (s, k) = (self.s, self.k);
        for w in 0..s + LAG * (k - 1) {
            for j in 1..=k {
                let lagged = w as isize - (LAG * (j - 1)) as isize;
                if lagged < 0 || lagged >= s as isize {
                    continue;
                }
                let t = (lagged as usize + j - 1) % s;
                f(j, self.slab_range(t));
            }
        }
    }
}

/// Slab height for a blocked sweep: one row per worker thread, so each
/// `(level, slab)` dispatch still spreads across the pool while the resident
/// window (≈ `3k` slabs of `by` rows) stays as small as the thread count
/// allows.
pub fn slab_rows(pool: &ThreadPool) -> usize {
    pool.threads().max(1)
}

/// Advance an AB (double-buffered) grid `k` steps in one wavefront sweep.
///
/// `a` must hold the current (source) state; on return the final state is in
/// `a` when `k` is even and in `b` when `k` is odd — the caller flips its
/// buffer pair for odd `k`, exactly like `k` plain steps would have.
#[allow(clippy::too_many_arguments)]
pub fn ab_block<L: Lattice>(
    pool: &ThreadPool,
    flags: &FlagField,
    a: &mut SoaField<L>,
    b: &mut SoaField<L>,
    collision: &CollisionKind,
    interior: Option<&InteriorIndex>,
    k: usize,
) -> KernelClass {
    let dims = flags.dims();
    let schedule = WavefrontSchedule::new(dims.ny, slab_rows(pool), k);
    let mut class = KernelClass::Generic;
    schedule.for_each(|level, yr| {
        // Level j reads buffer (j-1)%2 and writes buffer j%2 (a = 0, b = 1).
        class = if level % 2 == 1 {
            pool.step_rect::<L, _>(flags, a, b, collision, 0..dims.nx, yr, interior)
        } else {
            pool.step_rect::<L, _>(flags, b, a, collision, 0..dims.nx, yr, interior)
        };
    });
    class
}

/// Advance an AA (single-grid) field `k` steps in one wavefront sweep.
///
/// The block must start at parity [`AaParity::Reversed`] and `k` must be even
/// so it also *ends* at `Reversed` — the canonical block-boundary parity
/// checkpoints and diagnostics rely on. Both are the caller's contract
/// (validated by `SolverBuilder::try_build`); this function only debug-asserts
/// them.
pub fn aa_block<L: Lattice>(
    pool: &ThreadPool,
    flags: &FlagField,
    field: &mut SoaField<L>,
    collision: &CollisionKind,
    parity: AaParity,
    interior: Option<&InteriorIndex>,
    k: usize,
) -> KernelClass {
    debug_assert_eq!(parity, AaParity::Reversed, "AA blocks start at Reversed");
    debug_assert_eq!(k % 2, 0, "AA blocks need even depth");
    let dims = flags.dims();
    let schedule = WavefrontSchedule::new(dims.ny, slab_rows(pool), k);
    let mut class = KernelClass::Generic;
    schedule.for_each(|level, yr| {
        let level_parity = if level % 2 == 1 {
            AaParity::Reversed
        } else {
            AaParity::Streamed
        };
        class = pool.aa_step_rect::<L>(
            flags,
            field,
            collision,
            level_parity,
            0..dims.nx,
            yr,
            interior,
        );
    });
    class
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every (level, slab) pair appears exactly once, and by the time level j
    /// processes slab t, level j-1 has already processed t-1, t and t+1
    /// (cyclically) — the pull-scheme forward dependency.
    #[test]
    fn wavefront_covers_every_slab_and_respects_dependencies() {
        for ny in [1usize, 2, 3, 4, 5, 7, 12, 33] {
            for by in [1usize, 2, 3] {
                for k in [1usize, 2, 3, 4, 6] {
                    let sched = WavefrontSchedule::new(ny, by, k);
                    let s = sched.slabs();
                    let mut done = vec![vec![false; s]; k + 1];
                    sched.for_each(|j, yr| {
                        let t = yr.start / by;
                        assert!(!done[j][t], "duplicate: level {j} slab {t}");
                        if j > 1 {
                            for d in [s - 1, 0, 1] {
                                let dep = (t + d) % s;
                                assert!(
                                    done[j - 1][dep],
                                    "ny {ny} by {by} k {k}: level {j} slab {t} \
                                     before level {} slab {dep}",
                                    j - 1
                                );
                            }
                        }
                        done[j][t] = true;
                    });
                    for j in 1..=k {
                        assert!(done[j].iter().all(|&d| d), "level {j} incomplete");
                    }
                }
            }
        }
    }

    /// The AB anti-dependency: levels j and j+2 share a buffer, so level j+2
    /// must not write a slab before level j+1 has read it (level j+1 reads
    /// slab t of level-j output while processing t-1, t and t+1).
    #[test]
    fn wavefront_orders_buffer_reuse_after_consumption() {
        for ny in [1usize, 4, 5, 7, 10, 16, 33] {
            for k in [3usize, 4, 5] {
                let sched = WavefrontSchedule::new(ny, 1, k);
                let s = sched.slabs();
                // processed[j][t] = true once level j has processed slab t.
                let mut processed = vec![vec![false; s]; k + 1];
                sched.for_each(|j, yr| {
                    let t = yr.start;
                    // Level j (j >= 3) writes the buffer level j-2 wrote; the
                    // write is safe once level j-1 has processed t-1, t and
                    // t+1 — i.e. read everything it ever reads from slab t.
                    if j >= 3 {
                        for d in [s - 1, 0, 1] {
                            let reader = (t + d) % s;
                            assert!(
                                processed[j - 1][reader],
                                "ny {ny} k {k}: level {j} overwrites slab {t} before \
                                 level {} finished reading it (slab {reader} pending)",
                                j - 1
                            );
                        }
                    }
                    processed[j][t] = true;
                });
            }
        }
    }
}
