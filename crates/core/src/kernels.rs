//! The fused streaming+collision kernel (the paper's production kernel).
//!
//! SunwayLB uses the **pull scheme** (Wellein et al., ref. \[40\]): one loop over the
//! domain in which every cell gathers its incoming populations from the previous
//! time level (`src`), applies boundary rules inline, collides, and stores the
//! post-collision state to the next time level (`dst`). With the A-B buffer pair
//! this is race-free and needs no synchronization between streaming and collision
//! — the property the paper exploits to fuse the memory-bound propagation with the
//! compute-bound collision (§IV-C.3, ~30 % gain on Sunway).
//!
//! Two implementations are provided:
//!
//! * [`fused_step_range`] — the generic reference kernel, valid for every lattice,
//!   layout and boundary condition. All other execution paths in the workspace
//!   (split kernels, push scheme, the CPE-cluster emulator in `swlb-arch`, the
//!   distributed engine in `swlb-sim`) are tested for exact agreement with it.
//! * [`fused_step_d3q19_interior`] — a hand-specialized D3Q19/SoA kernel with
//!   hoisted neighbor offsets and a fully unrolled direction loop, the portable
//!   analog of the paper's assembly-level optimization stage (manual unroll +
//!   instruction reordering). It handles interior cells only; callers finish the
//!   boundary shell with the generic kernel.

use crate::boundary::NodeKind;
use crate::collision::{collide, CollisionKind};
use crate::equilibrium::{equilibrium, moments};
use crate::flags::FlagField;
use crate::lattice::{Lattice, D3Q19};
use crate::layout::{AaParity, PopField, SoaField};
use crate::simd::{FastPath, KernelClass};
use crate::Scalar;
use std::ops::Range;

/// Largest `Q` across the supported lattices; sizes the per-cell stack buffer.
pub const MAX_Q: usize = 32;

/// Gather the incoming populations of cell `(x, y, z)` from `src` into `f`,
/// applying bounce-back rules against solid neighbors. Periodic wrap is the
/// default at domain edges.
#[inline(always)]
pub fn gather_pull<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    src: &F,
    x: usize,
    y: usize,
    z: usize,
    f: &mut [Scalar],
) {
    let dims = flags.dims();
    let this = dims.idx(x, y, z);
    for q in 0..L::Q {
        let c = L::C[q];
        let [nx, ny, nz] = dims.neighbor_periodic(x, y, z, [-c[0], -c[1], -c[2]]);
        let n = dims.idx(nx, ny, nz);
        f[q] = match flags.kind(n) {
            NodeKind::Wall => src.get(this, L::OPP[q]),
            NodeKind::MovingWall { u } => {
                // Halfway bounce-back with wall-momentum correction
                // (Ladd): f_q = f*_opp(q) + 6 w_q ρ₀ (c_q · u_w), ρ₀ = 1.
                let cu = c[0] as Scalar * u[0] + c[1] as Scalar * u[1] + c[2] as Scalar * u[2];
                src.get(this, L::OPP[q]) + 6.0 * L::W[q] * cu
            }
            _ => src.get(n, q),
        };
    }
}

/// Write the post-step state of a non-fluid cell directly into `dst`.
///
/// * solid cells copy through (their populations are inert but kept deterministic
///   so that checkpoints and equivalence tests are exact),
/// * inlets are reset to their imposed equilibrium,
/// * outlets copy the full population vector of their interior neighbor
///   (zero-gradient closure).
#[inline]
pub fn apply_non_fluid<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    src: &F,
    dst: &mut F,
    x: usize,
    y: usize,
    z: usize,
    kind: NodeKind,
) {
    let dims = flags.dims();
    let this = dims.idx(x, y, z);
    match kind {
        NodeKind::Wall | NodeKind::MovingWall { .. } => {
            for q in 0..L::Q {
                dst.set(this, q, src.get(this, q));
            }
        }
        NodeKind::Inlet { rho, u } => {
            let mut feq = [0.0; MAX_Q];
            equilibrium::<L>(rho, u, &mut feq[..L::Q]);
            dst.store_cell(this, &feq[..L::Q]);
        }
        NodeKind::Outlet { normal } => {
            let m = dims
                .neighbor_checked(x, y, z, [-normal[0], -normal[1], -normal[2]])
                .map(|[a, b, c]| dims.idx(a, b, c))
                .unwrap_or(this);
            for q in 0..L::Q {
                dst.set(this, q, src.get(m, q));
            }
        }
        NodeKind::Fluid | NodeKind::VelocityNebb { .. } | NodeKind::PressureNebb { .. } => {
            unreachable!("apply_non_fluid called on a streaming cell")
        }
    }
}

/// Reconstruct the unknown populations of a NEBB boundary cell in place (no-op
/// for other kinds). Called between gather and collision.
#[inline(always)]
pub fn reconstruct_nebb<L: Lattice>(f: &mut [Scalar], kind: NodeKind) {
    match kind {
        NodeKind::VelocityNebb { u, normal } => {
            crate::nebb::reconstruct_velocity::<L>(f, u, normal);
        }
        NodeKind::PressureNebb { rho, normal } => {
            crate::nebb::reconstruct_pressure::<L>(f, rho, normal);
        }
        _ => {}
    }
}

/// One fused stream+collide step over the y-slab `ys` (generic reference kernel).
///
/// `src` must hold the complete post-collision state of the previous step; `dst`
/// receives the new state. Slabs with disjoint `ys` touch disjoint `dst` cells,
/// which is what makes the multithreaded driver in [`crate::parallel`] sound.
pub fn fused_step_range<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    src: &F,
    dst: &mut F,
    collision: &CollisionKind,
    ys: Range<usize>,
) {
    let dims = flags.dims();
    debug_assert!(ys.end <= dims.ny);
    let mut f = [0.0; MAX_Q];
    for y in ys {
        for x in 0..dims.nx {
            for z in 0..dims.nz {
                let this = dims.idx(x, y, z);
                let kind = flags.kind(this);
                if kind.is_fluid() || kind.is_nebb() {
                    gather_pull::<L, F>(flags, src, x, y, z, &mut f[..L::Q]);
                    reconstruct_nebb::<L>(&mut f[..L::Q], kind);
                    collide::<L>(&mut f[..L::Q], collision);
                    dst.store_cell(this, &f[..L::Q]);
                } else {
                    apply_non_fluid::<L, F>(flags, src, dst, x, y, z, kind);
                }
            }
        }
    }
}

/// [`fused_step_range`] restricted to the x range `xr` as well — the generic
/// kernel over the rectangle `xr × ys` (full z depth).
pub fn fused_step_rect<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    src: &F,
    dst: &mut F,
    collision: &CollisionKind,
    xr: Range<usize>,
    ys: Range<usize>,
) {
    let dims = flags.dims();
    debug_assert!(ys.end <= dims.ny && xr.end <= dims.nx);
    let mut f = [0.0; MAX_Q];
    for y in ys {
        for x in xr.clone() {
            for z in 0..dims.nz {
                let this = dims.idx(x, y, z);
                let kind = flags.kind(this);
                if kind.is_fluid() || kind.is_nebb() {
                    gather_pull::<L, F>(flags, src, x, y, z, &mut f[..L::Q]);
                    reconstruct_nebb::<L>(&mut f[..L::Q], kind);
                    collide::<L>(&mut f[..L::Q], collision);
                    dst.store_cell(this, &f[..L::Q]);
                } else {
                    apply_non_fluid::<L, F>(flags, src, dst, x, y, z, kind);
                }
            }
        }
    }
}

/// Convenience wrapper: fused step over the whole domain.
pub fn fused_step<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    src: &F,
    dst: &mut F,
    collision: &CollisionKind,
) {
    fused_step_range::<L, F>(flags, src, dst, collision, 0..flags.dims().ny);
}

/// Hand-optimized fused kernel for **interior** D3Q19/SoA cells of the y-slab `ys`.
///
/// Interior means `1 ≤ x < nx−1`, `1 ≤ y < ny−1`, `1 ≤ z < nz−1` *and* all 18
/// neighbors are fluid; the caller is responsible for running the generic kernel
/// on everything else (see [`fused_step_optimized`]). Under those guarantees each
/// neighbor is a constant linear offset, the direction loop is fully unrolled, and
/// no flag checks or wraps happen in the hot loop — the Rust analog of the paper's
/// manually scheduled assembly kernel.
///
/// Covers the whole x extent with no cache blocking; see
/// [`fused_step_d3q19_interior_tiled`] for the rect/tiled variant.
pub fn fused_step_d3q19_interior(
    flags: &FlagField,
    src: &SoaField<D3Q19>,
    dst: &mut SoaField<D3Q19>,
    omega: Scalar,
    ys: Range<usize>,
    interior_mask: &[bool],
) {
    fused_step_d3q19_interior_tiled(
        flags,
        src,
        dst,
        omega,
        0..flags.dims().nx,
        ys,
        0,
        interior_mask,
    );
}

/// [`fused_step_d3q19_interior`] restricted to the x range `xr` and blocked in
/// z-tiles of `tile_z` cells (`0` disables tiling).
///
/// The z tiling is the CPU mirror of the paper's 64×3×70 CPE blocking: each
/// (slab, tile) pass touches a bounded working set of the 19 SoA planes so the
/// gathered source stays cache-resident across the x sweep. Per-cell updates
/// are independent, so the traversal order change is bit-exact.
#[allow(clippy::too_many_arguments)]
pub fn fused_step_d3q19_interior_tiled(
    flags: &FlagField,
    src: &SoaField<D3Q19>,
    dst: &mut SoaField<D3Q19>,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    interior_mask: &[bool],
) {
    // SAFETY: `&mut dst` proves exclusive access to the destination.
    unsafe {
        d3q19_interior_raw(
            flags,
            src.raw(),
            dst.raw_mut().as_mut_ptr(),
            omega,
            xr,
            ys,
            tile_z,
            interior_mask,
        );
    }
}

/// Raw-pointer core of the interior kernel, shared with the persistent worker
/// pool in [`crate::parallel`] (workers write through a shared pointer; slabs
/// with disjoint `ys` touch disjoint cells).
///
/// # Safety
/// `draw` must point at `19 * cells` writable scalars and no other thread may
/// write any cell in `xr × ys` concurrently.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn d3q19_interior_raw(
    flags: &FlagField,
    sraw: &[Scalar],
    draw: *mut Scalar,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    interior_mask: &[bool],
) {
    let dims = flags.dims();
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    if nx < 3 || ny < 3 || nz < 3 {
        return; // no interior at all; generic path covers everything
    }
    let cells = dims.cells();
    debug_assert_eq!(interior_mask.len(), cells);
    debug_assert_eq!(sraw.len(), 19 * cells);

    // Per-direction linear offset of the *pull source* (x − c_q).
    let mut off = [0isize; 19];
    for q in 0..19 {
        let c = D3Q19::C[q];
        off[q] = -((c[1] as isize * nx as isize + c[0] as isize) * nz as isize + c[2] as isize);
    }

    let y0 = ys.start.max(1);
    let y1 = ys.end.min(ny - 1);
    let x0 = xr.start.max(1);
    let x1 = xr.end.min(nx - 1);
    let z0 = 1;
    let z1 = nz - 1;
    let tile = if tile_z == 0 { z1 - z0 } else { tile_z };

    let mut zt = z0;
    while zt < z1 {
        let zt_end = (zt + tile).min(z1);
        for y in y0..y1 {
            for x in x0..x1 {
                let base = (y * nx + x) * nz;
                for z in zt..zt_end {
                    let this = base + z;
                    if !interior_mask[this] {
                        continue;
                    }
                    // SAFETY: the mask certifies an interior cell with all 18
                    // pull sources in bounds; the caller certifies the buffers
                    // and write exclusivity.
                    unsafe { d3q19_cell_update(sraw, draw, cells, &off, this, omega) };
                }
            }
        }
        zt = zt_end;
    }
}

/// One fused pull+BGK update of a single interior D3Q19/SoA cell at linear
/// index `this`, with per-direction pull offsets `off`. Shared by the scalar
/// interior kernel above and the sub-lane remainder path of the vectorized
/// kernel in [`crate::simd`] — keeping it in one place is what makes the
/// portable-lane path bit-exact by construction.
///
/// # Safety
/// `this` must be an interior cell (all 18 pull sources in bounds per `off`),
/// `sraw`/`draw` must cover `19 * cells` scalars, and no other thread may
/// write this cell concurrently.
#[inline(always)]
pub(crate) unsafe fn d3q19_cell_update(
    sraw: &[Scalar],
    draw: *mut Scalar,
    cells: usize,
    off: &[isize; 19],
    this: usize,
    omega: Scalar,
) {
    let mut f = [0.0f64; 19];
    // Gather: plane q starts at q·cells; source offset is
    // constant. The unrolled form keeps all 19 loads
    // independent so the compiler can software-pipeline them
    // (the paper's L0/L1 dual-pipeline scheduling, in spirit).
    macro_rules! pull {
        ($q:literal) => {
            f[$q] = sraw[($q * cells) as usize + (this as isize + off[$q]) as usize];
        };
    }
    pull!(0);
    pull!(1);
    pull!(2);
    pull!(3);
    pull!(4);
    pull!(5);
    pull!(6);
    pull!(7);
    pull!(8);
    pull!(9);
    pull!(10);
    pull!(11);
    pull!(12);
    pull!(13);
    pull!(14);
    pull!(15);
    pull!(16);
    pull!(17);
    pull!(18);

    d3q19_collide_scalar(&mut f, omega);

    // Scatter back to the SoA planes.
    macro_rules! store {
        ($q:literal) => {
            *draw.add($q * cells + this) = f[$q];
        };
    }
    store!(0);
    store!(1);
    store!(2);
    store!(3);
    store!(4);
    store!(5);
    store!(6);
    store!(7);
    store!(8);
    store!(9);
    store!(10);
    store!(11);
    store!(12);
    store!(13);
    store!(14);
    store!(15);
    store!(16);
    store!(17);
    store!(18);
}

/// The plain-BGK D3Q19 collision applied to one gathered population vector —
/// the exact expression tree of the original fused scalar kernel, factored out
/// so the AB and both AA-pattern scalar cell updates share it (and so the
/// portable SIMD lane, which transliterates this tree op for op, stays
/// bit-exact against every scalar caller).
#[inline(always)]
pub(crate) fn d3q19_collide_scalar(f: &mut [Scalar; 19], omega: Scalar) {
    // Moments, unrolled against the D3Q19 velocity table.
    let rho = f[0]
        + f[1]
        + f[2]
        + f[3]
        + f[4]
        + f[5]
        + f[6]
        + f[7]
        + f[8]
        + f[9]
        + f[10]
        + f[11]
        + f[12]
        + f[13]
        + f[14]
        + f[15]
        + f[16]
        + f[17]
        + f[18];
    let jx = f[1] - f[2] + f[7] - f[8] + f[9] - f[10] + f[11] - f[12] + f[13] - f[14];
    let jy = f[3] - f[4] + f[7] - f[8] - f[9] + f[10] + f[15] - f[16] + f[17] - f[18];
    let jz = f[5] - f[6] + f[11] - f[12] - f[13] + f[14] + f[15] - f[16] - f[17] + f[18];
    // Mirror `equilibrium::velocity`'s vacuum guard so this path
    // is bit-exact against the generic kernel even on degenerate
    // (near-zero-density) states fed in by property tests.
    let (ux, uy, uz) = if rho.abs() < 1e-300 {
        (0.0, 0.0, 0.0)
    } else {
        let inv_rho = 1.0 / rho;
        (jx * inv_rho, jy * inv_rho, jz * inv_rho)
    };
    let usq15 = 1.5 * (ux * ux + uy * uy + uz * uz);

    // Collision with precomputed weight constants.
    const W0: f64 = 1.0 / 3.0;
    const WA: f64 = 1.0 / 18.0;
    const WE: f64 = 1.0 / 36.0;
    macro_rules! relax {
        ($q:literal, $w:expr, $cu:expr) => {{
            let cu = $cu;
            let feq = $w * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - usq15);
            f[$q] -= omega * (f[$q] - feq);
        }};
    }
    relax!(0, W0, 0.0);
    relax!(1, WA, ux);
    relax!(2, WA, -ux);
    relax!(3, WA, uy);
    relax!(4, WA, -uy);
    relax!(5, WA, uz);
    relax!(6, WA, -uz);
    relax!(7, WE, ux + uy);
    relax!(8, WE, -ux - uy);
    relax!(9, WE, ux - uy);
    relax!(10, WE, -ux + uy);
    relax!(11, WE, ux + uz);
    relax!(12, WE, -ux - uz);
    relax!(13, WE, ux - uz);
    relax!(14, WE, -ux + uz);
    relax!(15, WE, uy + uz);
    relax!(16, WE, -uy - uz);
    relax!(17, WE, uy - uz);
    relax!(18, WE, -uy + uz);
}

/// AA-pattern *odd-step* update for one interior D3Q19 cell, operating on the
/// single grid in place. In the `Reversed` state slot `(x, q)` holds
/// `f*_{opp(q)}(x)`, and the previous even step left each neighbor's
/// contribution reversed in place, so the pull for direction `q` reads plane
/// `opp(q)` at `this + off[q]` (the `x - c_q` neighbor). After collision the
/// scatter pushes `f*_q` to `(x + c_q, q)` — plane `q` at `this - off[q]` —
/// leaving the lattice in the `Streamed` state. Interior-only: every
/// neighbor must be fluid and in-bounds (no periodic wrap), exactly the
/// [`interior_mask`] contract.
///
/// # Safety
/// `this` must be an interior cell: `this + off[q]` and `this - off[q]` must
/// be in-bounds for all `q`, and `raw` must point at `19 * cells` scalars.
#[inline(always)]
pub(crate) unsafe fn aa_odd_cell_update(
    raw: *mut Scalar,
    cells: usize,
    off: &[isize; 19],
    this: usize,
    omega: Scalar,
) {
    let mut f = [0.0; 19];
    macro_rules! pull {
        ($q:literal, $opp:literal) => {
            f[$q] = *raw.offset(($opp * cells + this) as isize + off[$q]);
        };
    }
    pull!(0, 0);
    pull!(1, 2);
    pull!(2, 1);
    pull!(3, 4);
    pull!(4, 3);
    pull!(5, 6);
    pull!(6, 5);
    pull!(7, 8);
    pull!(8, 7);
    pull!(9, 10);
    pull!(10, 9);
    pull!(11, 12);
    pull!(12, 11);
    pull!(13, 14);
    pull!(14, 13);
    pull!(15, 16);
    pull!(16, 15);
    pull!(17, 18);
    pull!(18, 17);

    d3q19_collide_scalar(&mut f, omega);

    macro_rules! scatter {
        ($q:literal) => {
            *raw.offset(($q * cells + this) as isize - off[$q]) = f[$q];
        };
    }
    scatter!(0);
    scatter!(1);
    scatter!(2);
    scatter!(3);
    scatter!(4);
    scatter!(5);
    scatter!(6);
    scatter!(7);
    scatter!(8);
    scatter!(9);
    scatter!(10);
    scatter!(11);
    scatter!(12);
    scatter!(13);
    scatter!(14);
    scatter!(15);
    scatter!(16);
    scatter!(17);
    scatter!(18);
}

/// AA-pattern *even-step* update for one interior D3Q19 cell. In the
/// `Streamed` state slot `(y, q)` already holds the post-streaming
/// `f_q(y)` (the odd step's scatter put it there), so the gather is purely
/// local; the reversed store `(y, opp(q)) = f*_q` returns the lattice to the
/// `Reversed` state without touching any neighbor. Cell-local by
/// construction, so it is race-free under any partition.
///
/// # Safety
/// `raw` must point at `19 * cells` scalars and `this < cells`.
#[inline(always)]
pub(crate) unsafe fn aa_even_cell_update(
    raw: *mut Scalar,
    cells: usize,
    this: usize,
    omega: Scalar,
) {
    let mut f = [0.0; 19];
    macro_rules! pull {
        ($q:literal) => {
            f[$q] = *raw.add($q * cells + this);
        };
    }
    pull!(0);
    pull!(1);
    pull!(2);
    pull!(3);
    pull!(4);
    pull!(5);
    pull!(6);
    pull!(7);
    pull!(8);
    pull!(9);
    pull!(10);
    pull!(11);
    pull!(12);
    pull!(13);
    pull!(14);
    pull!(15);
    pull!(16);
    pull!(17);
    pull!(18);

    d3q19_collide_scalar(&mut f, omega);

    macro_rules! store_rev {
        ($q:literal, $opp:literal) => {
            *raw.add($opp * cells + this) = f[$q];
        };
    }
    store_rev!(0, 0);
    store_rev!(1, 2);
    store_rev!(2, 1);
    store_rev!(3, 4);
    store_rev!(4, 3);
    store_rev!(5, 6);
    store_rev!(6, 5);
    store_rev!(7, 8);
    store_rev!(8, 7);
    store_rev!(9, 10);
    store_rev!(10, 9);
    store_rev!(11, 12);
    store_rev!(12, 11);
    store_rev!(13, 14);
    store_rev!(14, 13);
    store_rev!(15, 16);
    store_rev!(16, 15);
    store_rev!(17, 18);
    store_rev!(18, 17);
}

/// Precompute the interior-fast-path mask for [`fused_step_d3q19_interior`]:
/// `true` where the cell is fluid, geometrically interior, and all 18 pull
/// sources are fluid too.
pub fn interior_mask<L: Lattice>(flags: &FlagField) -> Vec<bool> {
    let dims = flags.dims();
    let mut mask = vec![false; dims.cells()];
    if dims.nx < 3 || dims.ny < 3 || dims.nz < 3 {
        return mask;
    }
    for y in 1..dims.ny - 1 {
        for x in 1..dims.nx - 1 {
            for z in 1..dims.nz - 1 {
                let this = dims.idx(x, y, z);
                if !flags.kind(this).is_fluid() {
                    continue;
                }
                let mut ok = true;
                for q in 1..L::Q {
                    let c = L::C[q];
                    let [a, b, d] = dims.neighbor_periodic(x, y, z, [-c[0], -c[1], -c[2]]);
                    if !flags.kind(dims.idx(a, b, d)).is_fluid() {
                        ok = false;
                        break;
                    }
                }
                mask[this] = ok;
            }
        }
    }
    mask
}

/// Run-length encoding of an interior mask: per z-pencil `p = y·nx + x`, the
/// maximal spans `(z0, z1)` of consecutive mask-true cells, CSR-packed.
///
/// The SoA layout is z-innermost, so a span is a contiguous stretch of linear
/// indices — exactly what the vectorized kernel in [`crate::simd`] needs to
/// issue whole-lane loads with no per-cell mask test. Built once per flag
/// generation (cached on `Solver` / `DistributedSolver`), not per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteriorRuns {
    /// CSR row pointers: pencil `p` owns `spans[starts[p]..starts[p+1]]`.
    starts: Vec<u32>,
    /// Half-open z spans of interior cells, in ascending z order per pencil.
    spans: Vec<(u32, u32)>,
}

impl InteriorRuns {
    /// Encode `mask` (one bool per cell of `dims`, z-innermost) into runs.
    pub fn from_mask(dims: crate::geometry::GridDims, mask: &[bool]) -> Self {
        debug_assert_eq!(mask.len(), dims.cells());
        let pencils = dims.nx * dims.ny;
        let mut starts = Vec::with_capacity(pencils + 1);
        let mut spans = Vec::new();
        starts.push(0u32);
        for p in 0..pencils {
            let line = &mask[p * dims.nz..(p + 1) * dims.nz];
            let mut z = 0;
            while z < dims.nz {
                if line[z] {
                    let run_start = z;
                    while z < dims.nz && line[z] {
                        z += 1;
                    }
                    spans.push((run_start as u32, z as u32));
                } else {
                    z += 1;
                }
            }
            starts.push(spans.len() as u32);
        }
        InteriorRuns { starts, spans }
    }

    /// The interior spans of z-pencil `p = y·nx + x`.
    #[inline(always)]
    pub fn pencil(&self, p: usize) -> &[(u32, u32)] {
        &self.spans[self.starts[p] as usize..self.starts[p + 1] as usize]
    }

    /// Total number of cells covered by all runs.
    pub fn cell_count(&self) -> usize {
        self.spans.iter().map(|&(a, b)| (b - a) as usize).sum()
    }

    /// Total number of runs (diagnostics).
    pub fn run_count(&self) -> usize {
        self.spans.len()
    }
}

/// The interior fast-path index: the per-cell mask (consumed by the scalar
/// kernel and the generic-remainder sweep) plus its run-length encoding
/// (consumed by the vectorized kernel). Both views describe the same cell set;
/// build it once per flag generation with [`InteriorIndex::build`].
#[derive(Debug, Clone)]
pub struct InteriorIndex {
    mask: Vec<bool>,
    runs: InteriorRuns,
}

impl InteriorIndex {
    /// Compute mask + runs for the current flags (see [`interior_mask`]).
    pub fn build<L: Lattice>(flags: &FlagField) -> Self {
        let mask = interior_mask::<L>(flags);
        let runs = InteriorRuns::from_mask(flags.dims(), &mask);
        InteriorIndex { mask, runs }
    }

    /// Per-cell interior mask (z-innermost linear indexing).
    #[inline(always)]
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Run-length-encoded view of the same interior set.
    #[inline(always)]
    pub fn runs(&self) -> &InteriorRuns {
        &self.runs
    }
}

/// Safe wrapper over the vectorized interior kernel for direct equivalence
/// tests and benchmarks: runs *only* the interior runs (callers finish the
/// remainder with the generic kernel, as [`fused_step_optimized_rect`] does).
/// `portable = true` pins the bit-exact `[f64; 4]` fallback lane; `false`
/// requires AVX2+FMA support (panics otherwise).
#[allow(clippy::too_many_arguments)]
pub fn fused_step_d3q19_interior_simd(
    flags: &FlagField,
    src: &SoaField<D3Q19>,
    dst: &mut SoaField<D3Q19>,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
    portable: bool,
) {
    assert!(
        portable || crate::simd::simd_available(),
        "AVX2+FMA lane requested on a CPU without support"
    );
    let path = if portable {
        FastPath::Portable
    } else if crate::simd::avx512_available() {
        FastPath::Avx512
    } else {
        FastPath::Avx2
    };
    // SAFETY: `&mut dst` proves exclusive access; `runs` came from this
    // geometry's interior mask per the caller's contract; the hardware lane
    // was feature-checked above.
    unsafe {
        crate::simd::d3q19_interior_simd(
            flags,
            src.raw(),
            dst.raw_mut().as_mut_ptr(),
            omega,
            xr,
            ys,
            tile_z,
            runs,
            path,
        );
    }
}

/// Full fused step that runs the fastest eligible interior kernel and the
/// generic kernel everywhere else, returning the [`KernelClass`] that served
/// the interior. Equivalent to [`fused_step`]: bit-for-bit when the scalar or
/// portable-lane path is selected, within 1e-12 under the AVX2+FMA lane (FMA
/// contraction is the only rounding difference).
///
/// The caller's `collision` is threaded through unchanged: plain constant-ω BGK
/// takes the interior fast path (+ generic remainder with the *same*
/// `CollisionKind` — no lossy ω→τ→ω reconstruction), while every other
/// operator (LES, forced BGK, MRT) falls back to the generic kernel for the
/// whole slab. `tile_z` blocks the interior sweep in z (`0` = no tiling). The
/// interior/vector/scalar choice is resolved by [`crate::simd::select_fast_path`]
/// (runtime CPU detection, `SWLB_NO_SIMD`, [`crate::simd::LanePolicy`]).
pub fn fused_step_optimized(
    flags: &FlagField,
    src: &SoaField<D3Q19>,
    dst: &mut SoaField<D3Q19>,
    collision: &CollisionKind,
    interior: &InteriorIndex,
    ys: Range<usize>,
    tile_z: usize,
) -> KernelClass {
    fused_step_optimized_rect(
        flags,
        src,
        dst,
        collision,
        interior,
        0..flags.dims().nx,
        ys,
        tile_z,
    )
}

/// [`fused_step_optimized`] restricted to the x range `xr` (used by the
/// distributed engine for the inner rectangle of a subdomain).
#[allow(clippy::too_many_arguments)]
pub fn fused_step_optimized_rect(
    flags: &FlagField,
    src: &SoaField<D3Q19>,
    dst: &mut SoaField<D3Q19>,
    collision: &CollisionKind,
    interior: &InteriorIndex,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
) -> KernelClass {
    let omega = match collision {
        CollisionKind::Bgk(p) => p.omega,
        // Variable-ω / forced / moment-space operators have no hand-optimized
        // interior kernel; run the generic reference kernel on the whole rect.
        _ => {
            fused_step_rect::<D3Q19, _>(flags, src, dst, collision, xr, ys);
            return KernelClass::Generic;
        }
    };
    let (path, class) = crate::simd::select_fast_path();
    // SAFETY: `&mut dst` proves exclusive access to the destination.
    unsafe {
        let draw = dst.raw_mut().as_mut_ptr();
        match path {
            FastPath::MaskScalar => d3q19_interior_raw(
                flags,
                src.raw(),
                draw,
                omega,
                xr.clone(),
                ys.clone(),
                tile_z,
                interior.mask(),
            ),
            _ => crate::simd::d3q19_interior_simd(
                flags,
                src.raw(),
                draw,
                omega,
                xr.clone(),
                ys.clone(),
                tile_z,
                interior.runs(),
                path,
            ),
        }
    }
    // Finish every cell the fast path skipped, with the caller's collision.
    let mask = interior.mask();
    let dims = flags.dims();
    let mut f = [0.0; MAX_Q];
    for y in ys {
        for x in xr.clone() {
            for z in 0..dims.nz {
                let this = dims.idx(x, y, z);
                if mask[this] {
                    continue;
                }
                let kind = flags.kind(this);
                if kind.is_fluid() || kind.is_nebb() {
                    gather_pull::<D3Q19, _>(flags, src, x, y, z, &mut f[..19]);
                    reconstruct_nebb::<D3Q19>(&mut f[..19], kind);
                    collide::<D3Q19>(&mut f[..19], collision);
                    dst.store_cell(this, &f[..19]);
                } else {
                    apply_non_fluid::<D3Q19, _>(flags, src, dst, x, y, z, kind);
                }
            }
        }
    }
    class
}

/// Scalar AA-pattern interior driver — the [`FastPath::MaskScalar`] twin of
/// [`d3q19_interior_raw`]: the same z-tiled loop nest and per-cell mask test,
/// dispatching the odd or even in-place cell update by `parity`.
///
/// # Safety
/// `raw` must point at `19 * cells` writable scalars; `interior_mask` must be
/// the current [`interior_mask`] of `flags` (certifying in-bounds gathers *and*
/// scatters); concurrent callers must cover disjoint cell sets (the AA
/// slot-ownership discipline makes cross-slab scatters race-free).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn aa_d3q19_interior_raw(
    flags: &FlagField,
    raw: *mut Scalar,
    omega: Scalar,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    interior_mask: &[bool],
) {
    let dims = flags.dims();
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    if nx < 3 || ny < 3 || nz < 3 {
        return; // no interior at all; generic path covers everything
    }
    let cells = dims.cells();
    debug_assert_eq!(interior_mask.len(), cells);

    let mut off = [0isize; 19];
    for q in 0..19 {
        let c = D3Q19::C[q];
        off[q] = -((c[1] as isize * nx as isize + c[0] as isize) * nz as isize + c[2] as isize);
    }

    let y0 = ys.start.max(1);
    let y1 = ys.end.min(ny - 1);
    let x0 = xr.start.max(1);
    let x1 = xr.end.min(nx - 1);
    let z0 = 1;
    let z1 = nz - 1;
    let tile = if tile_z == 0 { z1 - z0 } else { tile_z };

    let mut zt = z0;
    while zt < z1 {
        let zt_end = (zt + tile).min(z1);
        for y in y0..y1 {
            for x in x0..x1 {
                let base = (y * nx + x) * nz;
                for z in zt..zt_end {
                    let this = base + z;
                    if !interior_mask[this] {
                        continue;
                    }
                    // SAFETY: the mask certifies an interior cell (all 18
                    // gather sources and scatter targets in bounds); the
                    // caller certifies the buffer and cell-set disjointness.
                    unsafe {
                        match parity {
                            AaParity::Reversed => {
                                aa_odd_cell_update(raw, cells, &off, this, omega)
                            }
                            AaParity::Streamed => aa_even_cell_update(raw, cells, this, omega),
                        }
                    };
                }
            }
        }
        zt = zt_end;
    }
}

/// Generic AA-pattern sweep over the rectangle `xr × ys` (full z depth) — the
/// single-grid counterpart of [`fused_step_rect`], valid for every lattice and
/// collision operator but only for Fluid/Wall/MovingWall node kinds (open
/// boundaries need the two-grid AB scheme; builders reject the combination).
///
/// `parity` names the *current* state of the grid: `Reversed` runs the odd
/// step (pull reversed neighbor slots, collide, scatter to neighbors — grid
/// becomes `Streamed`); `Streamed` runs the even step (gather own slots /
/// wall mailboxes, collide, store locally reversed — grid becomes
/// `Reversed`). Cells where `skip_mask` is `true` are left untouched, which
/// is how the optimized dispatch runs only the boundary-shell remainder.
///
/// Solid cells are never processed; their slots serve as bounce-back
/// mailboxes and hold scheme-dependent (but always finite) values.
///
/// # Safety
/// `raw` must point at `L::Q * cells` writable scalars laid out SoA
/// (plane-major). Concurrent callers must cover disjoint cell sets; the AA
/// slot-ownership discipline (each slot is read and written only by the one
/// cell that owns it, gather-before-scatter) makes cross-slab odd-step
/// scatters race-free under any partition or pass order.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn aa_generic_rect<L: Lattice>(
    flags: &FlagField,
    raw: *mut Scalar,
    collision: &CollisionKind,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    skip_mask: Option<&[bool]>,
) {
    let dims = flags.dims();
    debug_assert!(ys.end <= dims.ny && xr.end <= dims.nx);
    let cells = dims.cells();
    let mut f = [0.0; MAX_Q];
    for y in ys {
        for x in xr.clone() {
            for z in 0..dims.nz {
                let this = dims.idx(x, y, z);
                if let Some(mask) = skip_mask {
                    if mask[this] {
                        continue;
                    }
                }
                let kind = flags.kind(this);
                match kind {
                    NodeKind::Fluid => {}
                    NodeKind::Wall | NodeKind::MovingWall { .. } => continue,
                    other => panic!(
                        "AA-pattern streaming supports Fluid/Wall/MovingWall only, \
                         found {other:?} at ({x},{y},{z}); use StorageScheme::Ab \
                         for open/NEBB boundaries"
                    ),
                }
                match parity {
                    AaParity::Reversed => {
                        // Odd step: the reversed slot (x, q) holds f*_opp(q)(x),
                        // so direction q's incoming population sits in plane
                        // opp(q) of the upwind neighbor — or, against a wall,
                        // bounced back in our own plane q.
                        for q in 0..L::Q {
                            let c = L::C[q];
                            let [a, b, d] =
                                dims.neighbor_periodic(x, y, z, [-c[0], -c[1], -c[2]]);
                            let n = dims.idx(a, b, d);
                            f[q] = match flags.kind(n) {
                                NodeKind::Wall => *raw.add(q * cells + this),
                                NodeKind::MovingWall { u } => {
                                    let cu = c[0] as Scalar * u[0]
                                        + c[1] as Scalar * u[1]
                                        + c[2] as Scalar * u[2];
                                    *raw.add(q * cells + this) + 6.0 * L::W[q] * cu
                                }
                                _ => *raw.add(L::OPP[q] * cells + n),
                            };
                        }
                        collide::<L>(&mut f[..L::Q], collision);
                        // Scatter unconditionally — writes into solid neighbors
                        // are the bounce-back mailboxes the even step reads.
                        for q in 0..L::Q {
                            let c = L::C[q];
                            let [a, b, d] = dims.neighbor_periodic(x, y, z, [c[0], c[1], c[2]]);
                            let m = dims.idx(a, b, d);
                            *raw.add(q * cells + m) = f[q];
                        }
                    }
                    AaParity::Streamed => {
                        // Even step: the odd scatter already streamed, so slot
                        // (y, q) holds f_q(y) — except where the writer cell is
                        // solid, in which case our own odd scatter parked
                        // f*_opp(q)(y) in the wall's mailbox (n, opp(q)).
                        for q in 0..L::Q {
                            let c = L::C[q];
                            let [a, b, d] =
                                dims.neighbor_periodic(x, y, z, [-c[0], -c[1], -c[2]]);
                            let n = dims.idx(a, b, d);
                            f[q] = match flags.kind(n) {
                                NodeKind::Wall => *raw.add(L::OPP[q] * cells + n),
                                NodeKind::MovingWall { u } => {
                                    let cu = c[0] as Scalar * u[0]
                                        + c[1] as Scalar * u[1]
                                        + c[2] as Scalar * u[2];
                                    *raw.add(L::OPP[q] * cells + n) + 6.0 * L::W[q] * cu
                                }
                                _ => *raw.add(q * cells + this),
                            };
                        }
                        collide::<L>(&mut f[..L::Q], collision);
                        // Store locally reversed, returning to the Reversed state.
                        for q in 0..L::Q {
                            *raw.add(L::OPP[q] * cells + this) = f[q];
                        }
                    }
                }
            }
        }
    }
}

/// Safe wrapper over [`aa_generic_rect`]: one AA half-step of the flavor named
/// by `parity` over the rectangle `xr × ys` of the single grid `field`.
pub fn aa_step_rect<L: Lattice>(
    flags: &FlagField,
    field: &mut SoaField<L>,
    collision: &CollisionKind,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
) {
    debug_assert_eq!(field.raw().len(), L::Q * flags.dims().cells());
    // SAFETY: `&mut field` proves exclusive access to the grid.
    unsafe {
        aa_generic_rect::<L>(
            flags,
            field.raw_mut().as_mut_ptr(),
            collision,
            parity,
            xr,
            ys,
            None,
        );
    }
}

/// AA-pattern counterpart of [`fused_step_optimized`]: one in-place AA
/// half-step over the y-slab `ys`, fastest eligible interior kernel plus the
/// generic AA sweep on the boundary shell. The grid's parity flips after this
/// returns (the caller owns the parity bookkeeping).
pub fn aa_fused_step_optimized(
    flags: &FlagField,
    field: &mut SoaField<D3Q19>,
    collision: &CollisionKind,
    interior: &InteriorIndex,
    parity: AaParity,
    ys: Range<usize>,
    tile_z: usize,
) -> KernelClass {
    aa_fused_step_optimized_rect(
        flags,
        field,
        collision,
        interior,
        parity,
        0..flags.dims().nx,
        ys,
        tile_z,
    )
}

/// [`aa_fused_step_optimized`] restricted to the x range `xr` (used by the
/// distributed engine for the inner rectangle of a subdomain).
#[allow(clippy::too_many_arguments)]
pub fn aa_fused_step_optimized_rect(
    flags: &FlagField,
    field: &mut SoaField<D3Q19>,
    collision: &CollisionKind,
    interior: &InteriorIndex,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
) -> KernelClass {
    let raw = field.raw_mut().as_mut_ptr();
    let omega = match collision {
        CollisionKind::Bgk(p) => p.omega,
        // No hand-optimized AA interior kernel for variable-ω / forced /
        // moment-space operators; run the generic AA sweep on the whole rect.
        _ => {
            // SAFETY: `&mut field` proves exclusive access.
            unsafe { aa_generic_rect::<D3Q19>(flags, raw, collision, parity, xr, ys, None) };
            return KernelClass::Generic;
        }
    };
    let (path, class) = crate::simd::select_fast_path();
    // SAFETY: `&mut field` proves exclusive access; the interior index came
    // from this geometry's flags; slot ownership makes the interior-then-
    // remainder pass order race-free (each slot is read and written only by
    // the single cell that owns it, which gathers before scattering).
    unsafe {
        match path {
            FastPath::MaskScalar => aa_d3q19_interior_raw(
                flags,
                raw,
                omega,
                parity,
                xr.clone(),
                ys.clone(),
                tile_z,
                interior.mask(),
            ),
            _ => crate::simd::aa_d3q19_interior_simd(
                flags,
                raw,
                omega,
                parity,
                xr.clone(),
                ys.clone(),
                tile_z,
                interior.runs(),
                path,
            ),
        }
        // Finish every cell the fast path skipped, with the caller's collision.
        aa_generic_rect::<D3Q19>(flags, raw, collision, parity, xr, ys, Some(interior.mask()));
    }
    class
}

/// Swap each direction plane `q` with its opposite `opp(q)` in place — the
/// whole-grid slot reversal that converts between the canonical (AB-ordered)
/// post-collision state and the AA `Reversed` state. An involution.
pub fn reverse_planes<L: Lattice>(field: &mut SoaField<L>) {
    let cells = field.dims().cells();
    let raw = field.raw_mut();
    for q in 0..L::Q {
        let o = L::OPP[q];
        if q < o {
            let (lo, hi) = raw.split_at_mut(o * cells);
            lo[q * cells..(q + 1) * cells].swap_with_slice(&mut hi[..cells]);
        }
    }
}

/// Canonicalize an AA grid in the `Streamed` state: slot `(y, q)` holds
/// `f*_q(y − c_q)`, so the canonical post-collision value of cell `x` in
/// direction `q` sits at `(x + c_q, q)` (periodic wrap; for a solid neighbor
/// that slot is the mailbox the odd scatter parked it in — same formula).
/// Solid cells' own canonical values are scheme-dependent mailbox leftovers
/// (always finite, never fed back into the dynamics).
pub fn canonicalize_streamed<L: Lattice>(grid: &SoaField<L>) -> SoaField<L> {
    let dims = grid.dims();
    let mut out = SoaField::<L>::new(dims);
    for y in 0..dims.ny {
        for x in 0..dims.nx {
            for z in 0..dims.nz {
                let this = dims.idx(x, y, z);
                for q in 0..L::Q {
                    let c = L::C[q];
                    let [a, b, d] = dims.neighbor_periodic(x, y, z, [c[0], c[1], c[2]]);
                    out.set(this, q, grid.get(dims.idx(a, b, d), q));
                }
            }
        }
    }
    out
}

/// Compute `(rho, u)` of a cell directly from a population field.
#[inline]
pub fn cell_moments<L: Lattice, F: PopField<L>>(field: &F, cell: usize) -> (Scalar, [Scalar; 3]) {
    let mut f = [0.0; MAX_Q];
    field.load_cell(cell, &mut f[..L::Q]);
    let (rho, j) = moments::<L>(&f[..L::Q]);
    (rho, crate::equilibrium::velocity(rho, j))
}

/// Initialize every non-solid cell of `field` to `f_eq(rho, u)`.
pub fn initialize_equilibrium<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    field: &mut F,
    rho: Scalar,
    u: [Scalar; 3],
) {
    let mut feq = [0.0; MAX_Q];
    equilibrium::<L>(rho, u, &mut feq[..L::Q]);
    for cell in 0..field.cells() {
        if !flags.kind(cell).is_solid() {
            field.store_cell(cell, &feq[..L::Q]);
        } else {
            // Deterministic inert state for solids.
            for q in 0..L::Q {
                field.set(cell, q, L::W[q] * rho);
            }
        }
    }
}

/// Initialize with a position-dependent velocity field (e.g. Taylor–Green).
pub fn initialize_with<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    field: &mut F,
    mut state: impl FnMut(usize, usize, usize) -> (Scalar, [Scalar; 3]),
) {
    let dims = flags.dims();
    let mut feq = [0.0; MAX_Q];
    for [x, y, z] in dims.iter() {
        let cell = dims.idx(x, y, z);
        let (rho, u) = state(x, y, z);
        if !flags.kind(cell).is_solid() {
            equilibrium::<L>(rho, u, &mut feq[..L::Q]);
            field.store_cell(cell, &feq[..L::Q]);
        } else {
            for q in 0..L::Q {
                field.set(cell, q, L::W[q] * rho);
            }
        }
    }
}

/// Count flop-relevant (fluid) cells — the "lattice updates" of GLUPS accounting.
pub fn active_cells(flags: &FlagField) -> usize {
    flags.census().fluid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::BgkParams;
    use crate::geometry::GridDims;
    use crate::lattice::D2Q9;
    use crate::layout::AosField;

    fn setup_random_field<L: Lattice, F: PopField<L>>(dims: GridDims, seed: u64) -> F {
        let mut field = F::new(dims);
        let mut s = seed;
        let mut next = move || {
            // xorshift64*
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as Scalar / (1u64 << 53) as Scalar
        };
        for cell in 0..field.cells() {
            for q in 0..L::Q {
                field.set(cell, q, 0.02 + 0.05 * next());
            }
        }
        field
    }

    #[test]
    fn fused_step_preserves_mass_on_periodic_domain() {
        let dims = GridDims::new(6, 5, 4);
        let flags = FlagField::new(dims);
        let src: SoaField<D3Q19> = setup_random_field(dims, 7);
        let mut dst = SoaField::<D3Q19>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        fused_step(&flags, &src, &mut dst, &coll);

        let total = |f: &SoaField<D3Q19>| -> Scalar {
            (0..f.cells())
                .map(|c| cell_moments::<D3Q19, _>(f, c).0)
                .sum()
        };
        assert!((total(&src) - total(&dst)).abs() < 1e-10);
    }

    #[test]
    fn fused_step_preserves_momentum_on_periodic_domain() {
        let dims = GridDims::new(4, 4, 4);
        let flags = FlagField::new(dims);
        let src: SoaField<D3Q19> = setup_random_field(dims, 99);
        let mut dst = SoaField::<D3Q19>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.7));
        fused_step(&flags, &src, &mut dst, &coll);

        let mom = |f: &SoaField<D3Q19>| -> [Scalar; 3] {
            let mut m = [0.0; 3];
            let mut buf = [0.0; MAX_Q];
            for c in 0..f.cells() {
                f.load_cell(c, &mut buf[..19]);
                let (_, j) = moments::<D3Q19>(&buf[..19]);
                for a in 0..3 {
                    m[a] += j[a];
                }
            }
            m
        };
        let (m0, m1) = (mom(&src), mom(&dst));
        for a in 0..3 {
            assert!(
                (m0[a] - m1[a]).abs() < 1e-10,
                "axis {a}: {} vs {}",
                m0[a],
                m1[a]
            );
        }
    }

    #[test]
    fn soa_and_aos_produce_identical_states() {
        let dims = GridDims::new(5, 4, 3);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));

        let soa_src: SoaField<D3Q19> = setup_random_field(dims, 5);
        let mut aos_src = AosField::<D3Q19>::new(dims);
        for c in 0..dims.cells() {
            for q in 0..19 {
                aos_src.set(c, q, soa_src.get(c, q));
            }
        }
        let mut soa_dst = SoaField::<D3Q19>::new(dims);
        let mut aos_dst = AosField::<D3Q19>::new(dims);
        fused_step(&flags, &soa_src, &mut soa_dst, &coll);
        fused_step(&flags, &aos_src, &mut aos_dst, &coll);
        for c in 0..dims.cells() {
            for q in 0..19 {
                assert_eq!(soa_dst.get(c, q), aos_dst.get(c, q), "cell {c} q {q}");
            }
        }
    }

    #[test]
    fn optimized_kernel_matches_generic() {
        let dims = GridDims::new(8, 7, 6);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        // Add an off-center obstacle to exercise the mask boundary.
        flags.set(3, 3, 3, NodeKind::Wall);
        flags.set(4, 3, 3, NodeKind::Wall);

        let tau = 0.85;
        let coll = CollisionKind::Bgk(BgkParams::from_tau(tau));
        let src: SoaField<D3Q19> = setup_random_field(dims, 21);
        let interior = InteriorIndex::build::<D3Q19>(&flags);

        let mut ref_dst = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut ref_dst, &coll);

        // Every tile size must agree: bit-for-bit on the scalar-semantics
        // paths (the collision kind is threaded through with no ω→τ→ω
        // round-trip and tiling only permutes independent per-cell updates),
        // within 1e-12 when the AVX2+FMA lane is auto-selected.
        let tol = crate::simd::dispatch_tolerance();
        for tile_z in [0, 1, 2, 3, 70] {
            let mut opt_dst = SoaField::<D3Q19>::new(dims);
            let class = fused_step_optimized(
                &flags,
                &src,
                &mut opt_dst,
                &coll,
                &interior,
                0..dims.ny,
                tile_z,
            );
            assert_ne!(class, KernelClass::Generic, "BGK must take a fast path");

            for c in 0..dims.cells() {
                for q in 0..19 {
                    let (r, o) = (ref_dst.get(c, q), opt_dst.get(c, q));
                    assert!(
                        (r - o).abs() <= tol,
                        "tile_z {tile_z} cell {c} q {q}: generic {r} vs optimized {o} (tol {tol:e})"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_dispatch_falls_back_for_non_bgk_operators() {
        let dims = GridDims::new(6, 6, 6);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        let src: SoaField<D3Q19> = setup_random_field(dims, 41);
        let interior = InteriorIndex::build::<D3Q19>(&flags);
        let coll = CollisionKind::SmagorinskyLes(
            crate::collision::SmagorinskyParams::new(BgkParams::from_tau(0.8), 0.12).unwrap(),
        );

        let mut ref_dst = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut ref_dst, &coll);
        let mut opt_dst = SoaField::<D3Q19>::new(dims);
        let class =
            fused_step_optimized(&flags, &src, &mut opt_dst, &coll, &interior, 0..dims.ny, 2);
        assert_eq!(class, KernelClass::Generic);
        for c in 0..dims.cells() {
            for q in 0..19 {
                assert_eq!(ref_dst.get(c, q), opt_dst.get(c, q), "cell {c} q {q}");
            }
        }
    }

    #[test]
    fn interior_runs_cover_exactly_the_mask() {
        let dims = GridDims::new(9, 6, 12);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        // Mid-pencil obstacle: its 1-neighborhood leaves interior cells on
        // both sides in z, so the pencil splits into two runs.
        flags.set(4, 3, 5, NodeKind::Wall);
        flags.set(4, 3, 6, NodeKind::Wall);
        let mask = interior_mask::<D3Q19>(&flags);
        let runs = InteriorRuns::from_mask(dims, &mask);

        // Reconstruct a mask from the runs; it must match the original.
        let mut rebuilt = vec![false; dims.cells()];
        for p in 0..dims.nx * dims.ny {
            for &(a, b) in runs.pencil(p) {
                assert!(a < b, "empty span emitted");
                for z in a..b {
                    rebuilt[p * dims.nz + z as usize] = true;
                }
            }
        }
        assert_eq!(mask, rebuilt);
        assert_eq!(runs.cell_count(), mask.iter().filter(|&&m| m).count());
        // The obstacle splits at least one pencil into two runs, so there are
        // strictly more runs than pencils holding any.
        let pencils_with_runs = (0..dims.nx * dims.ny)
            .filter(|&p| !runs.pencil(p).is_empty())
            .count();
        assert!(pencils_with_runs > 0);
        assert!(runs.run_count() > pencils_with_runs);
    }

    #[test]
    fn simd_interior_kernel_matches_scalar_on_runs() {
        // Direct kernel-level check: portable lane bit-exact vs the mask-based
        // scalar kernel; AVX2 lane (when present) within 1e-12.
        let dims = GridDims::new(8, 6, 13); // nz−2 = 11: full lanes + remainder
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        flags.set(3, 2, 6, NodeKind::Wall); // split runs mid-pencil
        let src: SoaField<D3Q19> = setup_random_field(dims, 77);
        let interior = InteriorIndex::build::<D3Q19>(&flags);
        let omega = BgkParams::from_tau(0.85).omega;

        let mut scalar_dst = SoaField::<D3Q19>::new(dims);
        fused_step_d3q19_interior_tiled(
            &flags,
            &src,
            &mut scalar_dst,
            omega,
            0..dims.nx,
            0..dims.ny,
            0,
            interior.mask(),
        );

        for tile_z in [0, 1, 3, 70] {
            let mut simd_dst = SoaField::<D3Q19>::new(dims);
            fused_step_d3q19_interior_simd(
                &flags,
                &src,
                &mut simd_dst,
                omega,
                0..dims.nx,
                0..dims.ny,
                tile_z,
                interior.runs(),
                true, // portable lane: must be bit-exact
            );
            for c in 0..dims.cells() {
                for q in 0..19 {
                    assert_eq!(
                        scalar_dst.get(c, q),
                        simd_dst.get(c, q),
                        "portable lane diverged: tile_z {tile_z} cell {c} q {q}"
                    );
                }
            }

            if crate::simd::simd_available() {
                let mut avx_dst = SoaField::<D3Q19>::new(dims);
                fused_step_d3q19_interior_simd(
                    &flags,
                    &src,
                    &mut avx_dst,
                    omega,
                    0..dims.nx,
                    0..dims.ny,
                    tile_z,
                    interior.runs(),
                    false,
                );
                for c in 0..dims.cells() {
                    for q in 0..19 {
                        let (s, v) = (scalar_dst.get(c, q), avx_dst.get(c, q));
                        assert!(
                            (s - v).abs() <= 1e-12,
                            "avx2 lane out of tolerance: tile_z {tile_z} cell {c} q {q}: {s} vs {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interior_mask_excludes_obstacle_neighbors() {
        let dims = GridDims::new(7, 7, 7);
        let mut flags = FlagField::new(dims);
        flags.set(3, 3, 3, NodeKind::Wall);
        let mask = interior_mask::<D3Q19>(&flags);
        // The wall itself and any cell that pulls from it are excluded.
        assert!(!mask[dims.idx(3, 3, 3)]);
        assert!(!mask[dims.idx(4, 3, 3)]);
        assert!(!mask[dims.idx(3, 4, 3)]);
        // A far-away interior cell is included.
        assert!(mask[dims.idx(1, 1, 1)]);
        // Geometric boundary is excluded even on an all-fluid grid.
        assert!(!mask[dims.idx(0, 3, 3)]);
    }

    #[test]
    fn inlet_cells_hold_imposed_equilibrium_after_step() {
        let dims = GridDims::new(6, 4, 3);
        let mut flags = FlagField::new(dims);
        let u_in = [0.07, 0.0, 0.0];
        flags.paint_inflow_outflow_x(1.0, u_in);
        let src: SoaField<D3Q19> = setup_random_field(dims, 3);
        let mut dst = SoaField::<D3Q19>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        fused_step(&flags, &src, &mut dst, &coll);

        let (rho, u) = cell_moments::<D3Q19, _>(&dst, dims.idx(0, 2, 1));
        assert!((rho - 1.0).abs() < 1e-12);
        assert!((u[0] - 0.07).abs() < 1e-12);
        assert!(u[1].abs() < 1e-12);
    }

    #[test]
    fn outlet_cells_copy_interior_neighbor() {
        let dims = GridDims::new(6, 4, 3);
        let mut flags = FlagField::new(dims);
        flags.paint_inflow_outflow_x(1.0, [0.05, 0.0, 0.0]);
        let src: SoaField<D3Q19> = setup_random_field(dims, 11);
        let mut dst = SoaField::<D3Q19>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        fused_step(&flags, &src, &mut dst, &coll);

        let out = dims.idx(5, 1, 1);
        let nb = dims.idx(4, 1, 1);
        for q in 0..19 {
            assert_eq!(dst.get(out, q), src.get(nb, q));
        }
    }

    #[test]
    fn moving_wall_injects_momentum() {
        // A sealed 2-D cavity with a moving lid must develop net x-momentum.
        let dims = GridDims::new2d(8, 8);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        flags.paint_lid([0.1, 0.0, 0.0]);
        let mut src = SoaField::<D2Q9>::new(dims);
        initialize_equilibrium::<D2Q9, _>(&flags, &mut src, 1.0, [0.0; 3]);
        let mut dst = SoaField::<D2Q9>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        for _ in 0..10 {
            fused_step(&flags, &src, &mut dst, &coll);
            std::mem::swap(&mut src, &mut dst);
        }
        let mut jx = 0.0;
        for c in 0..dims.cells() {
            if flags.kind(c).is_fluid() {
                let (rho, u) = cell_moments::<D2Q9, _>(&src, c);
                jx += rho * u[0];
            }
        }
        assert!(jx > 1e-6, "lid failed to drag fluid: jx = {jx}");
    }

    #[test]
    fn static_walls_keep_fluid_at_rest() {
        // Equilibrium fluid at rest in a sealed box stays exactly at rest.
        let dims = GridDims::new(6, 6, 6);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        let mut src = SoaField::<D3Q19>::new(dims);
        initialize_equilibrium::<D3Q19, _>(&flags, &mut src, 1.0, [0.0; 3]);
        let mut dst = SoaField::<D3Q19>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.6));
        for _ in 0..5 {
            fused_step(&flags, &src, &mut dst, &coll);
            std::mem::swap(&mut src, &mut dst);
        }
        for c in 0..dims.cells() {
            if flags.kind(c).is_fluid() {
                let (rho, u) = cell_moments::<D3Q19, _>(&src, c);
                assert!((rho - 1.0).abs() < 1e-12);
                for a in 0..3 {
                    assert!(u[a].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn slab_union_equals_full_step() {
        let dims = GridDims::new(5, 6, 4);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        let src: SoaField<D3Q19> = setup_random_field(dims, 17);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.75));

        let mut whole = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut whole, &coll);

        let mut pieces = SoaField::<D3Q19>::new(dims);
        fused_step_range(&flags, &src, &mut pieces, &coll, 0..2);
        fused_step_range(&flags, &src, &mut pieces, &coll, 2..5);
        fused_step_range(&flags, &src, &mut pieces, &coll, 5..6);

        for c in 0..dims.cells() {
            for q in 0..19 {
                assert_eq!(whole.get(c, q), pieces.get(c, q));
            }
        }
    }
}
