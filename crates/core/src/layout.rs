//! Population storage layouts: structure-of-arrays (SoA) and array-of-structures
//! (AoS), plus the streaming-scheme storage behind the solver: the classic A-B
//! (ping-pong) double buffer and the single-grid AA-pattern.
//!
//! The paper motivates SoA explicitly (§IV-A/IV-C): with D3Q19, updating one cell
//! touches 19 populations that live far apart under AoS, causing many small DMA
//! transactions; SoA keeps each direction's populations contiguous so that a pencil
//! of cells streams as one large DMA. We implement **both** layouts behind one trait
//! so the claim is benchmarkable (`bench/benches/layouts.rs`) and so property tests
//! can assert layout-independence of the physics.
//!
//! The [`StorageScheme`] selector extends the same argument to the streaming
//! pattern itself: A-B keeps two full copies of the populations and every step
//! streams one into the other, while the AA-pattern (Bailey et al.; see
//! `docs/PERFORMANCE.md`) keeps a *single* grid and alternates two in-place step
//! flavors, roughly halving both bytes moved per lattice update and resident
//! footprint — the decisive lever once the fused kernel is memory-bound.

use crate::geometry::GridDims;
use crate::lattice::Lattice;
use crate::Scalar;
use std::marker::PhantomData;

/// Runtime layout selector, used by configuration code and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Structure of arrays: `data[q · cells + cell]` (the production layout).
    Soa,
    /// Array of structures: `data[cell · Q + q]` (the baseline the paper rejects).
    Aos,
}

impl Layout {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Layout::Soa => "SoA",
            Layout::Aos => "AoS",
        }
    }
}

/// A population field: `Q` scalars per cell in some memory layout.
pub trait PopField<L: Lattice>: Clone + Send + Sync + 'static {
    /// Allocate a zero-initialized field for `dims`.
    fn new(dims: GridDims) -> Self;

    /// Grid dimensions this field was allocated for.
    fn dims(&self) -> GridDims;

    /// Number of cells.
    fn cells(&self) -> usize {
        self.dims().cells()
    }

    /// Read population `q` of `cell`.
    fn get(&self, cell: usize, q: usize) -> Scalar;

    /// Write population `q` of `cell`.
    fn set(&mut self, cell: usize, q: usize, v: Scalar);

    /// Copy all `Q` populations of `cell` into `out`.
    #[inline]
    fn load_cell(&self, cell: usize, out: &mut [Scalar]) {
        for q in 0..L::Q {
            out[q] = self.get(cell, q);
        }
    }

    /// Write all `Q` populations of `cell` from `vals`.
    #[inline]
    fn store_cell(&mut self, cell: usize, vals: &[Scalar]) {
        for q in 0..L::Q {
            self.set(cell, q, vals[q]);
        }
    }

    /// Fill every cell with the same population vector.
    fn fill_with(&mut self, vals: &[Scalar]) {
        for cell in 0..self.cells() {
            self.store_cell(cell, vals);
        }
    }

    /// Offset of `(cell, q)` within the raw backing storage. Distinct `(cell, q)`
    /// pairs map to distinct offsets — the contract the shared-memory parallel
    /// driver relies on for race freedom.
    fn index_of(&self, cell: usize, q: usize) -> usize;

    /// View of the raw backing storage (layout-specific ordering).
    fn raw(&self) -> &[Scalar];

    /// Mutable view of the raw backing storage (layout-specific ordering).
    fn raw_mut(&mut self) -> &mut [Scalar];

    /// The layout tag of this implementation.
    fn layout() -> Layout;
}

/// Structure-of-arrays storage: direction-major, `data[q · cells + cell]`.
///
/// This is the layout SunwayLB ships: each direction plane is contiguous, so a
/// z-pencil of one direction is a single contiguous run — the DMA-friendly shape.
#[derive(Debug, Clone)]
pub struct SoaField<L: Lattice> {
    dims: GridDims,
    data: Vec<Scalar>,
    _lattice: PhantomData<L>,
}

impl<L: Lattice> SoaField<L> {
    /// Immutable view of one direction plane (all cells' population `q`).
    #[inline]
    pub fn plane(&self, q: usize) -> &[Scalar] {
        let n = self.dims.cells();
        &self.data[q * n..(q + 1) * n]
    }

    /// Mutable view of one direction plane.
    #[inline]
    pub fn plane_mut(&mut self, q: usize) -> &mut [Scalar] {
        let n = self.dims.cells();
        &mut self.data[q * n..(q + 1) * n]
    }
}

impl<L: Lattice> PopField<L> for SoaField<L> {
    fn new(dims: GridDims) -> Self {
        Self {
            dims,
            data: vec![0.0; dims.cells() * L::Q],
            _lattice: PhantomData,
        }
    }

    #[inline]
    fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline(always)]
    fn get(&self, cell: usize, q: usize) -> Scalar {
        debug_assert!(cell < self.dims.cells() && q < L::Q);
        self.data[q * self.dims.cells() + cell]
    }

    #[inline(always)]
    fn set(&mut self, cell: usize, q: usize, v: Scalar) {
        debug_assert!(cell < self.dims.cells() && q < L::Q);
        let n = self.dims.cells();
        self.data[q * n + cell] = v;
    }

    #[inline(always)]
    fn index_of(&self, cell: usize, q: usize) -> usize {
        q * self.dims.cells() + cell
    }

    fn raw(&self) -> &[Scalar] {
        &self.data
    }

    fn raw_mut(&mut self) -> &mut [Scalar] {
        &mut self.data
    }

    fn layout() -> Layout {
        Layout::Soa
    }
}

/// Array-of-structures storage: cell-major, `data[cell · Q + q]`.
///
/// The baseline the paper rejects for Sunway (random DMA per direction); kept as a
/// comparison point and because on cache-based CPUs it is sometimes competitive.
#[derive(Debug, Clone)]
pub struct AosField<L: Lattice> {
    dims: GridDims,
    data: Vec<Scalar>,
    _lattice: PhantomData<L>,
}

impl<L: Lattice> AosField<L> {
    /// All `Q` populations of one cell as a contiguous slice.
    #[inline]
    pub fn cell(&self, cell: usize) -> &[Scalar] {
        &self.data[cell * L::Q..(cell + 1) * L::Q]
    }
}

impl<L: Lattice> PopField<L> for AosField<L> {
    fn new(dims: GridDims) -> Self {
        Self {
            dims,
            data: vec![0.0; dims.cells() * L::Q],
            _lattice: PhantomData,
        }
    }

    #[inline]
    fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline(always)]
    fn get(&self, cell: usize, q: usize) -> Scalar {
        debug_assert!(cell < self.dims.cells() && q < L::Q);
        self.data[cell * L::Q + q]
    }

    #[inline(always)]
    fn set(&mut self, cell: usize, q: usize, v: Scalar) {
        debug_assert!(cell < self.dims.cells() && q < L::Q);
        self.data[cell * L::Q + q] = v;
    }

    #[inline(always)]
    fn index_of(&self, cell: usize, q: usize) -> usize {
        cell * L::Q + q
    }

    fn raw(&self) -> &[Scalar] {
        &self.data
    }

    fn raw_mut(&mut self) -> &mut [Scalar] {
        &mut self.data
    }

    fn layout() -> Layout {
        Layout::Aos
    }
}

/// Streaming/storage scheme of a solver: how population state is laid out
/// across time steps.
///
/// The wire names (`"ab"`/`"aa"`) are used by the serve job spec and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageScheme {
    /// Two full grids, ping-pong per step ([`AbBuffers`]). Supports every
    /// lattice, layout, collision operator and boundary kind.
    #[default]
    Ab,
    /// Single grid, AA-pattern in-place streaming: odd steps read pulled and
    /// write scattered, even steps read and write locally with direction slots
    /// reversed. Halves distribution-storage footprint and bytes/LUP; supports
    /// SoA fields with Fluid/Wall/MovingWall nodes (no inlet/outlet/NEBB yet).
    Aa,
}

impl StorageScheme {
    /// Canonical lowercase name (wire format).
    pub fn name(self) -> &'static str {
        match self {
            StorageScheme::Ab => "ab",
            StorageScheme::Aa => "aa",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ab" => Some(StorageScheme::Ab),
            "aa" => Some(StorageScheme::Aa),
            _ => None,
        }
    }
}

/// Which of the AA-pattern's two step flavors applies next, i.e. how the raw
/// single-grid state must currently be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AaParity {
    /// Post-collision populations stored with direction slots reversed:
    /// `raw[cell][q] = f*_opp(q)(cell)`. This is the state after
    /// initialization, after a restore, and after every even step; the next
    /// step is an *odd* (pull + scatter) step.
    #[default]
    Reversed,
    /// Streamed state: `raw[cell][q] = f*_q(cell − c_q)` — each slot holds the
    /// population that has already streamed *into* this cell. Holds after every
    /// odd step; the next step is an *even* (local permute) step.
    Streamed,
}

impl AaParity {
    /// The parity after one more step.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            AaParity::Reversed => AaParity::Streamed,
            AaParity::Streamed => AaParity::Reversed,
        }
    }

    /// Stable byte encoding for checkpoints (0 = reversed, 1 = streamed).
    pub fn as_u8(self) -> u8 {
        match self {
            AaParity::Reversed => 0,
            AaParity::Streamed => 1,
        }
    }

    /// Decode the checkpoint byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(AaParity::Reversed),
            1 => Some(AaParity::Streamed),
            _ => None,
        }
    }
}

/// Scheme-dispatched population storage: either an A-B pair or a single
/// AA-pattern grid plus its parity. This is what `Solver` holds; kernels and
/// drivers match on it once per step.
#[derive(Debug, Clone)]
pub enum Storage<F> {
    /// Double-buffered (ping-pong) state.
    #[allow(deprecated)]
    Ab(AbBuffers<F>),
    /// Single-grid AA-pattern state.
    Aa {
        /// The one and only population grid.
        field: F,
        /// How `field` must currently be interpreted / which step flavor is next.
        parity: AaParity,
    },
}

#[allow(deprecated)]
impl<F> Storage<F> {
    /// Build storage for `scheme`; `make` allocates one grid (called once for
    /// AA, twice for AB).
    pub fn with_scheme(scheme: StorageScheme, mut make: impl FnMut() -> F) -> Self {
        match scheme {
            StorageScheme::Ab => Storage::Ab(AbBuffers::new(make(), make())),
            StorageScheme::Aa => Storage::Aa {
                field: make(),
                parity: AaParity::Reversed,
            },
        }
    }

    /// Which scheme this storage implements.
    #[inline]
    pub fn scheme(&self) -> StorageScheme {
        match self {
            Storage::Ab(_) => StorageScheme::Ab,
            Storage::Aa { .. } => StorageScheme::Aa,
        }
    }

    /// AA parity, if this is AA storage.
    #[inline]
    pub fn parity(&self) -> Option<AaParity> {
        match self {
            Storage::Ab(_) => None,
            Storage::Aa { parity, .. } => Some(*parity),
        }
    }

    /// The grid holding the current readable state (AB: the `src` buffer; AA:
    /// the single grid, whose raw interpretation depends on [`Self::parity`]).
    #[inline]
    pub fn state(&self) -> &F {
        match self {
            Storage::Ab(b) => b.src(),
            Storage::Aa { field, .. } => field,
        }
    }

    /// Mutable access to the current state grid.
    #[inline]
    pub fn state_mut(&mut self) -> &mut F {
        match self {
            Storage::Ab(b) => b.src_mut(),
            Storage::Aa { field, .. } => field,
        }
    }
}

/// The A-B (ping-pong) buffer pair of the paper's Fig. 7.
///
/// Two full copies of the populations are kept; every time step reads from one and
/// writes to the other, then the roles swap. This is what makes the fused
/// streaming+collision kernel race-free: no cell ever reads a value written in the
/// same step.
#[deprecated(
    since = "0.7.0",
    note = "use the scheme-agnostic `Storage`/`StorageScheme` surface (`Solver::state()`, \
            `SolverBuilder::storage(...)`) instead of AB-only buffer plumbing"
)]
#[derive(Debug, Clone)]
pub struct AbBuffers<F> {
    bufs: [F; 2],
    /// Index of the buffer holding the *current* (readable) state.
    cur: usize,
}

#[allow(deprecated)]
impl<F> AbBuffers<F> {
    /// Build from two identically-sized fields; `a` holds the initial state.
    pub fn new(a: F, b: F) -> Self {
        Self {
            bufs: [a, b],
            cur: 0,
        }
    }

    /// The buffer holding the current state (the read side of the next step).
    #[inline]
    pub fn src(&self) -> &F {
        &self.bufs[self.cur]
    }

    /// Mutable access to the current state (for initialization / boundary fixes).
    #[inline]
    pub fn src_mut(&mut self) -> &mut F {
        &mut self.bufs[self.cur]
    }

    /// The buffer that the next step will write into.
    #[inline]
    pub fn dst_mut(&mut self) -> &mut F {
        &mut self.bufs[1 - self.cur]
    }

    /// Borrow `(src, dst)` simultaneously — the shape every kernel wants.
    #[inline]
    pub fn pair_mut(&mut self) -> (&F, &mut F) {
        let (lo, hi) = self.bufs.split_at_mut(1);
        if self.cur == 0 {
            (&lo[0], &mut hi[0])
        } else {
            (&hi[0], &mut lo[0])
        }
    }

    /// Borrow both buffers mutably as `(src, dst)` — the shape a multi-step
    /// wavefront sweep wants, since it alternates write targets within one
    /// call.
    #[inline]
    pub fn both_mut(&mut self) -> (&mut F, &mut F) {
        let (lo, hi) = self.bufs.split_at_mut(1);
        if self.cur == 0 {
            (&mut lo[0], &mut hi[0])
        } else {
            (&mut hi[0], &mut lo[0])
        }
    }

    /// Swap roles after a completed step.
    #[inline]
    pub fn flip(&mut self) {
        self.cur = 1 - self.cur;
    }

    /// Which physical buffer (0/1) is currently `src` — used by checkpointing.
    #[inline]
    pub fn current_index(&self) -> usize {
        self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{D2Q9, D3Q19};

    fn roundtrip<L: Lattice, F: PopField<L>>() {
        let dims = GridDims::new(3, 4, 5);
        let mut f = F::new(dims);
        assert_eq!(f.cells(), 60);
        // Write a unique value per (cell, q) and read it back.
        for cell in 0..f.cells() {
            for q in 0..L::Q {
                f.set(cell, q, (cell * 100 + q) as Scalar);
            }
        }
        for cell in 0..f.cells() {
            for q in 0..L::Q {
                assert_eq!(f.get(cell, q), (cell * 100 + q) as Scalar);
            }
        }
    }

    #[test]
    fn soa_roundtrip() {
        roundtrip::<D3Q19, SoaField<D3Q19>>();
        roundtrip::<D2Q9, SoaField<D2Q9>>();
    }

    #[test]
    fn aos_roundtrip() {
        roundtrip::<D3Q19, AosField<D3Q19>>();
        roundtrip::<D2Q9, AosField<D2Q9>>();
    }

    #[test]
    fn soa_plane_is_contiguous_per_direction() {
        let dims = GridDims::new(2, 2, 2);
        let mut f = SoaField::<D2Q9>::new(dims);
        for cell in 0..8 {
            f.set(cell, 3, 7.0);
        }
        assert!(f.plane(3).iter().all(|&v| v == 7.0));
        assert!(f.plane(2).iter().all(|&v| v == 0.0));
        // SoA raw ordering: plane q=0 occupies the first `cells` slots.
        f.set(0, 0, 1.5);
        assert_eq!(f.raw()[0], 1.5);
    }

    #[test]
    fn aos_cell_is_contiguous_per_cell() {
        let dims = GridDims::new2d(2, 2);
        let mut f = AosField::<D2Q9>::new(dims);
        for q in 0..9 {
            f.set(1, q, q as Scalar);
        }
        let c = f.cell(1);
        for (q, &v) in c.iter().enumerate() {
            assert_eq!(v, q as Scalar);
        }
        // AoS raw ordering: cell 1's populations start at offset Q.
        assert_eq!(f.raw()[9], 0.0);
    }

    #[test]
    fn load_store_cell_roundtrip() {
        let dims = GridDims::new2d(3, 3);
        let mut f = SoaField::<D2Q9>::new(dims);
        let vals: Vec<Scalar> = (0..9).map(|q| q as Scalar * 0.5).collect();
        f.store_cell(4, &vals);
        let mut out = vec![0.0; 9];
        f.load_cell(4, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn storage_scheme_names_roundtrip() {
        for s in [StorageScheme::Ab, StorageScheme::Aa] {
            assert_eq!(StorageScheme::parse(s.name()), Some(s));
        }
        assert_eq!(StorageScheme::parse("esoteric"), None);
        assert_eq!(StorageScheme::default(), StorageScheme::Ab);
    }

    #[test]
    fn aa_parity_flips_and_encodes() {
        assert_eq!(AaParity::Reversed.flip(), AaParity::Streamed);
        assert_eq!(AaParity::Streamed.flip(), AaParity::Reversed);
        for p in [AaParity::Reversed, AaParity::Streamed] {
            assert_eq!(AaParity::from_u8(p.as_u8()), Some(p));
        }
        assert_eq!(AaParity::from_u8(7), None);
    }

    #[test]
    fn storage_dispatches_state_by_scheme() {
        let dims = GridDims::new2d(2, 2);
        let mut ab = Storage::with_scheme(StorageScheme::Ab, || SoaField::<D2Q9>::new(dims));
        assert_eq!(ab.scheme(), StorageScheme::Ab);
        assert_eq!(ab.parity(), None);
        ab.state_mut().set(0, 0, 9.0);
        assert_eq!(ab.state().get(0, 0), 9.0);

        let mut aa = Storage::with_scheme(StorageScheme::Aa, || SoaField::<D2Q9>::new(dims));
        assert_eq!(aa.scheme(), StorageScheme::Aa);
        assert_eq!(aa.parity(), Some(AaParity::Reversed));
        aa.state_mut().set(1, 2, 3.5);
        assert_eq!(aa.state().get(1, 2), 3.5);
    }

    #[test]
    #[allow(deprecated)]
    fn ab_buffers_flip_and_pair() {
        let dims = GridDims::new2d(2, 2);
        let a = SoaField::<D2Q9>::new(dims);
        let b = SoaField::<D2Q9>::new(dims);
        let mut ab = AbBuffers::new(a, b);
        assert_eq!(ab.current_index(), 0);

        ab.src_mut().set(0, 0, 42.0);
        {
            let (src, dst) = ab.pair_mut();
            assert_eq!(src.get(0, 0), 42.0);
            dst.set(0, 0, 43.0);
        }
        ab.flip();
        assert_eq!(ab.current_index(), 1);
        assert_eq!(ab.src().get(0, 0), 43.0);
        // Flipping back recovers the original buffer.
        ab.flip();
        assert_eq!(ab.src().get(0, 0), 42.0);
    }

    #[test]
    fn fill_with_sets_every_cell() {
        let dims = GridDims::new(2, 2, 2);
        let mut f = AosField::<D3Q19>::new(dims);
        let vals: Vec<Scalar> = (0..19).map(|q| 1.0 + q as Scalar).collect();
        f.fill_with(&vals);
        for cell in 0..8 {
            for q in 0..19 {
                assert_eq!(f.get(cell, q), 1.0 + q as Scalar);
            }
        }
    }
}
