//! # swlb-core — Lattice Boltzmann core library
//!
//! This crate implements the numerical heart of SunwayLB-RS, a Rust reproduction of
//! the SunwayLB framework (Liu et al., IPDPS 2019 / TPDS 2023): lattice descriptors
//! (D2Q9, D3Q15, D3Q19, D3Q27), the LBGK collision operator with optional
//! Smagorinsky LES closure, structure-of-arrays and array-of-structures population
//! storage, A-B (ping-pong) double buffering, pull- and push-scheme streaming,
//! a fused streaming+collision kernel, boundary conditions (halfway bounce-back,
//! moving walls, velocity inlets, zero-gradient outlets, periodic wrap), macroscopic
//! field evaluation, and a shared-memory parallel solver.
//!
//! The crate is deliberately free of any machine model: it is plain, portable,
//! well-tested CPU code. The Sunway-specific execution schedules (LDM blocking, DMA,
//! register communication) live in `swlb-arch` and are validated against the
//! reference kernels defined here.
//!
//! ## Quick example
//!
//! ```
//! use swlb_core::prelude::*;
//!
//! // 2-D lid-driven cavity on a 32x32 grid.
//! let dims = GridDims::new2d(32, 32);
//! let mut solver = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.8)).build();
//! solver.flags_mut().set_box_walls();
//! solver.flags_mut().paint_lid([0.05, 0.0, 0.0]);
//! solver.initialize_uniform(1.0, [0.0; 3]);
//! solver.run(100);
//! let u = solver.macroscopic().velocity_magnitude();
//! assert!(u.iter().all(|v| v.is_finite()));
//! ```

// Indexed loops mirror the stencil mathematics throughout this workspace and
// are kept deliberately as the clearer idiom for this domain.
#![allow(clippy::needless_range_loop)]

pub mod boundary;
pub mod collision;
pub mod equilibrium;
pub mod error;
pub mod flags;
pub mod geometry;
pub mod kernels;
pub mod lattice;
pub mod layout;
pub mod macroscopic;
pub mod moment_rep;
pub mod mrt;
pub mod nebb;
pub mod parallel;
pub mod post;
pub mod simd;
pub mod solver;
pub mod stability;
pub mod stream;
pub mod temporal;
pub mod units;

/// Floating point scalar used throughout the solver.
///
/// The paper runs in double precision on Sunway (the SW26010 vector unit is
/// 4 x f64); we match that. All kernels are written against this alias so a
/// single edit switches the build to `f32` for experimentation.
pub type Scalar = f64;

/// Lattice speed of sound squared, `c_s^2 = 1/3` in lattice units.
pub const CS2: Scalar = 1.0 / 3.0;

/// Inverse of [`CS2`].
pub const INV_CS2: Scalar = 3.0;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::boundary::NodeKind;
    pub use crate::collision::{BgkParams, CollisionKind, SmagorinskyParams};
    pub use crate::equilibrium::equilibrium;
    pub use crate::error::{CoreError, Result};
    pub use crate::flags::FlagField;
    pub use crate::geometry::{GridDims, Idx3};
    pub use crate::lattice::{Lattice, D2Q9, D3Q15, D3Q19, D3Q27};
    pub use crate::layout::{
        AaParity, AosField, Layout, PopField, SoaField, Storage, StorageScheme,
    };
    pub use crate::macroscopic::MacroFields;
    pub use crate::parallel::ThreadPool;
    pub use crate::simd::{KernelClass, LanePolicy};
    pub use crate::solver::{Solver, SolverBuilder, StepStats};
    pub use crate::units::UnitConverter;
    pub use crate::Scalar;
    pub use swlb_obs::{Recorder, SwlbError, SwlbResult};
}
