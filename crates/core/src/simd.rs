//! SIMD execution layer for the fused D3Q19 kernel (the paper's vectorization rung).
//!
//! SunwayLB's Fig. 8 optimization ladder gains a large share of its single-node
//! speedup from explicit 256-bit vectorization of the fused propagation+collision
//! kernel (the SW26010 vector unit is 4 × f64). This module is the host mirror:
//! a fixed-width f64 [`Lane`] abstraction with
//!
//! * an AVX2+FMA lane (`std::arch` intrinsics behind `is_x86_feature_detected!`),
//! * a portable `[f64; 4]` lane that compiles everywhere and carries exactly the
//!   scalar kernel's rounding (every lane op is a separately rounded f64 op, so
//!   the expression tree matches [`crate::kernels`]' scalar interior kernel
//!   bit for bit),
//!
//! and the vectorized interior kernel [`d3q19_interior_simd`], which consumes
//! precomputed run-length-encoded interior runs ([`crate::kernels::InteriorRuns`])
//! instead of testing a per-cell `Vec<bool>` mask: the SoA layout is z-innermost
//! (`idx = (y·nx + x)·nz + z`), so within a run all 19 pull-scheme gathers are
//! plain contiguous (unaligned) lane-wide loads from a shifted line. Sub-lane
//! remainders fall back to the shared scalar per-cell update, so coverage is
//! identical to the mask-based scalar kernel. The same lanes also drive the
//! AA-pattern single-grid interior kernels ([`aa_d3q19_interior_simd`]): the odd
//! flavor pulls from reversed slots and scatters, the even flavor is a purely
//! local load/collide/reversed-store permute.
//!
//! Lane widths: the AVX2 lane and the default portable lane are 4 × f64
//! ([`LANES`]); an 8 × f64 AVX-512F lane (plus a bit-exact `[f64; 8]` portable
//! twin for pinning its chunking without the hardware) rides behind the same
//! [`Lane`] trait via its associated `WIDTH`.
//!
//! Dispatch policy (what [`select_fast_path`] resolves, reported per step via
//! the `kernel_class` observability gauge):
//!
//! * AVX-512F detected at runtime → the 8-wide AVX-512 lane
//!   ([`KernelClass::Simd`]); else AVX2+FMA detected → the AVX2 lane (also
//!   `Simd`). Both agree with the scalar kernel within 1e-12 (FMA contracts
//!   `a*b + c` into one rounding).
//! * `SWLB_NO_SIMD=1` in the environment, or no vector unit → the portable lane
//!   ([`KernelClass::Scalar`]); results are bit-exact against the scalar kernel.
//! * Benchmarks force the legacy mask-based scalar kernel via
//!   [`LanePolicy::ForceScalar`] for honest scalar baselines; equivalence runs
//!   pin specific lanes via `ForcePortable`/`ForceAvx2`/`ForceAvx512`.
//!
//! The module also hosts the host-metadata helpers (`cpu_features`,
//! `logical_cores`, `physical_cores`) that bench output and the CLI exit
//! summary embed so performance anomalies are diagnosable from the JSON alone.

use crate::flags::FlagField;
use crate::kernels::InteriorRuns;
use crate::lattice::{Lattice, D3Q19};
use crate::layout::AaParity;
use crate::Scalar;
use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Baseline lane width: 4 × f64, matching both AVX2 (256-bit) and the SW26010
/// vector unit the paper targets. The AVX-512 lane is 8 wide; kernels read the
/// width off [`Lane::WIDTH`], not this constant.
pub const LANES: usize = 4;

// ---------------------------------------------------------------------------
// Kernel class + dispatch policy.
// ---------------------------------------------------------------------------

/// Which kernel implementation served a step — exported as the `kernel_class`
/// observability gauge by `Solver` and `DistributedSolver`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Generic reference kernel (non-BGK collision, non-SoA layout, or a
    /// lattice without a fast path).
    Generic,
    /// Scalar-semantics interior fast path: the mask-based hand-optimized
    /// kernel or the portable lane (both bit-exact against the reference).
    Scalar,
    /// AVX2+FMA vectorized interior fast path (within 1e-12 of the reference).
    Simd,
}

impl KernelClass {
    /// Stable short name (used in bench JSON and the CLI exit summary).
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Generic => "generic",
            KernelClass::Scalar => "scalar",
            KernelClass::Simd => "simd",
        }
    }

    /// Numeric encoding for the `kernel_class` gauge (gauges are f64-only).
    pub fn as_gauge(self) -> f64 {
        match self {
            KernelClass::Generic => 0.0,
            KernelClass::Scalar => 1.0,
            KernelClass::Simd => 2.0,
        }
    }

    /// Inverse of [`KernelClass::as_gauge`].
    pub fn from_gauge(v: f64) -> Option<Self> {
        match v as i64 {
            0 => Some(KernelClass::Generic),
            1 => Some(KernelClass::Scalar),
            2 => Some(KernelClass::Simd),
            _ => None,
        }
    }
}

/// Process-wide override of the interior fast-path lane selection.
///
/// `Auto` (the default) resolves from the environment and CPU; the `Force*`
/// variants pin a specific implementation — benchmarks use `ForceScalar` for
/// an honest scalar baseline, equivalence tests use `ForcePortable` to pin the
/// bit-exact fallback lane without re-execing under `SWLB_NO_SIMD=1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePolicy {
    /// Resolve from `SWLB_NO_SIMD` and runtime CPU feature detection.
    Auto,
    /// Always run the portable `[f64; 4]` lane (scalar-exact).
    ForcePortable,
    /// Always run the legacy mask-based scalar interior kernel.
    ForceScalar,
    /// Pin the 4-wide AVX2+FMA lane even when AVX-512F is available (falls back
    /// to the portable 4-wide lane on CPUs without AVX2+FMA).
    ForceAvx2,
    /// Pin the 8-wide AVX-512F lane (falls back to the *8-wide* portable lane
    /// on CPUs without AVX-512F, preserving the 8-wide chunk split bit-exactly).
    ForceAvx512,
}

static LANE_POLICY: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide lane policy (tests serialize on their own mutex; the
/// policy is read once per dispatched step, so flipping it mid-run is safe).
pub fn set_lane_policy(policy: LanePolicy) {
    let v = match policy {
        LanePolicy::Auto => 0,
        LanePolicy::ForcePortable => 1,
        LanePolicy::ForceScalar => 2,
        LanePolicy::ForceAvx2 => 3,
        LanePolicy::ForceAvx512 => 4,
    };
    LANE_POLICY.store(v, Ordering::Relaxed);
}

/// The active process-wide lane policy.
pub fn lane_policy() -> LanePolicy {
    match LANE_POLICY.load(Ordering::Relaxed) {
        1 => LanePolicy::ForcePortable,
        2 => LanePolicy::ForceScalar,
        3 => LanePolicy::ForceAvx2,
        4 => LanePolicy::ForceAvx512,
        _ => LanePolicy::Auto,
    }
}

/// `SWLB_NO_SIMD=1` disables the AVX2 lane for the whole process (read once;
/// use [`set_lane_policy`] for in-process toggling in tests).
pub fn no_simd_env() -> bool {
    static NO_SIMD: OnceLock<bool> = OnceLock::new();
    *NO_SIMD.get_or_init(|| {
        std::env::var("SWLB_NO_SIMD")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Whether the AVX2+FMA lane can run on this CPU (runtime detection; always
/// `false` off x86_64).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the 8-wide AVX-512F lane can run on this CPU (runtime detection;
/// always `false` off x86_64).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Concrete implementation choice for an *eligible* interior fast path
/// (SoA + D3Q19 + plain BGK with an interior index supplied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FastPath {
    /// 8-wide AVX-512F lane over interior runs.
    Avx512,
    /// AVX2+FMA lane over interior runs.
    Avx2,
    /// Portable `[f64; 4]` lane over interior runs (scalar-exact).
    Portable,
    /// Portable `[f64; 8]` lane over interior runs (scalar-exact, 8-wide
    /// chunking — the software twin of the AVX-512 lane).
    Portable8,
    /// Legacy mask-based scalar kernel ([`crate::kernels::fused_step_d3q19_interior_tiled`]).
    MaskScalar,
}

/// Resolve the lane policy, environment and CPU into the fast path an eligible
/// step will take, plus the [`KernelClass`] it reports.
pub(crate) fn select_fast_path() -> (FastPath, KernelClass) {
    match lane_policy() {
        LanePolicy::ForceScalar => (FastPath::MaskScalar, KernelClass::Scalar),
        LanePolicy::ForcePortable => (FastPath::Portable, KernelClass::Scalar),
        LanePolicy::ForceAvx2 => {
            if !no_simd_env() && simd_available() {
                (FastPath::Avx2, KernelClass::Simd)
            } else {
                (FastPath::Portable, KernelClass::Scalar)
            }
        }
        LanePolicy::ForceAvx512 => {
            if !no_simd_env() && avx512_available() {
                (FastPath::Avx512, KernelClass::Simd)
            } else {
                (FastPath::Portable8, KernelClass::Scalar)
            }
        }
        LanePolicy::Auto => {
            if !no_simd_env() && avx512_available() {
                (FastPath::Avx512, KernelClass::Simd)
            } else if !no_simd_env() && simd_available() {
                (FastPath::Avx2, KernelClass::Simd)
            } else {
                (FastPath::Portable, KernelClass::Scalar)
            }
        }
    }
}

/// The [`KernelClass`] an eligible D3Q19/BGK fast-path step reports under the
/// current policy/environment/CPU.
pub fn selected_kernel_class() -> KernelClass {
    select_fast_path().1
}

/// Maximum absolute deviation from the scalar reference the active dispatch
/// may introduce per comparison: `0.0` (bit-exact) unless an FMA-contracting
/// vector lane (AVX2+FMA or AVX-512F) is selected, where fused roundings
/// deviate (≤ 1e-12 over the short runs the equivalence tests pin).
pub fn dispatch_tolerance() -> f64 {
    if selected_kernel_class() == KernelClass::Simd {
        1e-12
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// The Lane abstraction.
// ---------------------------------------------------------------------------

/// A fixed-width vector of [`Lane::WIDTH`] f64 values.
///
/// The kernel body is written once against this trait; the portable lanes give
/// it scalar-exact rounding (`mul_add` is two separately rounded ops), the
/// AVX2/AVX-512 lanes give it FMA contraction and 4-/8-wide arithmetic.
pub trait Lane: Copy {
    /// Implementation name (diagnostics).
    const NAME: &'static str;

    /// Number of f64 elements per vector.
    const WIDTH: usize;

    /// Load [`Lane::WIDTH`] consecutive f64 values (no alignment requirement).
    ///
    /// # Safety
    /// `p` must be valid for reading `WIDTH` f64 values.
    unsafe fn load(p: *const Scalar) -> Self;

    /// Store [`Lane::WIDTH`] consecutive f64 values (no alignment requirement).
    ///
    /// # Safety
    /// `p` must be valid for writing `WIDTH` f64 values.
    unsafe fn store(self, p: *mut Scalar);

    /// Broadcast one scalar into every element.
    fn splat(v: Scalar) -> Self;

    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;

    /// `self * b + c` — fused (one rounding) on the AVX2 lane, two separately
    /// rounded ops on the portable lane (matching scalar `a*b + c`).
    fn mul_add(self, b: Self, c: Self) -> Self;

    /// Elementwise negation (exact sign flip).
    fn neg(self) -> Self;

    /// `(jx/ρ, jy/ρ, jz/ρ)` via one reciprocal (`j · (1/ρ)`, matching the
    /// scalar kernel), with the vacuum guard: elements where `|ρ| < 1e-300`
    /// yield `+0.0`.
    fn velocities(jx: Self, jy: Self, jz: Self, rho: Self) -> (Self, Self, Self);
}

/// Defines a portable `[f64; N]` lane: plain f64 arithmetic per element. Rust
/// performs no floating-point contraction, so each op is one IEEE rounding —
/// the same expression tree as the scalar kernel, hence bit-exact results.
macro_rules! portable_lane {
    ($(#[$doc:meta])* $name:ident, $width:expr, $label:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy)]
        pub struct $name([Scalar; $width]);

        impl Lane for $name {
            const NAME: &'static str = $label;
            const WIDTH: usize = $width;

            #[inline(always)]
            unsafe fn load(p: *const Scalar) -> Self {
                let mut v = [0.0; $width];
                for (i, slot) in v.iter_mut().enumerate() {
                    *slot = unsafe { *p.add(i) };
                }
                $name(v)
            }

            #[inline(always)]
            unsafe fn store(self, p: *mut Scalar) {
                for (i, v) in self.0.iter().enumerate() {
                    unsafe { *p.add(i) = *v };
                }
            }

            #[inline(always)]
            fn splat(v: Scalar) -> Self {
                $name([v; $width])
            }

            #[inline(always)]
            fn add(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$width {
                    r[i] += o.0[i];
                }
                $name(r)
            }

            #[inline(always)]
            fn sub(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$width {
                    r[i] -= o.0[i];
                }
                $name(r)
            }

            #[inline(always)]
            fn mul(self, o: Self) -> Self {
                let mut r = self.0;
                for i in 0..$width {
                    r[i] *= o.0[i];
                }
                $name(r)
            }

            #[inline(always)]
            fn mul_add(self, b: Self, c: Self) -> Self {
                // Deliberately NOT f64::mul_add: two roundings, like scalar.
                let mut r = [0.0; $width];
                for i in 0..$width {
                    r[i] = self.0[i] * b.0[i] + c.0[i];
                }
                $name(r)
            }

            #[inline(always)]
            fn neg(self) -> Self {
                let mut r = self.0;
                for v in &mut r {
                    *v = -*v;
                }
                $name(r)
            }

            #[inline(always)]
            fn velocities(jx: Self, jy: Self, jz: Self, rho: Self) -> (Self, Self, Self) {
                let (mut ux, mut uy, mut uz) = ([0.0; $width], [0.0; $width], [0.0; $width]);
                for i in 0..$width {
                    // Mirror `equilibrium::velocity`'s vacuum guard exactly.
                    if rho.0[i].abs() < 1e-300 {
                        ux[i] = 0.0;
                        uy[i] = 0.0;
                        uz[i] = 0.0;
                    } else {
                        let inv = 1.0 / rho.0[i];
                        ux[i] = jx.0[i] * inv;
                        uy[i] = jy.0[i] * inv;
                        uz[i] = jz.0[i] * inv;
                    }
                }
                ($name(ux), $name(uy), $name(uz))
            }
        }
    };
}

portable_lane!(
    /// Portable 4-wide lane (scalar-exact rounding; the `SWLB_NO_SIMD` and
    /// no-AVX2 fallback).
    PortableLane,
    LANES,
    "portable"
);
portable_lane!(
    /// Portable 8-wide lane: the software twin of the AVX-512 lane. Same
    /// scalar-exact rounding as [`PortableLane`], but 8-wide chunking, so
    /// `ForceAvx512`-pinned runs reproduce the AVX-512 vector/scalar chunk
    /// split bit-exactly on hardware without AVX-512F.
    Portable8Lane,
    8,
    "portable8"
);

/// AVX2 + FMA 4 × f64 lane.
///
/// Only constructed behind a successful `is_x86_feature_detected!` check; the
/// kernel instantiation is wrapped in a `#[target_feature(enable = "avx2,fma")]`
/// function so every intrinsic inlines into a feature-enabled region.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Lane, Scalar};
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub struct Avx2Lane(__m256d);

    impl Lane for Avx2Lane {
        const NAME: &'static str = "avx2+fma";
        const WIDTH: usize = 4;

        #[inline(always)]
        unsafe fn load(p: *const Scalar) -> Self {
            Avx2Lane(unsafe { _mm256_loadu_pd(p) })
        }

        #[inline(always)]
        unsafe fn store(self, p: *mut Scalar) {
            unsafe { _mm256_storeu_pd(p, self.0) };
        }

        #[inline(always)]
        fn splat(v: Scalar) -> Self {
            Avx2Lane(unsafe { _mm256_set1_pd(v) })
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Avx2Lane(unsafe { _mm256_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            Avx2Lane(unsafe { _mm256_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Avx2Lane(unsafe { _mm256_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul_add(self, b: Self, c: Self) -> Self {
            Avx2Lane(unsafe { _mm256_fmadd_pd(self.0, b.0, c.0) })
        }

        #[inline(always)]
        fn neg(self) -> Self {
            // Exact sign flip: xor with the sign-bit mask.
            Avx2Lane(unsafe { _mm256_xor_pd(self.0, _mm256_set1_pd(-0.0)) })
        }

        #[inline(always)]
        fn velocities(jx: Self, jy: Self, jz: Self, rho: Self) -> (Self, Self, Self) {
            unsafe {
                let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
                let tiny = _mm256_set1_pd(1e-300);
                // vacuum ⇒ lane is all-ones in `vac`, cleared by andnot below.
                let vac = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(rho.0, abs_mask), tiny);
                let inv = _mm256_div_pd(_mm256_set1_pd(1.0), rho.0);
                let ux = _mm256_andnot_pd(vac, _mm256_mul_pd(jx.0, inv));
                let uy = _mm256_andnot_pd(vac, _mm256_mul_pd(jy.0, inv));
                let uz = _mm256_andnot_pd(vac, _mm256_mul_pd(jz.0, inv));
                (Avx2Lane(ux), Avx2Lane(uy), Avx2Lane(uz))
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::Avx2Lane;

/// AVX-512F 8 × f64 lane.
///
/// Only constructed behind a successful `is_x86_feature_detected!("avx512f")`
/// check; kernel instantiations are wrapped in `#[target_feature(enable =
/// "avx512f")]` functions so every intrinsic inlines into a feature-enabled
/// region. Sign/abs manipulation goes through the 512-bit integer domain
/// (`_mm512_xor_si512`/`_mm512_and_si512`), which is plain AVX-512F — the
/// floating-point bitwise ops (`_mm512_xor_pd` …) would require AVX-512DQ.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{Lane, Scalar};
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub struct Avx512Lane(__m512d);

    impl Lane for Avx512Lane {
        const NAME: &'static str = "avx512f";
        const WIDTH: usize = 8;

        #[inline(always)]
        unsafe fn load(p: *const Scalar) -> Self {
            Avx512Lane(unsafe { _mm512_loadu_pd(p) })
        }

        #[inline(always)]
        unsafe fn store(self, p: *mut Scalar) {
            unsafe { _mm512_storeu_pd(p, self.0) };
        }

        #[inline(always)]
        fn splat(v: Scalar) -> Self {
            Avx512Lane(unsafe { _mm512_set1_pd(v) })
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Avx512Lane(unsafe { _mm512_add_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            Avx512Lane(unsafe { _mm512_sub_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Avx512Lane(unsafe { _mm512_mul_pd(self.0, o.0) })
        }

        #[inline(always)]
        fn mul_add(self, b: Self, c: Self) -> Self {
            Avx512Lane(unsafe { _mm512_fmadd_pd(self.0, b.0, c.0) })
        }

        #[inline(always)]
        fn neg(self) -> Self {
            // Exact sign flip via integer xor with the sign-bit mask.
            Avx512Lane(unsafe {
                _mm512_castsi512_pd(_mm512_xor_si512(
                    _mm512_castpd_si512(self.0),
                    _mm512_set1_epi64(i64::MIN),
                ))
            })
        }

        #[inline(always)]
        fn velocities(jx: Self, jy: Self, jz: Self, rho: Self) -> (Self, Self, Self) {
            unsafe {
                // |ρ| via integer-domain abs mask (AVX-512F-only).
                let abs = _mm512_castsi512_pd(_mm512_and_si512(
                    _mm512_castpd_si512(rho.0),
                    _mm512_set1_epi64(0x7fff_ffff_ffff_ffff),
                ));
                // Vacuum ⇔ |ρ| < tiny (ordered, so NaN ρ is *not* vacuum and
                // propagates through the product, matching the scalar guard);
                // maskz with the complement zeroes exactly the vacuum elements.
                let vac: __mmask8 =
                    _mm512_cmp_pd_mask::<_CMP_LT_OQ>(abs, _mm512_set1_pd(1e-300));
                let ok = !vac;
                let inv = _mm512_div_pd(_mm512_set1_pd(1.0), rho.0);
                let ux = _mm512_maskz_mul_pd(ok, jx.0, inv);
                let uy = _mm512_maskz_mul_pd(ok, jy.0, inv);
                let uz = _mm512_maskz_mul_pd(ok, jz.0, inv);
                (Avx512Lane(ux), Avx512Lane(uy), Avx512Lane(uz))
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx512::Avx512Lane;

// ---------------------------------------------------------------------------
// The vectorized interior kernel.
// ---------------------------------------------------------------------------

/// The D3Q19 BGK collision applied to one lane group of pre-gathered
/// populations — the vector transliteration of the scalar
/// [`crate::kernels::d3q19_collide_scalar`], shared by the AB and both AA
/// lane kernels. Same expression tree as the scalar body, so the portable
/// instantiations are bit-exact.
#[inline(always)]
fn lane_collide<V: Lane>(f: &mut [V; 19], omega: Scalar) {
    // Moments: same left-associated reduction order as the scalar kernel.
    let rho = f[0]
        .add(f[1])
        .add(f[2])
        .add(f[3])
        .add(f[4])
        .add(f[5])
        .add(f[6])
        .add(f[7])
        .add(f[8])
        .add(f[9])
        .add(f[10])
        .add(f[11])
        .add(f[12])
        .add(f[13])
        .add(f[14])
        .add(f[15])
        .add(f[16])
        .add(f[17])
        .add(f[18]);
    let jx = f[1]
        .sub(f[2])
        .add(f[7])
        .sub(f[8])
        .add(f[9])
        .sub(f[10])
        .add(f[11])
        .sub(f[12])
        .add(f[13])
        .sub(f[14]);
    let jy = f[3]
        .sub(f[4])
        .add(f[7])
        .sub(f[8])
        .sub(f[9])
        .add(f[10])
        .add(f[15])
        .sub(f[16])
        .add(f[17])
        .sub(f[18]);
    let jz = f[5]
        .sub(f[6])
        .add(f[11])
        .sub(f[12])
        .sub(f[13])
        .add(f[14])
        .add(f[15])
        .sub(f[16])
        .sub(f[17])
        .add(f[18]);
    let (ux, uy, uz) = V::velocities(jx, jy, jz, rho);
    // usq15 = 1.5·(ux² + uy² + uz²), same reduction order as scalar.
    let usq15 = {
        let t = ux.mul(ux);
        let t = uy.mul_add(uy, t);
        let t = uz.mul_add(uz, t);
        V::splat(1.5).mul(t)
    };

    const W0: Scalar = 1.0 / 3.0;
    const WA: Scalar = 1.0 / 18.0;
    const WE: Scalar = 1.0 / 36.0;
    let one = V::splat(1.0);
    let three = V::splat(3.0);
    let four5 = V::splat(4.5);
    let neg_omega = V::splat(-omega);
    macro_rules! relax {
        ($q:literal, $w:expr, $cu:expr) => {{
            let cu = $cu;
            // feq = (w·ρ) · ((1 + 3cu + 4.5cu²) − usq15): unfused this is the
            // scalar tree exactly; under FMA two products contract.
            let t = cu.mul_add(three, one);
            let t = four5.mul(cu).mul_add(cu, t);
            let t = t.sub(usq15);
            let feq = V::splat($w).mul(rho).mul(t);
            // f ← f − ω(f − feq) = (f − feq)·(−ω) + f (bit-equal unfused).
            f[$q] = f[$q].sub(feq).mul_add(neg_omega, f[$q]);
        }};
    }
    relax!(0, W0, V::splat(0.0));
    relax!(1, WA, ux);
    relax!(2, WA, ux.neg());
    relax!(3, WA, uy);
    relax!(4, WA, uy.neg());
    relax!(5, WA, uz);
    relax!(6, WA, uz.neg());
    relax!(7, WE, ux.add(uy));
    relax!(8, WE, ux.neg().sub(uy));
    relax!(9, WE, ux.sub(uy));
    relax!(10, WE, ux.neg().add(uy));
    relax!(11, WE, ux.add(uz));
    relax!(12, WE, ux.neg().sub(uz));
    relax!(13, WE, ux.sub(uz));
    relax!(14, WE, ux.neg().add(uz));
    relax!(15, WE, uy.add(uz));
    relax!(16, WE, uy.neg().sub(uz));
    relax!(17, WE, uy.sub(uz));
    relax!(18, WE, uy.neg().add(uz));
}

/// One lane-wide fused AB update of [`Lane::WIDTH`] consecutive-z interior
/// cells starting at linear index `this`: pull-gather from `sraw`, collide,
/// store to `draw` — the vector transliteration of the scalar
/// `d3q19_cell_update` in [`crate::kernels`].
///
/// # Safety
/// Cells `this .. this + WIDTH` must all be interior (per the interior mask),
/// `sraw`/`draw` must cover `19 * cells` scalars, and no other thread may
/// write these cells concurrently.
#[inline(always)]
unsafe fn lane_update<V: Lane>(
    sraw: &[Scalar],
    draw: *mut Scalar,
    cells: usize,
    off: &[isize; 19],
    this: usize,
    omega: Scalar,
) {
    let sp = sraw.as_ptr();
    let mut f = [V::splat(0.0); 19];
    macro_rules! pull {
        ($($q:literal)*) => {$(
            f[$q] = unsafe {
                V::load(sp.add(($q * cells as isize + this as isize + off[$q]) as usize))
            };
        )*};
    }
    pull!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18);
    lane_collide::<V>(&mut f, omega);
    macro_rules! push {
        ($($q:literal)*) => {$(
            unsafe { f[$q].store(draw.add($q * cells + this)) };
        )*};
    }
    push!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18);
}

/// One lane-wide AA **odd** (pull + scatter) update of [`Lane::WIDTH`]
/// consecutive-z interior cells. The grid holds the *reversed* state
/// (`raw[x][q] = f*_opp(q)(x)`), so streaming-in population `q` lives in plane
/// `opp(q)` of the pull neighbor (`this + off[q]`); post-collision values
/// scatter to plane `q` of the push neighbor (`this − off[q]`), producing the
/// *streamed* state. All 19 loads complete before any store, and a slot's only
/// odd-step writer is the cell whose own gather reads it, so any traversal
/// order (and any slab/lane partition) is race-free.
///
/// # Safety
/// As [`lane_update`], with `raw` both read and written (single grid).
#[inline(always)]
unsafe fn aa_odd_lane_update<V: Lane>(
    raw: *mut Scalar,
    cells: usize,
    off: &[isize; 19],
    this: usize,
    omega: Scalar,
) {
    let mut f = [V::splat(0.0); 19];
    // opp(q) pairs: 0↔0, then (1,2)(3,4)…(17,18).
    macro_rules! pull {
        ($(($q:literal, $opp:literal))*) => {$(
            f[$q] = unsafe {
                V::load(raw.add(($opp * cells as isize + this as isize + off[$q]) as usize))
            };
        )*};
    }
    pull!((0, 0) (1, 2) (2, 1) (3, 4) (4, 3) (5, 6) (6, 5) (7, 8) (8, 7) (9, 10) (10, 9)
          (11, 12) (12, 11) (13, 14) (14, 13) (15, 16) (16, 15) (17, 18) (18, 17));
    lane_collide::<V>(&mut f, omega);
    macro_rules! scatter {
        ($($q:literal)*) => {$(
            unsafe {
                f[$q].store(raw.offset($q * cells as isize + this as isize - off[$q]));
            }
        )*};
    }
    scatter!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18);
}

/// One lane-wide AA **even** (local permute) update of [`Lane::WIDTH`]
/// consecutive-z interior cells. The grid holds the *streamed* state
/// (`raw[y][q] = f*_q(y − c_q)`), so every gather is the cell's own slot;
/// post-collision values store back locally with slots reversed, producing the
/// *reversed* state. Purely cell-local — no neighbor traffic at all.
///
/// # Safety
/// As [`aa_odd_lane_update`].
#[inline(always)]
unsafe fn aa_even_lane_update<V: Lane>(raw: *mut Scalar, cells: usize, this: usize, omega: Scalar) {
    let mut f = [V::splat(0.0); 19];
    macro_rules! pull {
        ($($q:literal)*) => {$(
            f[$q] = unsafe { V::load(raw.add($q * cells + this).cast_const()) };
        )*};
    }
    pull!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18);
    lane_collide::<V>(&mut f, omega);
    macro_rules! store_rev {
        ($(($q:literal, $opp:literal))*) => {$(
            unsafe { f[$q].store(raw.add($opp * cells + this)) };
        )*};
    }
    store_rev!((0, 0) (1, 2) (2, 1) (3, 4) (4, 3) (5, 6) (6, 5) (7, 8) (8, 7) (9, 10) (10, 9)
               (11, 12) (12, 11) (13, 14) (14, 13) (15, 16) (16, 15) (17, 18) (18, 17));
}

/// Shared loop nest: z-tiles × y × x pencils × interior runs, full lanes
/// through [`lane_update`], sub-lane remainders through the scalar per-cell
/// update — so every run cell is covered exactly once, matching the mask.
///
/// # Safety
/// See [`d3q19_interior_simd`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn interior_runs_impl<V: Lane>(
    flags: &FlagField,
    sraw: &[Scalar],
    draw: *mut Scalar,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
) {
    let dims = flags.dims();
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    if nx < 3 || ny < 3 || nz < 3 {
        return; // no interior at all; generic path covers everything
    }
    let cells = dims.cells();
    debug_assert_eq!(sraw.len(), 19 * cells);

    let mut off = [0isize; 19];
    for q in 0..19 {
        let c = D3Q19::C[q];
        off[q] = -((c[1] as isize * nx as isize + c[0] as isize) * nz as isize + c[2] as isize);
    }

    let y0 = ys.start.max(1);
    let y1 = ys.end.min(ny - 1);
    let x0 = xr.start.max(1);
    let x1 = xr.end.min(nx - 1);
    let z0 = 1;
    let z1 = nz - 1;
    let tile = if tile_z == 0 { z1 - z0 } else { tile_z };

    let mut zt = z0;
    while zt < z1 {
        let zt_end = (zt + tile).min(z1);
        for y in y0..y1 {
            for x in x0..x1 {
                let pencil = y * nx + x;
                let base = pencil * nz;
                for &(rz0, rz1) in runs.pencil(pencil) {
                    let a = (rz0 as usize).max(zt);
                    let b = (rz1 as usize).min(zt_end);
                    let mut z = a;
                    while z + V::WIDTH <= b {
                        // SAFETY: the run certifies cells base+z .. base+z+WIDTH
                        // interior; caller certifies buffers and exclusivity.
                        unsafe { lane_update::<V>(sraw, draw, cells, &off, base + z, omega) };
                        z += V::WIDTH;
                    }
                    while z < b {
                        // SAFETY: as above, single interior cell.
                        unsafe {
                            crate::kernels::d3q19_cell_update(
                                sraw,
                                draw,
                                cells,
                                &off,
                                base + z,
                                omega,
                            )
                        };
                        z += 1;
                    }
                }
            }
        }
        zt = zt_end;
    }
}

/// The AA-pattern twin of [`interior_runs_impl`]: same z-tiles × y × x pencils
/// × interior-runs loop nest (so the vector/scalar chunk split per cell is
/// identical to the AB kernel at equal lane width), dispatching the odd or even
/// AA lane update per [`AaParity`], with the matching scalar per-cell updates
/// covering sub-lane remainders.
///
/// # Safety
/// See [`aa_d3q19_interior_simd`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn aa_interior_runs_impl<V: Lane>(
    flags: &FlagField,
    raw: *mut Scalar,
    omega: Scalar,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
) {
    let dims = flags.dims();
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    if nx < 3 || ny < 3 || nz < 3 {
        return; // no interior at all; generic path covers everything
    }
    let cells = dims.cells();

    let mut off = [0isize; 19];
    for q in 0..19 {
        let c = D3Q19::C[q];
        off[q] = -((c[1] as isize * nx as isize + c[0] as isize) * nz as isize + c[2] as isize);
    }

    let y0 = ys.start.max(1);
    let y1 = ys.end.min(ny - 1);
    let x0 = xr.start.max(1);
    let x1 = xr.end.min(nx - 1);
    let z0 = 1;
    let z1 = nz - 1;
    let tile = if tile_z == 0 { z1 - z0 } else { tile_z };

    let mut zt = z0;
    while zt < z1 {
        let zt_end = (zt + tile).min(z1);
        for y in y0..y1 {
            for x in x0..x1 {
                let pencil = y * nx + x;
                let base = pencil * nz;
                for &(rz0, rz1) in runs.pencil(pencil) {
                    let a = (rz0 as usize).max(zt);
                    let b = (rz1 as usize).min(zt_end);
                    let mut z = a;
                    while z + V::WIDTH <= b {
                        // SAFETY: the run certifies cells base+z .. base+z+WIDTH
                        // interior (all 18 neighbors fluid and in bounds, so odd
                        // scatters stay in bounds); caller certifies the buffer
                        // and the AA slot-ownership race-freedom argument.
                        unsafe {
                            match parity {
                                AaParity::Reversed => {
                                    aa_odd_lane_update::<V>(raw, cells, &off, base + z, omega)
                                }
                                AaParity::Streamed => {
                                    aa_even_lane_update::<V>(raw, cells, base + z, omega)
                                }
                            }
                        };
                        z += V::WIDTH;
                    }
                    while z < b {
                        // SAFETY: as above, single interior cell.
                        unsafe {
                            match parity {
                                AaParity::Reversed => crate::kernels::aa_odd_cell_update(
                                    raw,
                                    cells,
                                    &off,
                                    base + z,
                                    omega,
                                ),
                                AaParity::Streamed => crate::kernels::aa_even_cell_update(
                                    raw,
                                    cells,
                                    base + z,
                                    omega,
                                ),
                            }
                        };
                        z += 1;
                    }
                }
            }
        }
        zt = zt_end;
    }
}

/// AVX2+FMA instantiation. The `target_feature` wrapper makes every intrinsic
/// inline into one feature-enabled region (no per-op function calls).
///
/// # Safety
/// CPU must support AVX2 and FMA (checked by the dispatcher), plus the
/// contract of [`d3q19_interior_simd`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn interior_runs_avx2(
    flags: &FlagField,
    sraw: &[Scalar],
    draw: *mut Scalar,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
) {
    unsafe { interior_runs_impl::<Avx2Lane>(flags, sraw, draw, omega, xr, ys, tile_z, runs) };
}

/// AVX-512F instantiation of the AB interior kernel.
///
/// # Safety
/// CPU must support AVX-512F (checked by the dispatcher), plus the contract of
/// [`d3q19_interior_simd`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn interior_runs_avx512(
    flags: &FlagField,
    sraw: &[Scalar],
    draw: *mut Scalar,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
) {
    unsafe { interior_runs_impl::<Avx512Lane>(flags, sraw, draw, omega, xr, ys, tile_z, runs) };
}

/// AVX2+FMA instantiation of the AA interior kernel.
///
/// # Safety
/// CPU must support AVX2 and FMA, plus the contract of
/// [`aa_d3q19_interior_simd`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn aa_interior_runs_avx2(
    flags: &FlagField,
    raw: *mut Scalar,
    omega: Scalar,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
) {
    unsafe { aa_interior_runs_impl::<Avx2Lane>(flags, raw, omega, parity, xr, ys, tile_z, runs) };
}

/// AVX-512F instantiation of the AA interior kernel.
///
/// # Safety
/// CPU must support AVX-512F, plus the contract of [`aa_d3q19_interior_simd`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn aa_interior_runs_avx512(
    flags: &FlagField,
    raw: *mut Scalar,
    omega: Scalar,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
) {
    unsafe { aa_interior_runs_impl::<Avx512Lane>(flags, raw, omega, parity, xr, ys, tile_z, runs) };
}

/// The vectorized fused D3Q19 interior kernel over run-length-encoded interior
/// runs — the raw entry the unified dispatch (serial, pooled and distributed)
/// shares. `path` selects the lane (resolved by [`select_fast_path`]);
/// [`FastPath::MaskScalar`] is the caller's job, not this function's.
///
/// # Safety
/// `draw` must point at `19 * cells` writable scalars, `runs` must describe
/// interior cells of `flags` (every run cell has all 18 pull sources in
/// bounds), no other thread may write any cell in `xr × ys` concurrently, and
/// hardware lanes require their CPU feature (guaranteed by
/// [`select_fast_path`]).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn d3q19_interior_simd(
    flags: &FlagField,
    sraw: &[Scalar],
    draw: *mut Scalar,
    omega: Scalar,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
    path: FastPath,
) {
    #[cfg(target_arch = "x86_64")]
    {
        match path {
            FastPath::Avx512 => {
                debug_assert!(avx512_available(), "AVX-512 lane dispatched without support");
                // SAFETY: caller contract + feature check above.
                return unsafe {
                    interior_runs_avx512(flags, sraw, draw, omega, xr, ys, tile_z, runs)
                };
            }
            FastPath::Avx2 => {
                debug_assert!(simd_available(), "AVX2 lane dispatched without support");
                // SAFETY: caller contract + feature check above.
                return unsafe {
                    interior_runs_avx2(flags, sraw, draw, omega, xr, ys, tile_z, runs)
                };
            }
            _ => {}
        }
    }
    // SAFETY: caller contract.
    unsafe {
        match path {
            FastPath::Portable8 => {
                interior_runs_impl::<Portable8Lane>(flags, sraw, draw, omega, xr, ys, tile_z, runs)
            }
            _ => {
                interior_runs_impl::<PortableLane>(flags, sraw, draw, omega, xr, ys, tile_z, runs)
            }
        }
    }
}

/// The AA-pattern counterpart of [`d3q19_interior_simd`]: one in-place interior
/// pass of the step flavor selected by `parity` over the single grid `raw`.
///
/// # Safety
/// `raw` must point at `19 * cells` writable scalars; `runs` must describe
/// interior cells of `flags`; no other code may read or write the grid during
/// the pass except through the AA step itself (whose slot-ownership discipline
/// makes concurrent slabs race-free); hardware lanes require their CPU feature.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn aa_d3q19_interior_simd(
    flags: &FlagField,
    raw: *mut Scalar,
    omega: Scalar,
    parity: AaParity,
    xr: Range<usize>,
    ys: Range<usize>,
    tile_z: usize,
    runs: &InteriorRuns,
    path: FastPath,
) {
    #[cfg(target_arch = "x86_64")]
    {
        match path {
            FastPath::Avx512 => {
                debug_assert!(avx512_available(), "AVX-512 lane dispatched without support");
                // SAFETY: caller contract + feature check above.
                return unsafe {
                    aa_interior_runs_avx512(flags, raw, omega, parity, xr, ys, tile_z, runs)
                };
            }
            FastPath::Avx2 => {
                debug_assert!(simd_available(), "AVX2 lane dispatched without support");
                // SAFETY: caller contract + feature check above.
                return unsafe {
                    aa_interior_runs_avx2(flags, raw, omega, parity, xr, ys, tile_z, runs)
                };
            }
            _ => {}
        }
    }
    // SAFETY: caller contract.
    unsafe {
        match path {
            FastPath::Portable8 => aa_interior_runs_impl::<Portable8Lane>(
                flags, raw, omega, parity, xr, ys, tile_z, runs,
            ),
            _ => aa_interior_runs_impl::<PortableLane>(
                flags, raw, omega, parity, xr, ys, tile_z, runs,
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Host metadata (bench JSON + CLI exit summary).
// ---------------------------------------------------------------------------

/// Detected CPU SIMD features as a stable `+`-joined list (e.g.
/// `"sse2+sse4.2+avx+avx2+fma"`), `"none"` when nothing relevant is present.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats: Vec<&str> = Vec::new();
        macro_rules! probe {
            ($name:tt) => {
                if std::arch::is_x86_feature_detected!($name) {
                    feats.push($name);
                }
            };
        }
        probe!("sse2");
        probe!("sse4.2");
        probe!("avx");
        probe!("avx2");
        probe!("fma");
        probe!("avx512f");
        if feats.is_empty() {
            "none".into()
        } else {
            feats.join("+")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none".into()
    }
}

/// Logical core count visible to this process.
pub fn logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo` where available, else the logical count. Oversubscription
/// (bench threads > this) is exactly the anomaly host metadata exists to
/// explain.
pub fn physical_cores() -> usize {
    if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
        let mut pairs = std::collections::BTreeSet::new();
        let (mut phys, mut core) = (None::<u64>, None::<u64>);
        for line in text.lines().chain(std::iter::once("")) {
            if line.trim().is_empty() {
                if let (Some(p), Some(c)) = (phys, core) {
                    pairs.insert((p, c));
                }
                phys = None;
                core = None;
                continue;
            }
            let mut kv = line.splitn(2, ':');
            let key = kv.next().unwrap_or("").trim();
            let val = kv.next().unwrap_or("").trim();
            match key {
                "physical id" => phys = val.parse().ok(),
                "core id" => core = val.parse().ok(),
                _ => {}
            }
        }
        if !pairs.is_empty() {
            return pairs.len();
        }
    }
    logical_cores()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_class_gauge_roundtrips() {
        for c in [KernelClass::Generic, KernelClass::Scalar, KernelClass::Simd] {
            assert_eq!(KernelClass::from_gauge(c.as_gauge()), Some(c));
        }
        assert_eq!(KernelClass::from_gauge(7.0), None);
        assert_eq!(KernelClass::Simd.name(), "simd");
    }

    #[test]
    fn portable_lane_roundtrips_and_is_unfused() {
        let src = [1.0, -2.5, 3.25, 1e-3];
        let mut dst = [0.0; LANES];
        unsafe {
            let v = PortableLane::load(src.as_ptr());
            v.store(dst.as_mut_ptr());
        }
        assert_eq!(src, dst);
        // mul_add must round twice (no FMA): pick operands where it matters.
        let a = 1.0 + 2f64.powi(-30);
        let v = PortableLane::splat(a);
        let r = v.mul_add(v, PortableLane::splat(-1.0));
        let expect = a * a - 1.0; // two roundings
        unsafe { r.store(dst.as_mut_ptr()) };
        assert_eq!(dst[0], expect);
        assert_ne!(dst[0], a.mul_add(a, -1.0), "portable lane must not fuse");
    }

    #[test]
    fn portable_velocities_apply_vacuum_guard() {
        let j = PortableLane::splat(0.5);
        let rho = unsafe { PortableLane::load([2.0, 0.0, 1e-301, -4.0].as_ptr()) };
        let (ux, _, _) = PortableLane::velocities(j, j, j, rho);
        let mut out = [0.0; LANES];
        unsafe { ux.store(out.as_mut_ptr()) };
        assert_eq!(out[0], 0.5 * (1.0 / 2.0));
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0);
        assert_eq!(out[3], 0.5 * (1.0 / -4.0));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_lane_matches_portable_elementwise() {
        if !simd_available() {
            return;
        }
        let a = [1.5, -0.25, 3.0, 1e-10];
        let b = [2.0, 4.0, -1.0, 7.5];
        let mut out_a = [0.0; LANES];
        let mut out_p = [0.0; LANES];
        unsafe {
            let (va, vb) = (Avx2Lane::load(a.as_ptr()), Avx2Lane::load(b.as_ptr()));
            va.add(vb).mul(va.sub(vb)).neg().store(out_a.as_mut_ptr());
            let (pa, pb) = (
                PortableLane::load(a.as_ptr()),
                PortableLane::load(b.as_ptr()),
            );
            pa.add(pb).mul(pa.sub(pb)).neg().store(out_p.as_mut_ptr());
        }
        // add/sub/mul/neg are single-rounding ops on both lanes: bit-equal.
        assert_eq!(out_a, out_p);
        let rho = unsafe { Avx2Lane::load([2.0, 0.0, 1e-301, -4.0].as_ptr()) };
        let j = Avx2Lane::splat(0.5);
        let (ux, _, _) = Avx2Lane::velocities(j, j, j, rho);
        unsafe { ux.store(out_a.as_mut_ptr()) };
        assert_eq!(out_a, [0.25, 0.0, 0.0, -0.125]);
    }

    #[test]
    fn host_metadata_is_sane() {
        assert!(logical_cores() >= 1);
        assert!(physical_cores() >= 1);
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn policy_roundtrip_and_selection() {
        let prev = lane_policy();
        set_lane_policy(LanePolicy::ForceScalar);
        assert_eq!(
            select_fast_path(),
            (FastPath::MaskScalar, KernelClass::Scalar)
        );
        set_lane_policy(LanePolicy::ForcePortable);
        assert_eq!(
            select_fast_path(),
            (FastPath::Portable, KernelClass::Scalar)
        );
        assert_eq!(dispatch_tolerance(), 0.0);

        // The force-hardware policies degrade to their portable twin (same
        // chunk width for ForceAvx512) when the feature is absent or masked.
        set_lane_policy(LanePolicy::ForceAvx2);
        if simd_available() && !no_simd_env() {
            assert_eq!(select_fast_path(), (FastPath::Avx2, KernelClass::Simd));
        } else {
            assert_eq!(select_fast_path(), (FastPath::Portable, KernelClass::Scalar));
        }
        set_lane_policy(LanePolicy::ForceAvx512);
        if avx512_available() && !no_simd_env() {
            assert_eq!(select_fast_path(), (FastPath::Avx512, KernelClass::Simd));
        } else {
            assert_eq!(
                select_fast_path(),
                (FastPath::Portable8, KernelClass::Scalar)
            );
        }

        set_lane_policy(LanePolicy::Auto);
        let (path, class) = select_fast_path();
        if avx512_available() && !no_simd_env() {
            assert_eq!((path, class), (FastPath::Avx512, KernelClass::Simd));
            assert_eq!(dispatch_tolerance(), 1e-12);
        } else if simd_available() && !no_simd_env() {
            assert_eq!((path, class), (FastPath::Avx2, KernelClass::Simd));
            assert_eq!(dispatch_tolerance(), 1e-12);
        } else {
            assert_eq!((path, class), (FastPath::Portable, KernelClass::Scalar));
        }
        set_lane_policy(prev);
    }

    #[test]
    fn portable8_lane_matches_portable_semantics() {
        // Same unfused arithmetic as the 4-wide portable lane, 8 elements.
        let src = [1.0, -2.5, 3.25, 1e-3, -7.0, 0.5, 42.0, -0.125];
        let mut dst = [0.0; 8];
        unsafe {
            let v = Portable8Lane::load(src.as_ptr());
            v.store(dst.as_mut_ptr());
        }
        assert_eq!(src, dst);
        assert_eq!(Portable8Lane::WIDTH, 8);
        let a = 1.0 + 2f64.powi(-30);
        let v = Portable8Lane::splat(a);
        let r = v.mul_add(v, Portable8Lane::splat(-1.0));
        unsafe { r.store(dst.as_mut_ptr()) };
        assert_eq!(dst[0], a * a - 1.0, "portable8 lane must not fuse");
        // Vacuum guard across all 8 elements.
        let rho = unsafe {
            Portable8Lane::load([2.0, 0.0, 1e-301, -4.0, 1.0, -1e-310, 8.0, 1e-299].as_ptr())
        };
        let j = Portable8Lane::splat(0.5);
        let (ux, _, _) = Portable8Lane::velocities(j, j, j, rho);
        unsafe { ux.store(dst.as_mut_ptr()) };
        assert_eq!(
            dst,
            [0.25, 0.0, 0.0, -0.125, 0.5, 0.0, 0.0625, 0.5 * (1.0 / 1e-299)]
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_lane_matches_portable_elementwise() {
        if !avx512_available() {
            return;
        }
        let a = [1.5, -0.25, 3.0, 1e-10, -6.5, 0.75, 2.25, -9.0];
        let b = [2.0, 4.0, -1.0, 7.5, 0.5, -3.0, 1.25, 6.0];
        let mut out_v = [0.0; 8];
        let mut out_p = [0.0; 8];
        unsafe {
            let (va, vb) = (Avx512Lane::load(a.as_ptr()), Avx512Lane::load(b.as_ptr()));
            va.add(vb).mul(va.sub(vb)).neg().store(out_v.as_mut_ptr());
            let (pa, pb) = (
                Portable8Lane::load(a.as_ptr()),
                Portable8Lane::load(b.as_ptr()),
            );
            pa.add(pb).mul(pa.sub(pb)).neg().store(out_p.as_mut_ptr());
        }
        // add/sub/mul/neg are single-rounding ops on both lanes: bit-equal.
        assert_eq!(out_v, out_p);
        // Vacuum guard, including NaN propagation (NaN ρ is not vacuum).
        let rho = unsafe {
            Avx512Lane::load([2.0, 0.0, 1e-301, -4.0, f64::NAN, 1.0, -8.0, 1e-299].as_ptr())
        };
        let j = Avx512Lane::splat(0.5);
        let (ux, _, _) = Avx512Lane::velocities(j, j, j, rho);
        unsafe { ux.store(out_v.as_mut_ptr()) };
        assert_eq!(out_v[0], 0.25);
        assert_eq!(out_v[1], 0.0);
        assert_eq!(out_v[2], 0.0);
        assert_eq!(out_v[3], -0.125);
        assert!(out_v[4].is_nan(), "NaN density must propagate");
        assert_eq!(out_v[5], 0.5);
        assert_eq!(out_v[6], -0.0625);
        assert_eq!(out_v[7], 0.5 * (1.0 / 1e-299));
    }
}
