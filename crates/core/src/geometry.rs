//! Grid geometry: dimensions, linear indexing and neighbor arithmetic.
//!
//! SunwayLB stores the domain as a dense Cartesian grid. Following the paper
//! (§IV-C.2: "the data is consecutive along the z axis"), the **z coordinate is the
//! fastest-varying index**, then x, then y:
//!
//! ```text
//! linear(x, y, z) = (y · nx + x) · nz + z
//! ```
//!
//! so a fixed `(x, y)` pencil of `nz` cells is contiguous in memory — exactly the
//! unit the Sunway port DMA-transfers into a CPE's LDM. 2-D grids are the `nz = 1`
//! special case, which keeps every kernel dimension-agnostic.

use crate::error::{CoreError, Result};

/// A 3-component integer cell coordinate.
pub type Idx3 = [usize; 3];

/// Grid dimensions with the paper's (y, x, z) memory ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z (1 for 2-D grids).
    pub nz: usize,
}

impl GridDims {
    /// Create a 3-D grid. All dimensions must be nonzero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be nonzero");
        Self { nx, ny, nz }
    }

    /// Create a 2-D grid (`nz = 1`).
    pub fn new2d(nx: usize, ny: usize) -> Self {
        Self::new(nx, ny, 1)
    }

    /// Fallible constructor for configuration code paths.
    pub fn try_new(nx: usize, ny: usize, nz: usize) -> Result<Self> {
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(CoreError::InvalidDims(format!(
                "dimensions must be nonzero, got {nx}x{ny}x{nz}"
            )));
        }
        Ok(Self { nx, ny, nz })
    }

    /// Total number of cells.
    #[inline]
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether this is a 2-D grid.
    #[inline]
    pub fn is_2d(&self) -> bool {
        self.nz == 1
    }

    /// Linear index of cell `(x, y, z)`; z fastest, then x, then y.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (y * self.nx + x) * self.nz + z
    }

    /// Inverse of [`GridDims::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> Idx3 {
        debug_assert!(idx < self.cells());
        let z = idx % self.nz;
        let rest = idx / self.nz;
        let x = rest % self.nx;
        let y = rest / self.nx;
        [x, y, z]
    }

    /// Neighbor coordinate with **periodic wrap** in all directions.
    ///
    /// `c` is a lattice velocity (components in {-1, 0, 1}).
    #[inline(always)]
    pub fn neighbor_periodic(&self, x: usize, y: usize, z: usize, c: [i32; 3]) -> Idx3 {
        [
            wrap(x, c[0], self.nx),
            wrap(y, c[1], self.ny),
            wrap(z, c[2], self.nz),
        ]
    }

    /// Neighbor coordinate without wrapping; `None` when it would leave the grid.
    #[inline(always)]
    pub fn neighbor_checked(&self, x: usize, y: usize, z: usize, c: [i32; 3]) -> Option<Idx3> {
        let nx = x as i64 + c[0] as i64;
        let ny = y as i64 + c[1] as i64;
        let nz = z as i64 + c[2] as i64;
        if nx < 0
            || ny < 0
            || nz < 0
            || nx >= self.nx as i64
            || ny >= self.ny as i64
            || nz >= self.nz as i64
        {
            None
        } else {
            Some([nx as usize, ny as usize, nz as usize])
        }
    }

    /// Whether `(x, y, z)` lies on the outer surface of the grid.
    #[inline]
    pub fn on_boundary(&self, x: usize, y: usize, z: usize) -> bool {
        x == 0
            || y == 0
            || x + 1 == self.nx
            || y + 1 == self.ny
            || (self.nz > 1 && (z == 0 || z + 1 == self.nz))
    }

    /// Iterate over every cell coordinate in memory order (y → x → z).
    pub fn iter(&self) -> impl Iterator<Item = Idx3> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..ny).flat_map(move |y| (0..nx).flat_map(move |x| (0..nz).map(move |z| [x, y, z])))
    }

    /// Validate that a per-cell field has exactly one entry per cell.
    pub fn check_len<T>(&self, field: &[T]) -> Result<()> {
        if field.len() != self.cells() {
            Err(CoreError::LengthMismatch {
                got: field.len(),
                expected: self.cells(),
            })
        } else {
            Ok(())
        }
    }
}

/// Wrap `x + dx` into `[0, n)`.
#[inline(always)]
fn wrap(x: usize, dx: i32, n: usize) -> usize {
    // n is a grid dimension (≥ 1) and |dx| ≤ 1, so one conditional add suffices
    // and avoids a div in the hot path.
    let v = x as i64 + dx as i64;
    if v < 0 {
        (v + n as i64) as usize
    } else if v >= n as i64 {
        (v - n as i64) as usize
    } else {
        v as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_is_fastest_axis() {
        let d = GridDims::new(4, 3, 5);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(0, 0, 1), 1);
        assert_eq!(d.idx(1, 0, 0), 5);
        assert_eq!(d.idx(0, 1, 0), 20);
        assert_eq!(d.idx(3, 2, 4), d.cells() - 1);
    }

    #[test]
    fn coords_inverts_idx() {
        let d = GridDims::new(7, 5, 3);
        for i in 0..d.cells() {
            let [x, y, z] = d.coords(i);
            assert_eq!(d.idx(x, y, z), i);
        }
    }

    #[test]
    fn iter_visits_all_cells_in_memory_order() {
        let d = GridDims::new(3, 2, 4);
        let visited: Vec<usize> = d.iter().map(|[x, y, z]| d.idx(x, y, z)).collect();
        let expect: Vec<usize> = (0..d.cells()).collect();
        assert_eq!(visited, expect);
    }

    #[test]
    fn periodic_wrap_both_directions() {
        let d = GridDims::new(4, 4, 4);
        assert_eq!(d.neighbor_periodic(0, 0, 0, [-1, -1, -1]), [3, 3, 3]);
        assert_eq!(d.neighbor_periodic(3, 3, 3, [1, 1, 1]), [0, 0, 0]);
        assert_eq!(d.neighbor_periodic(2, 1, 0, [0, 1, 0]), [2, 2, 0]);
    }

    #[test]
    fn checked_neighbor_rejects_out_of_grid() {
        let d = GridDims::new(2, 2, 2);
        assert_eq!(d.neighbor_checked(0, 0, 0, [-1, 0, 0]), None);
        assert_eq!(d.neighbor_checked(1, 1, 1, [1, 0, 0]), None);
        assert_eq!(d.neighbor_checked(0, 0, 0, [1, 1, 1]), Some([1, 1, 1]));
    }

    #[test]
    fn boundary_detection_2d_ignores_z() {
        let d = GridDims::new2d(4, 4);
        // In 2-D every cell has z = 0 but that must not mark it as boundary.
        assert!(!d.on_boundary(2, 2, 0));
        assert!(d.on_boundary(0, 2, 0));
        assert!(d.on_boundary(2, 3, 0));
    }

    #[test]
    fn boundary_detection_3d() {
        let d = GridDims::new(4, 4, 4);
        assert!(!d.on_boundary(2, 2, 2));
        assert!(d.on_boundary(2, 2, 0));
        assert!(d.on_boundary(2, 2, 3));
    }

    #[test]
    fn try_new_rejects_zero() {
        assert!(GridDims::try_new(0, 1, 1).is_err());
        assert!(GridDims::try_new(1, 0, 1).is_err());
        assert!(GridDims::try_new(1, 1, 0).is_err());
        assert!(GridDims::try_new(1, 1, 1).is_ok());
    }

    #[test]
    fn check_len_reports_mismatch() {
        let d = GridDims::new(2, 2, 2);
        assert!(d.check_len(&[0u8; 8]).is_ok());
        let err = d.check_len(&[0u8; 7]).unwrap_err();
        assert_eq!(
            err,
            crate::error::CoreError::LengthMismatch { got: 7, expected: 8 }
        );
    }
}
