//! Macroscopic (hydrodynamic) field extraction.
//!
//! LBM stores mesoscopic populations; the physics of interest — density, velocity,
//! pressure — are their low-order moments. [`MacroFields`] is the post-processing
//! snapshot handed to the I/O layer (PPM slices, VTK volumes) and to observables
//! (forces, probes).

use crate::equilibrium::{moments, velocity};
use crate::flags::FlagField;
use crate::geometry::GridDims;
use crate::kernels::MAX_Q;
use crate::lattice::Lattice;
use crate::layout::PopField;
use crate::{Scalar, CS2};

/// Dense snapshot of density and velocity, one entry per cell.
#[derive(Debug, Clone)]
pub struct MacroFields {
    dims: GridDims,
    /// Density per cell (memory order). Solid cells hold the reference density.
    pub rho: Vec<Scalar>,
    /// Velocity per cell (memory order). Solid cells hold zero.
    pub u: Vec<[Scalar; 3]>,
}

impl MacroFields {
    /// Extract moments from a population field. Solid cells get `(1, 0)`.
    pub fn compute<L: Lattice, F: PopField<L>>(flags: &FlagField, field: &F) -> Self {
        let dims = flags.dims();
        let n = dims.cells();
        let mut rho = vec![1.0; n];
        let mut u = vec![[0.0; 3]; n];
        let mut f = [0.0; MAX_Q];
        for cell in 0..n {
            if !flags.kind(cell).is_solid() {
                field.load_cell(cell, &mut f[..L::Q]);
                let (r, j) = moments::<L>(&f[..L::Q]);
                rho[cell] = r;
                u[cell] = velocity(r, j);
            }
        }
        Self { dims, rho, u }
    }

    /// Grid dimensions of the snapshot.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Velocity magnitude per cell.
    pub fn velocity_magnitude(&self) -> Vec<Scalar> {
        self.u
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .collect()
    }

    /// Lattice pressure `p = c_s² ρ` per cell.
    pub fn pressure(&self) -> Vec<Scalar> {
        self.rho.iter().map(|&r| CS2 * r).collect()
    }

    /// Total mass (sum of densities over fluid cells).
    pub fn total_mass(&self, flags: &FlagField) -> Scalar {
        self.rho
            .iter()
            .enumerate()
            .filter(|(c, _)| flags.kind(*c).is_fluid())
            .map(|(_, r)| *r)
            .sum()
    }

    /// Total momentum over fluid cells.
    pub fn total_momentum(&self, flags: &FlagField) -> [Scalar; 3] {
        let mut m = [0.0; 3];
        for cell in 0..self.dims.cells() {
            if flags.kind(cell).is_fluid() {
                for a in 0..3 {
                    m[a] += self.rho[cell] * self.u[cell][a];
                }
            }
        }
        m
    }

    /// Maximum velocity magnitude (the Mach-number / stability monitor).
    pub fn max_velocity(&self) -> Scalar {
        self.u
            .iter()
            .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
            .fold(0.0, Scalar::max)
            .sqrt()
    }

    /// Kinetic energy `½ Σ ρ |u|²` over fluid cells.
    pub fn kinetic_energy(&self, flags: &FlagField) -> Scalar {
        let mut e = 0.0;
        for cell in 0..self.dims.cells() {
            if flags.kind(cell).is_fluid() {
                let v = self.u[cell];
                e += 0.5 * self.rho[cell] * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
            }
        }
        e
    }

    /// True if any field value is non-finite (divergence detector).
    pub fn has_non_finite(&self) -> bool {
        self.rho.iter().any(|r| !r.is_finite())
            || self.u.iter().any(|v| v.iter().any(|c| !c.is_finite()))
    }

    /// Extract an x-y slice (fixed `z`) of the velocity magnitude, row-major with
    /// `y` as rows — the shape image writers expect.
    pub fn slice_xy_speed(&self, z: usize) -> Vec<Scalar> {
        let d = self.dims;
        assert!(z < d.nz, "slice z={z} out of range (nz={})", d.nz);
        let mut out = Vec::with_capacity(d.nx * d.ny);
        for y in 0..d.ny {
            for x in 0..d.nx {
                let v = self.u[d.idx(x, y, z)];
                out.push((v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::initialize_equilibrium;
    use crate::lattice::D3Q19;
    use crate::layout::SoaField;

    #[test]
    fn uniform_state_reports_uniform_moments() {
        let dims = GridDims::new(4, 4, 4);
        let flags = FlagField::new(dims);
        let mut field = SoaField::<D3Q19>::new(dims);
        initialize_equilibrium::<D3Q19, _>(&flags, &mut field, 1.25, [0.02, 0.01, -0.01]);
        let m = MacroFields::compute::<D3Q19, _>(&flags, &field);
        for c in 0..dims.cells() {
            assert!((m.rho[c] - 1.25).abs() < 1e-12);
            assert!((m.u[c][0] - 0.02).abs() < 1e-12);
        }
        assert!((m.total_mass(&flags) - 1.25 * 64.0).abs() < 1e-9);
        assert!(!m.has_non_finite());
        assert!((m.max_velocity() - (0.02f64.powi(2) + 0.01 * 0.01 + 0.01 * 0.01).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pressure_is_cs2_rho() {
        let dims = GridDims::new2d(2, 2);
        let flags = FlagField::new(dims);
        let mut field = SoaField::<crate::lattice::D2Q9>::new(dims);
        initialize_equilibrium::<crate::lattice::D2Q9, _>(&flags, &mut field, 3.0, [0.0; 3]);
        let m = MacroFields::compute::<crate::lattice::D2Q9, _>(&flags, &field);
        for p in m.pressure() {
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solid_cells_are_masked_out() {
        let dims = GridDims::new2d(3, 3);
        let mut flags = FlagField::new(dims);
        flags.set(1, 1, 0, crate::boundary::NodeKind::Wall);
        let mut field = SoaField::<crate::lattice::D2Q9>::new(dims);
        initialize_equilibrium::<crate::lattice::D2Q9, _>(&flags, &mut field, 2.0, [0.1, 0.0, 0.0]);
        let m = MacroFields::compute::<crate::lattice::D2Q9, _>(&flags, &field);
        let solid = dims.idx(1, 1, 0);
        assert_eq!(m.rho[solid], 1.0);
        assert_eq!(m.u[solid], [0.0; 3]);
        // Mass counts only the 8 fluid cells.
        assert!((m.total_mass(&flags) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn kinetic_energy_and_momentum_match_hand_computation() {
        let dims = GridDims::new2d(2, 1);
        let flags = FlagField::new(dims);
        let mut field = SoaField::<crate::lattice::D2Q9>::new(dims);
        initialize_equilibrium::<crate::lattice::D2Q9, _>(&flags, &mut field, 1.0, [0.1, 0.0, 0.0]);
        let m = MacroFields::compute::<crate::lattice::D2Q9, _>(&flags, &field);
        assert!((m.kinetic_energy(&flags) - 2.0 * 0.5 * 0.01).abs() < 1e-12);
        let mom = m.total_momentum(&flags);
        assert!((mom[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn slice_extraction_has_row_major_shape() {
        let dims = GridDims::new(3, 2, 2);
        let flags = FlagField::new(dims);
        let mut field = SoaField::<D3Q19>::new(dims);
        initialize_equilibrium::<D3Q19, _>(&flags, &mut field, 1.0, [0.3, 0.0, 0.0]);
        let m = MacroFields::compute::<D3Q19, _>(&flags, &field);
        let s = m.slice_xy_speed(1);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|&v| (v - 0.3).abs() < 1e-12));
    }
}
