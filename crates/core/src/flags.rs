//! Per-node boundary flags and painting helpers.
//!
//! The [`FlagField`] is the output of the pre-processing stage: one [`NodeKind`]
//! per lattice node. Painting helpers cover the cases the paper runs (box walls,
//! moving lids, inflow/outflow planes, voxelized obstacle masks from the mesh
//! generator).

use crate::boundary::NodeKind;
use crate::error::Result;
use crate::geometry::GridDims;
use crate::Scalar;

/// Dense per-node boundary classification.
#[derive(Debug, Clone)]
pub struct FlagField {
    dims: GridDims,
    kinds: Vec<NodeKind>,
}

impl FlagField {
    /// All-fluid field (periodic domain).
    pub fn new(dims: GridDims) -> Self {
        Self {
            dims,
            kinds: vec![NodeKind::Fluid; dims.cells()],
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Node kind at a linear cell index.
    #[inline(always)]
    pub fn kind(&self, cell: usize) -> NodeKind {
        self.kinds[cell]
    }

    /// Node kind at `(x, y, z)`.
    #[inline(always)]
    pub fn kind_at(&self, x: usize, y: usize, z: usize) -> NodeKind {
        self.kinds[self.dims.idx(x, y, z)]
    }

    /// Set the node kind at `(x, y, z)`.
    pub fn set(&mut self, x: usize, y: usize, z: usize, kind: NodeKind) {
        let i = self.dims.idx(x, y, z);
        self.kinds[i] = kind;
    }

    /// Raw kinds slice (one entry per cell, memory order).
    pub fn as_slice(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// Mark every outer-surface node as a solid wall.
    ///
    /// For 2-D grids (`nz == 1`) only the x/y borders are painted, leaving the
    /// z direction conceptually periodic.
    pub fn set_box_walls(&mut self) {
        let d = self.dims;
        for [x, y, z] in d.iter() {
            if d.on_boundary(x, y, z) {
                self.kinds[d.idx(x, y, z)] = NodeKind::Wall;
            }
        }
    }

    /// Paint the top row/plane (`y = ny − 1`) as a moving wall with velocity `u` —
    /// the lid of the classic lid-driven cavity.
    pub fn paint_lid(&mut self, u: [Scalar; 3]) {
        let d = self.dims;
        let y = d.ny - 1;
        for x in 0..d.nx {
            for z in 0..d.nz {
                self.kinds[d.idx(x, y, z)] = NodeKind::MovingWall { u };
            }
        }
    }

    /// Paint the `x = 0` plane as a velocity inlet and `x = nx − 1` as an outlet —
    /// the standard external-flow channel setup (cylinder, Suboff, urban wind).
    pub fn paint_inflow_outflow_x(&mut self, rho: Scalar, u: [Scalar; 3]) {
        let d = self.dims;
        for y in 0..d.ny {
            for z in 0..d.nz {
                self.kinds[d.idx(0, y, z)] = NodeKind::Inlet { rho, u };
                self.kinds[d.idx(d.nx - 1, y, z)] = NodeKind::Outlet { normal: [1, 0, 0] };
            }
        }
    }

    /// Paint the `x = 0` plane as a sharp NEBB velocity inlet and `x = nx − 1`
    /// as a sharp NEBB pressure outlet — the high-accuracy variant of
    /// [`FlagField::paint_inflow_outflow_x`] (see [`crate::nebb`]).
    pub fn paint_nebb_inflow_outflow_x(&mut self, u: [Scalar; 3], rho_out: Scalar) {
        let d = self.dims;
        for y in 0..d.ny {
            for z in 0..d.nz {
                self.kinds[d.idx(0, y, z)] = NodeKind::VelocityNebb {
                    u,
                    normal: [-1, 0, 0],
                };
                self.kinds[d.idx(d.nx - 1, y, z)] = NodeKind::PressureNebb {
                    rho: rho_out,
                    normal: [1, 0, 0],
                };
            }
        }
    }

    /// Paint `y = 0` and `y = ny − 1` planes as solid walls (channel side walls).
    pub fn paint_channel_walls_y(&mut self) {
        let d = self.dims;
        for x in 0..d.nx {
            for z in 0..d.nz {
                self.kinds[d.idx(x, 0, z)] = NodeKind::Wall;
                self.kinds[d.idx(x, d.ny - 1, z)] = NodeKind::Wall;
            }
        }
    }

    /// Paint `z = 0` as a solid ground plane (urban wind, terrain cases).
    pub fn paint_ground_z(&mut self) {
        let d = self.dims;
        for x in 0..d.nx {
            for y in 0..d.ny {
                self.kinds[d.idx(x, y, 0)] = NodeKind::Wall;
            }
        }
    }

    /// Apply an obstacle mask (`true` = solid), e.g. from the voxelizer.
    ///
    /// Existing non-fluid paint is preserved where the mask is `false`.
    pub fn apply_mask(&mut self, mask: &[bool]) -> Result<()> {
        self.dims.check_len(mask)?;
        for (k, &solid) in self.kinds.iter_mut().zip(mask.iter()) {
            if solid {
                *k = NodeKind::Wall;
            }
        }
        Ok(())
    }

    /// Number of nodes of each coarse class `(fluid, solid, inlet, outlet)`.
    pub fn census(&self) -> FlagCensus {
        let mut c = FlagCensus::default();
        for k in &self.kinds {
            match k {
                NodeKind::Fluid => c.fluid += 1,
                NodeKind::Wall | NodeKind::MovingWall { .. } => c.solid += 1,
                NodeKind::Inlet { .. } | NodeKind::VelocityNebb { .. } => c.inlet += 1,
                NodeKind::Outlet { .. } | NodeKind::PressureNebb { .. } => c.outlet += 1,
            }
        }
        c
    }
}

/// Node counts by class; see [`FlagField::census`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagCensus {
    /// Bulk fluid nodes.
    pub fluid: usize,
    /// Solid nodes (static and moving walls).
    pub solid: usize,
    /// Inlet nodes.
    pub inlet: usize,
    /// Outlet nodes.
    pub outlet: usize,
}

impl FlagCensus {
    /// Total nodes accounted for.
    pub fn total(&self) -> usize {
        self.fluid + self.solid + self.inlet + self.outlet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_field_is_all_fluid() {
        let f = FlagField::new(GridDims::new(3, 3, 3));
        let c = f.census();
        assert_eq!(c.fluid, 27);
        assert_eq!(c.total(), 27);
    }

    #[test]
    fn box_walls_2d_paint_only_xy_border() {
        let mut f = FlagField::new(GridDims::new2d(4, 4));
        f.set_box_walls();
        let c = f.census();
        // 4x4 grid: 12 border cells, 4 interior.
        assert_eq!(c.solid, 12);
        assert_eq!(c.fluid, 4);
        assert!(f.kind_at(1, 1, 0).is_fluid());
        assert!(f.kind_at(0, 2, 0).is_solid());
    }

    #[test]
    fn box_walls_3d_paint_all_faces() {
        let mut f = FlagField::new(GridDims::new(4, 4, 4));
        f.set_box_walls();
        let c = f.census();
        // 4³ = 64 cells, interior 2³ = 8.
        assert_eq!(c.fluid, 8);
        assert_eq!(c.solid, 56);
        assert!(f.kind_at(2, 2, 0).is_solid());
        assert!(f.kind_at(2, 2, 3).is_solid());
    }

    #[test]
    fn lid_overrides_top_wall() {
        let mut f = FlagField::new(GridDims::new2d(4, 4));
        f.set_box_walls();
        f.paint_lid([0.1, 0.0, 0.0]);
        match f.kind_at(2, 3, 0) {
            NodeKind::MovingWall { u } => assert_eq!(u, [0.1, 0.0, 0.0]),
            other => panic!("expected moving wall, got {other:?}"),
        }
        // Bottom wall untouched.
        assert_eq!(f.kind_at(2, 0, 0), NodeKind::Wall);
    }

    #[test]
    fn inflow_outflow_painting() {
        let mut f = FlagField::new(GridDims::new(5, 3, 2));
        f.paint_inflow_outflow_x(1.0, [0.05, 0.0, 0.0]);
        let c = f.census();
        assert_eq!(c.inlet, 3 * 2);
        assert_eq!(c.outlet, 3 * 2);
        match f.kind_at(4, 1, 1) {
            NodeKind::Outlet { normal } => assert_eq!(normal, [1, 0, 0]),
            other => panic!("expected outlet, got {other:?}"),
        }
    }

    #[test]
    fn mask_application_and_length_check() {
        let dims = GridDims::new2d(3, 3);
        let mut f = FlagField::new(dims);
        let mut mask = vec![false; 9];
        mask[dims.idx(1, 1, 0)] = true;
        f.apply_mask(&mask).unwrap();
        assert!(f.kind_at(1, 1, 0).is_solid());
        assert!(f.kind_at(0, 0, 0).is_fluid());
        assert!(f.apply_mask(&[false; 8]).is_err());
    }

    #[test]
    fn ground_and_channel_walls() {
        let mut f = FlagField::new(GridDims::new(3, 3, 3));
        f.paint_ground_z();
        assert!(f.kind_at(1, 1, 0).is_solid());
        assert!(f.kind_at(1, 1, 1).is_fluid());

        let mut g = FlagField::new(GridDims::new(3, 4, 2));
        g.paint_channel_walls_y();
        assert!(g.kind_at(1, 0, 1).is_solid());
        assert!(g.kind_at(1, 3, 0).is_solid());
        assert!(g.kind_at(1, 1, 0).is_fluid());
    }
}
