//! Collision operators.
//!
//! The paper adopts the **LBGK** single-relaxation-time model (Qian et al., ref. \[2\]):
//! `f ← f − (1/τ)(f − f_eq)`. For the LES runs (urban wind, §V-C) the
//! Smagorinsky subgrid closure makes the relaxation time local, computed from the
//! non-equilibrium stress tensor. Both operate on one cell's population vector and
//! are therefore embarrassingly parallel — the property that lets the paper fuse
//! collision into the streaming loop.

use crate::equilibrium::{equilibrium_dir, moments, velocity};
use crate::error::{CoreError, Result};
use crate::lattice::Lattice;
use crate::Scalar;

/// Floating point operations per D3Q19 fused cell update, used for sustained-Flops
/// reporting.
///
/// Counted statically from [`collide_bgk`] plus the moment computation: moments
/// `≈ 7·Q`, equilibrium `≈ 11·Q`, relaxation `3·Q`, plus ~10 for norms/inverses.
/// For D3Q19 this gives `≈ 409`, matching the paper's implied
/// `4.7 PFlops / 11245 GLUPS ≈ 418` flops per lattice update to within 2 %.
pub fn flops_per_update(q: usize) -> usize {
    21 * q + 10
}

/// Parameters of the single-relaxation-time (BGK) operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BgkParams {
    /// Relaxation time `τ` (in units of the time step).
    pub tau: Scalar,
    /// Relaxation frequency `ω = 1/τ`, precomputed for the hot loop.
    pub omega: Scalar,
}

impl BgkParams {
    /// Construct from the relaxation time `τ`.
    ///
    /// # Panics
    /// Panics if `τ ≤ 0.5` (linear stability bound: viscosity would be ≤ 0).
    pub fn from_tau(tau: Scalar) -> Self {
        Self::try_from_tau(tau).expect("invalid relaxation time")
    }

    /// Fallible variant of [`BgkParams::from_tau`].
    pub fn try_from_tau(tau: Scalar) -> Result<Self> {
        // `!(tau > 0.5)` (not `tau <= 0.5`) deliberately rejects NaN too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(tau > 0.5) || !tau.is_finite() {
            return Err(CoreError::InvalidRelaxation(format!(
                "tau must satisfy tau > 0.5 for positive viscosity, got {tau}"
            )));
        }
        Ok(Self { tau, omega: 1.0 / tau })
    }

    /// Construct from the lattice kinematic viscosity `ν` using the paper's
    /// relation `ν = (2τ − 1)/6`, i.e. `τ = (6ν + 1)/2`.
    pub fn from_viscosity(nu: Scalar) -> Result<Self> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting comparison
        if !(nu > 0.0) || !nu.is_finite() {
            return Err(CoreError::InvalidRelaxation(format!(
                "viscosity must be positive, got {nu}"
            )));
        }
        Self::try_from_tau((6.0 * nu + 1.0) / 2.0)
    }

    /// Lattice kinematic viscosity `ν = (2τ − 1)/6`.
    pub fn viscosity(&self) -> Scalar {
        (2.0 * self.tau - 1.0) / 6.0
    }
}

/// Parameters of the Smagorinsky LES closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmagorinskyParams {
    /// Molecular (resolved) relaxation time `τ₀`.
    pub bgk: BgkParams,
    /// Smagorinsky constant `C_s` (typically 0.1 – 0.2).
    pub cs: Scalar,
}

impl SmagorinskyParams {
    /// Construct with relaxation time `τ₀` and Smagorinsky constant `cs`.
    pub fn new(bgk: BgkParams, cs: Scalar) -> Result<Self> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting comparison
        if !(cs > 0.0) || !cs.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "Smagorinsky constant must be positive, got {cs}"
            )));
        }
        Ok(Self { bgk, cs })
    }
}

/// Which collision operator a solver runs. The enum (rather than trait objects)
/// keeps the per-cell dispatch branch-predictable and inlinable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollisionKind {
    /// Plain LBGK with constant `τ`.
    Bgk(BgkParams),
    /// LBGK with local eddy-viscosity `τ_eff` from the Smagorinsky model.
    SmagorinskyLes(SmagorinskyParams),
    /// LBGK with a constant body force per unit volume (Guo et al. 2002
    /// forcing) — drives periodic channels the way a pressure gradient would.
    BgkForced {
        /// Relaxation parameters.
        params: BgkParams,
        /// Body force (lattice units, force per cell volume).
        force: [Scalar; 3],
    },
    /// Multiple-relaxation-time collision (D3Q19 only; other lattices fall
    /// back to BGK at the MRT's shear-viscosity rate). See [`crate::mrt`].
    MrtD3Q19(crate::mrt::MrtParams),
}

impl CollisionKind {
    /// The molecular-scale BGK parameters (base `τ`).
    pub fn base(&self) -> BgkParams {
        match self {
            CollisionKind::Bgk(p) => *p,
            CollisionKind::SmagorinskyLes(p) => p.bgk,
            CollisionKind::BgkForced { params, .. } => *params,
            CollisionKind::MrtD3Q19(p) => BgkParams::from_tau(p.tau()),
        }
    }
}

/// Relax one cell's populations in place with constant `ω`.
///
/// Returns `(rho, u)` so fused kernels can reuse the moments for observables
/// without recomputation.
#[inline(always)]
pub fn collide_bgk<L: Lattice>(f: &mut [Scalar], omega: Scalar) -> (Scalar, [Scalar; 3]) {
    let (rho, j) = moments::<L>(f);
    let u = velocity(rho, j);
    let usq15 = 1.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
    for q in 0..L::Q {
        let feq = equilibrium_dir::<L>(q, rho, u, usq15);
        f[q] -= omega * (f[q] - feq);
    }
    (rho, u)
}

/// Relax one cell's populations in place with the Smagorinsky eddy viscosity.
///
/// The effective relaxation time follows the standard LBM-LES algebra:
///
/// ```text
/// Π_ab  = Σ_q (f_q − f_q^eq) c_qa c_qb          (non-equilibrium stress)
/// |Π|   = sqrt(Σ_ab Π_ab²)
/// τ_eff = ½ ( τ₀ + sqrt(τ₀² + 18 √2 C_s² |Π| / ρ) )
/// ```
#[inline]
pub fn collide_smagorinsky<L: Lattice>(
    f: &mut [Scalar],
    p: &SmagorinskyParams,
) -> (Scalar, [Scalar; 3]) {
    let (rho, j) = moments::<L>(f);
    let u = velocity(rho, j);
    let usq15 = 1.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);

    // Compute feq once and accumulate the non-equilibrium second moment.
    let mut feq = [0.0; 32];
    let feq = &mut feq[..L::Q];
    let mut pi = [[0.0; 3]; 3];
    for q in 0..L::Q {
        feq[q] = equilibrium_dir::<L>(q, rho, u, usq15);
        let fneq = f[q] - feq[q];
        let c = L::C[q];
        for a in 0..3 {
            for b in 0..3 {
                pi[a][b] += fneq * (c[a] * c[b]) as Scalar;
            }
        }
    }
    let mut pi_norm_sq = 0.0;
    for a in 0..3 {
        for b in 0..3 {
            pi_norm_sq += pi[a][b] * pi[a][b];
        }
    }
    let pi_norm = pi_norm_sq.sqrt();

    let tau0 = p.bgk.tau;
    let tau_eff = 0.5
        * (tau0
            + (tau0 * tau0 + 18.0 * std::f64::consts::SQRT_2 * p.cs * p.cs * pi_norm / rho.max(1e-12))
                .sqrt());
    let omega = 1.0 / tau_eff;
    for q in 0..L::Q {
        f[q] -= omega * (f[q] - feq[q]);
    }
    (rho, u)
}

/// Relax one cell with the Guo et al. (2002) forcing scheme.
///
/// The macroscopic velocity is shifted by half the force impulse,
/// `u = (Σ f c + F/2)/ρ`, the equilibrium is built with that `u`, and a
/// discrete source
///
/// ```text
/// S_q = (1 − ω/2) w_q [ 3 (c_q − u)·F + 9 (c_q·u)(c_q·F) ]
/// ```
///
/// is added — the second-order-accurate forcing that recovers the
/// Navier–Stokes equations with body force `F` exactly (used by the
/// periodic-Poiseuille validation).
#[inline]
pub fn collide_bgk_forced<L: Lattice>(
    f: &mut [Scalar],
    p: &BgkParams,
    force: [Scalar; 3],
) -> (Scalar, [Scalar; 3]) {
    let (rho, j) = moments::<L>(f);
    let inv_rho = if rho.abs() < 1e-300 { 0.0 } else { 1.0 / rho };
    let u = [
        (j[0] + 0.5 * force[0]) * inv_rho,
        (j[1] + 0.5 * force[1]) * inv_rho,
        (j[2] + 0.5 * force[2]) * inv_rho,
    ];
    let usq15 = 1.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
    let omega = p.omega;
    let pref = 1.0 - 0.5 * omega;
    for q in 0..L::Q {
        let c = L::C[q];
        let cf = c[0] as Scalar * force[0] + c[1] as Scalar * force[1] + c[2] as Scalar * force[2];
        let cu = c[0] as Scalar * u[0] + c[1] as Scalar * u[1] + c[2] as Scalar * u[2];
        let uf = u[0] * force[0] + u[1] * force[1] + u[2] * force[2];
        let feq = equilibrium_dir::<L>(q, rho, u, usq15);
        let source = pref * L::W[q] * (3.0 * (cf - uf) + 9.0 * cu * cf);
        f[q] = f[q] - omega * (f[q] - feq) + source;
    }
    (rho, u)
}

/// Dispatch helper used by the generic kernels.
#[inline(always)]
pub fn collide<L: Lattice>(f: &mut [Scalar], kind: &CollisionKind) -> (Scalar, [Scalar; 3]) {
    match kind {
        CollisionKind::Bgk(p) => collide_bgk::<L>(f, p.omega),
        CollisionKind::SmagorinskyLes(p) => collide_smagorinsky::<L>(f, p),
        CollisionKind::BgkForced { params, force } => {
            collide_bgk_forced::<L>(f, params, *force)
        }
        CollisionKind::MrtD3Q19(p) => {
            if L::Q == 19 {
                crate::mrt::collide_mrt(f, p)
            } else {
                collide_bgk::<L>(f, 1.0 / p.tau())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::equilibrium;
    use crate::lattice::{D2Q9, D3Q19};

    #[test]
    fn tau_viscosity_roundtrip_matches_paper_relation() {
        // Paper §IV-A: ν = (2τ − 1)/6.
        let p = BgkParams::from_tau(0.8);
        assert!((p.viscosity() - 0.1).abs() < 1e-15);
        let p2 = BgkParams::from_viscosity(0.1).unwrap();
        assert!((p2.tau - 0.8).abs() < 1e-15);
    }

    #[test]
    fn invalid_relaxation_is_rejected() {
        assert!(BgkParams::try_from_tau(0.5).is_err());
        assert!(BgkParams::try_from_tau(0.4).is_err());
        assert!(BgkParams::try_from_tau(Scalar::NAN).is_err());
        assert!(BgkParams::from_viscosity(-0.1).is_err());
        assert!(BgkParams::from_viscosity(0.0).is_err());
        assert!(SmagorinskyParams::new(BgkParams::from_tau(0.6), -1.0).is_err());
    }

    #[test]
    fn bgk_conserves_mass_and_momentum() {
        let mut f: Vec<Scalar> = (0..D3Q19::Q).map(|q| 0.02 + 0.013 * q as Scalar).collect();
        let (rho0, j0) = moments::<D3Q19>(&f);
        collide_bgk::<D3Q19>(&mut f, 1.0 / 0.7);
        let (rho1, j1) = moments::<D3Q19>(&f);
        assert!((rho0 - rho1).abs() < 1e-13);
        for a in 0..3 {
            assert!((j0[a] - j1[a]).abs() < 1e-13);
        }
    }

    #[test]
    fn equilibrium_is_a_fixed_point_of_bgk() {
        let mut f = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.0, [0.08, -0.02, 0.0], &mut f);
        let before = f.clone();
        collide_bgk::<D2Q9>(&mut f, 1.0 / 0.9);
        for q in 0..D2Q9::Q {
            assert!((f[q] - before[q]).abs() < 1e-14);
        }
    }

    #[test]
    fn omega_one_projects_onto_equilibrium() {
        // With τ = 1 (ω = 1) the post-collision state is exactly feq.
        let mut f: Vec<Scalar> = (0..D2Q9::Q).map(|q| 0.1 + 0.01 * q as Scalar).collect();
        let (rho, j) = moments::<D2Q9>(&f);
        let u = velocity(rho, j);
        collide_bgk::<D2Q9>(&mut f, 1.0);
        let mut feq = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(rho, u, &mut feq);
        for q in 0..D2Q9::Q {
            assert!((f[q] - feq[q]).abs() < 1e-14);
        }
    }

    #[test]
    fn smagorinsky_conserves_mass_and_momentum() {
        let p = SmagorinskyParams::new(BgkParams::from_tau(0.55), 0.16).unwrap();
        let mut f: Vec<Scalar> = (0..D3Q19::Q)
            .map(|q| 0.05 + 0.002 * (q as Scalar) * (q as Scalar))
            .collect();
        let (rho0, j0) = moments::<D3Q19>(&f);
        collide_smagorinsky::<D3Q19>(&mut f, &p);
        let (rho1, j1) = moments::<D3Q19>(&f);
        assert!((rho0 - rho1).abs() < 1e-13);
        for a in 0..3 {
            assert!((j0[a] - j1[a]).abs() < 1e-13);
        }
    }

    #[test]
    fn smagorinsky_reduces_to_bgk_at_equilibrium() {
        // At equilibrium the non-equilibrium stress vanishes, so τ_eff = τ₀ and the
        // state stays fixed.
        let p = SmagorinskyParams::new(BgkParams::from_tau(0.7), 0.16).unwrap();
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(1.0, [0.03, 0.01, -0.02], &mut f);
        let before = f.clone();
        collide_smagorinsky::<D3Q19>(&mut f, &p);
        for q in 0..D3Q19::Q {
            assert!((f[q] - before[q]).abs() < 1e-13);
        }
    }

    #[test]
    fn smagorinsky_increases_effective_viscosity_off_equilibrium() {
        // In the under-relaxed regime (τ₀ > 1 so ω < 1) a larger τ_eff means a
        // larger post-collision non-equilibrium residue: the LES state must stay
        // at least as far from equilibrium as the BGK one. (For τ₀ < 1 the
        // over-relaxation sign flip makes the raw-distance comparison invalid,
        // which is why this test pins τ₀ = 1.5.)
        let p = SmagorinskyParams::new(BgkParams::from_tau(1.5), 0.2).unwrap();
        let mut f: Vec<Scalar> = (0..D3Q19::Q).map(|q| 0.05 + 0.01 * q as Scalar).collect();
        let mut g = f.clone();
        collide_bgk::<D3Q19>(&mut f, p.bgk.omega);
        collide_smagorinsky::<D3Q19>(&mut g, &p);
        // Distance from equilibrium after collision: LES ≥ BGK.
        let (rho, j) = moments::<D3Q19>(&f);
        let u = velocity(rho, j);
        let mut feq = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(rho, u, &mut feq);
        let dist = |h: &[Scalar]| -> Scalar {
            h.iter().zip(feq.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        assert!(dist(&g) >= dist(&f) - 1e-15);
    }

    #[test]
    fn forced_collision_adds_exactly_the_force_impulse() {
        // Guo forcing: one collision changes the momentum by exactly F
        // (half before, half after — the net per step is F).
        let force = [1e-4, -2e-4, 5e-5];
        let p = BgkParams::from_tau(0.8);
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(1.0, [0.02, 0.01, 0.0], &mut f);
        let (_, j0) = moments::<D3Q19>(&f);
        collide_bgk_forced::<D3Q19>(&mut f, &p, force);
        let (rho1, j1) = moments::<D3Q19>(&f);
        // Mass unchanged; momentum grows by F.
        assert!((rho1 - 1.0).abs() < 1e-13);
        for a in 0..3 {
            assert!(
                (j1[a] - j0[a] - force[a]).abs() < 1e-13,
                "axis {a}: dj = {}, F = {}",
                j1[a] - j0[a],
                force[a]
            );
        }
    }

    #[test]
    fn zero_force_reduces_to_plain_bgk() {
        let p = BgkParams::from_tau(0.7);
        let mut a: Vec<Scalar> = (0..D3Q19::Q).map(|q| 0.03 + 0.004 * q as Scalar).collect();
        let mut b = a.clone();
        collide_bgk::<D3Q19>(&mut a, p.omega);
        collide_bgk_forced::<D3Q19>(&mut b, &p, [0.0; 3]);
        for q in 0..D3Q19::Q {
            assert!((a[q] - b[q]).abs() < 1e-15);
        }
    }

    #[test]
    fn flops_count_is_near_papers_implied_value() {
        // 4.7 PFlops / 11245 GLUPS ≈ 418 flops per update; our static count for
        // D3Q19 must land within 5 % of that.
        let ours = flops_per_update(19) as Scalar;
        let paper = 4.7e15 / 11245e9;
        assert!((ours - paper).abs() / paper < 0.05, "ours={ours}, paper={paper}");
    }
}
