//! Multiple-relaxation-time (MRT) collision for D3Q19.
//!
//! The paper runs single-relaxation-time LBGK; MRT (d'Humières et al. 2002) is
//! the standard stability/accuracy upgrade — the collision happens in moment
//! space, where each moment family relaxes at its own rate. We include it as a
//! documented extension: the ghost-moment rates damp the non-hydrodynamic modes
//! that destabilize LBGK at low viscosity.
//!
//! Implementation notes:
//!
//! * The 19 moment basis vectors are the classical polynomials (density,
//!   energy, energy², momentum, heat flux, stress, ghost modes), evaluated on
//!   **this crate's velocity ordering** — they are pairwise orthogonal under
//!   the unweighted inner product, so `M⁻¹ = Mᵀ · diag(1/‖row‖²)`.
//! * Equilibrium moments are computed as `m_eq = M · f_eq(ρ, u)` from the
//!   lattice equilibrium itself. This makes MRT with all rates equal to `ω`
//!   **exactly** equal to BGK (verified by test), and makes the operator
//!   conserve mass and momentum identically.

use crate::equilibrium::{equilibrium, moments, velocity};
use crate::lattice::{Lattice, D3Q19};
use crate::Scalar;
use std::sync::OnceLock;

const Q: usize = 19;

/// Per-moment relaxation rates for D3Q19 MRT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrtParams {
    /// One rate per moment, in the basis order of [`basis`].
    pub rates: [Scalar; Q],
}

impl MrtParams {
    /// The d'Humières et al. (2002) standard rates with the shear-viscosity
    /// rate `s_ν = 1/τ` on the five second-order stress moments:
    ///
    /// * conserved (ρ, j): 0 (no effect — their non-equilibrium part is zero),
    /// * energy `e`: 1.19, energy squared `ε`: 1.4,
    /// * heat flux `q`: 1.2,
    /// * stress (p_xx, p_ww, p_xy, p_yz, p_xz): `1/τ`,
    /// * fourth-order π: 1.4, ghost m: 1.98.
    pub fn standard(tau: Scalar) -> Self {
        assert!(tau > 0.5, "tau must exceed 0.5");
        let s_nu = 1.0 / tau;
        let mut rates = [0.0; Q];
        rates[1] = 1.19; // e
        rates[2] = 1.4; // epsilon
        rates[4] = 1.2; // qx
        rates[6] = 1.2; // qy
        rates[8] = 1.2; // qz
        rates[9] = s_nu; // 3 p_xx
        rates[10] = 1.4; // 3 pi_xx
        rates[11] = s_nu; // p_ww
        rates[12] = 1.4; // pi_ww
        rates[13] = s_nu; // p_xy
        rates[14] = s_nu; // p_yz
        rates[15] = s_nu; // p_xz
        rates[16] = 1.98; // m_x
        rates[17] = 1.98; // m_y
        rates[18] = 1.98; // m_z
        Self { rates }
    }

    /// All rates equal — the BGK limit (used by the equivalence test).
    pub fn bgk_limit(tau: Scalar) -> Self {
        assert!(tau > 0.5);
        Self { rates: [1.0 / tau; Q] }
    }

    /// The relaxation time implied by the shear-viscosity rate (`τ = 1/s_ν`).
    pub fn tau(&self) -> Scalar {
        let s = self.rates[9];
        assert!(s > 0.0, "shear rate must be positive");
        1.0 / s
    }
}

/// The orthogonal moment basis `M` (rows) and the squared row norms.
pub struct MrtBasis {
    /// `m[k][q]` — moment `k`'s weight on population `q`.
    pub m: [[Scalar; Q]; Q],
    /// `Σ_q m[k][q]²` per row (for the inverse transform).
    pub norm_sq: [Scalar; Q],
}

/// Build (once) the moment basis on this crate's D3Q19 ordering.
pub fn basis() -> &'static MrtBasis {
    static BASIS: OnceLock<MrtBasis> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut m = [[0.0; Q]; Q];
        for q in 0..Q {
            let c = D3Q19::C[q];
            let (x, y, z) = (c[0] as Scalar, c[1] as Scalar, c[2] as Scalar);
            let c2 = x * x + y * y + z * z;
            m[0][q] = 1.0;
            m[1][q] = 19.0 * c2 - 30.0;
            m[2][q] = (21.0 * c2 * c2 - 53.0 * c2 + 24.0) / 2.0;
            m[3][q] = x;
            m[4][q] = (5.0 * c2 - 9.0) * x;
            m[5][q] = y;
            m[6][q] = (5.0 * c2 - 9.0) * y;
            m[7][q] = z;
            m[8][q] = (5.0 * c2 - 9.0) * z;
            m[9][q] = 3.0 * x * x - c2;
            m[10][q] = (3.0 * c2 - 5.0) * (3.0 * x * x - c2);
            m[11][q] = y * y - z * z;
            m[12][q] = (3.0 * c2 - 5.0) * (y * y - z * z);
            m[13][q] = x * y;
            m[14][q] = y * z;
            m[15][q] = x * z;
            m[16][q] = (y * y - z * z) * x;
            m[17][q] = (z * z - x * x) * y;
            m[18][q] = (x * x - y * y) * z;
        }
        let mut norm_sq = [0.0; Q];
        for k in 0..Q {
            norm_sq[k] = m[k].iter().map(|v| v * v).sum();
        }
        MrtBasis { m, norm_sq }
    })
}

/// Relax one cell's populations in moment space.
///
/// Returns `(rho, u)` like the BGK operators.
pub fn collide_mrt(f: &mut [Scalar], params: &MrtParams) -> (Scalar, [Scalar; 3]) {
    debug_assert_eq!(f.len(), Q);
    let b = basis();
    let (rho, j) = moments::<D3Q19>(f);
    let u = velocity(rho, j);

    // Equilibrium populations → equilibrium moments (exact BGK consistency).
    let mut feq = [0.0; Q];
    equilibrium::<D3Q19>(rho, u, &mut feq);

    // Transform, relax, transform back: f -= Mᵀ N⁻¹ S (M f − M feq).
    let mut dm = [0.0; Q];
    for k in 0..Q {
        if params.rates[k] == 0.0 {
            continue;
        }
        let mut mk = 0.0;
        let mut mk_eq = 0.0;
        for q in 0..Q {
            mk += b.m[k][q] * f[q];
            mk_eq += b.m[k][q] * feq[q];
        }
        dm[k] = params.rates[k] * (mk - mk_eq) / b.norm_sq[k];
    }
    for q in 0..Q {
        let mut df = 0.0;
        for k in 0..Q {
            df += b.m[k][q] * dm[k];
        }
        f[q] -= df;
    }
    (rho, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::collide_bgk;

    #[test]
    fn basis_rows_are_orthogonal() {
        let b = basis();
        for i in 0..Q {
            for jj in 0..Q {
                let dot: Scalar = (0..Q).map(|q| b.m[i][q] * b.m[jj][q]).sum();
                if i == jj {
                    assert!(dot > 0.0, "row {i} has zero norm");
                } else {
                    assert!(
                        dot.abs() < 1e-10,
                        "rows {i} and {jj} not orthogonal: {dot}"
                    );
                }
            }
        }
    }

    #[test]
    fn conserved_moments_are_density_and_momentum() {
        let b = basis();
        // Row 0 is all ones; rows 3, 5, 7 are cx, cy, cz.
        assert!(b.m[0].iter().all(|&v| v == 1.0));
        for q in 0..Q {
            assert_eq!(b.m[3][q], D3Q19::C[q][0] as Scalar);
            assert_eq!(b.m[5][q], D3Q19::C[q][1] as Scalar);
            assert_eq!(b.m[7][q], D3Q19::C[q][2] as Scalar);
        }
    }

    #[test]
    fn mrt_conserves_mass_and_momentum() {
        let p = MrtParams::standard(0.6);
        let mut f: Vec<Scalar> = (0..Q).map(|q| 0.03 + 0.007 * q as Scalar).collect();
        let (r0, j0) = moments::<D3Q19>(&f);
        collide_mrt(&mut f, &p);
        let (r1, j1) = moments::<D3Q19>(&f);
        assert!((r0 - r1).abs() < 1e-12);
        for a in 0..3 {
            assert!((j0[a] - j1[a]).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_rates_reduce_exactly_to_bgk() {
        let tau = 0.8;
        let mut a: Vec<Scalar> = (0..Q).map(|q| 0.02 + 0.005 * q as Scalar).collect();
        let mut b = a.clone();
        collide_bgk::<D3Q19>(&mut a, 1.0 / tau);
        collide_mrt(&mut b, &MrtParams::bgk_limit(tau));
        for q in 0..Q {
            assert!(
                (a[q] - b[q]).abs() < 1e-12,
                "q {q}: BGK {} vs MRT(BGK limit) {}",
                a[q],
                b[q]
            );
        }
    }

    #[test]
    fn equilibrium_is_a_fixed_point() {
        let p = MrtParams::standard(0.7);
        let mut f = [0.0; Q];
        equilibrium::<D3Q19>(1.1, [0.03, -0.02, 0.01], &mut f);
        let before = f;
        collide_mrt(&mut f, &p);
        for q in 0..Q {
            assert!((f[q] - before[q]).abs() < 1e-13);
        }
    }

    #[test]
    fn ghost_rates_differ_from_shear_without_changing_hydrodynamics_order() {
        // Off-equilibrium state: MRT with standard rates and BGK with the same
        // τ must agree on the *stress* relaxation (second moments) even though
        // ghost moments relax differently.
        let tau = 0.75;
        let mut f: Vec<Scalar> = (0..Q).map(|q| 0.05 + 0.004 * (q * q % 7) as Scalar).collect();
        let mut g = f.clone();
        collide_bgk::<D3Q19>(&mut f, 1.0 / tau);
        collide_mrt(&mut g, &MrtParams::standard(tau));
        // Compare the traceless second moment after collision.
        let second = |h: &[Scalar], a: usize, bb: usize| -> Scalar {
            (0..Q)
                .map(|q| h[q] * (D3Q19::C[q][a] * D3Q19::C[q][bb]) as Scalar)
                .sum()
        };
        for (a, bb) in [(0, 1), (1, 2), (0, 2)] {
            let (sf, sg) = (second(&f, a, bb), second(&g, a, bb));
            assert!(
                (sf - sg).abs() < 1e-12,
                "off-diagonal stress ({a},{bb}): BGK {sf} vs MRT {sg}"
            );
        }
    }

    #[test]
    fn mrt_is_stable_where_bgk_params_are_marginal() {
        // Drive a small shear state at τ close to 0.5 for many collisions;
        // the ghost damping must keep populations bounded.
        let p = MrtParams::standard(0.501);
        let mut f = [0.0; Q];
        equilibrium::<D3Q19>(1.0, [0.1, 0.05, 0.0], &mut f);
        f[7] += 0.05; // inject a non-equilibrium disturbance
        for _ in 0..1000 {
            collide_mrt(&mut f, &p);
        }
        assert!(f.iter().all(|v| v.is_finite()));
        let (rho, _) = moments::<D3Q19>(&f);
        assert!((rho - 1.05).abs() < 1e-9);
    }
}
