//! Non-equilibrium bounce-back (NEBB / Zou–He-type) open boundaries.
//!
//! The equilibrium inlet ([`crate::boundary::NodeKind::Inlet`]) is *soft*: it
//! imposes a target state but the realized flux settles below it (see the
//! channel validation). NEBB boundaries are *sharp*: after streaming, the
//! populations whose upstream source lies outside the domain are reconstructed
//! from the known ones so that the imposed condition holds exactly.
//!
//! For a face with outward unit normal `n` the post-streaming mass/normal-
//! momentum balance over the known populations gives
//!
//! ```text
//! ρ (1 + u·n) = Σ_{c·n = 0} f + 2 Σ_{c·n > 0} f
//! ```
//!
//! — solve it for `ρ` (velocity boundary) or for `u·n` (pressure boundary) —
//! and each unknown population (`c·n < 0`) is rebuilt by bouncing the
//! non-equilibrium part of its opposite:
//!
//! ```text
//! f_q = f_opp(q) + ( f_q^eq(ρ, u) − f_opp(q)^eq(ρ, u) )
//! ```
//!
//! This is the lattice-generic core of Zou & He (1997) / Hecht & Harting
//! (2010). The transverse-momentum correction terms of the full Zou–He scheme
//! are omitted (they vanish for face-normal inflow/outflow, the case all the
//! paper's cases use); tangential imposed velocities are realized to first
//! order only.

use crate::equilibrium::equilibrium_dir;
use crate::lattice::Lattice;
use crate::Scalar;

/// Dot product of a lattice velocity with an integer face normal.
#[inline(always)]
fn cn<L: Lattice>(q: usize, n: [i32; 3]) -> i32 {
    let c = L::C[q];
    c[0] * n[0] + c[1] * n[1] + c[2] * n[2]
}

/// Sum the knowns: returns `(Σ_{c·n=0} f, Σ_{c·n>0} f)`.
#[inline]
fn known_sums<L: Lattice>(f: &[Scalar], n: [i32; 3]) -> (Scalar, Scalar) {
    let mut tangential = 0.0;
    let mut outgoing = 0.0;
    for q in 0..L::Q {
        match cn::<L>(q, n).cmp(&0) {
            std::cmp::Ordering::Equal => tangential += f[q],
            std::cmp::Ordering::Greater => outgoing += f[q],
            std::cmp::Ordering::Less => {}
        }
    }
    (tangential, outgoing)
}

/// Rebuild the unknown populations (`c·n < 0`) by non-equilibrium bounce-back
/// against `(rho, u)`.
#[inline]
fn rebuild_unknowns<L: Lattice>(f: &mut [Scalar], rho: Scalar, u: [Scalar; 3], n: [i32; 3]) {
    let usq15 = 1.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
    for q in 0..L::Q {
        if cn::<L>(q, n) < 0 {
            let o = L::OPP[q];
            let feq_q = equilibrium_dir::<L>(q, rho, u, usq15);
            let feq_o = equilibrium_dir::<L>(o, rho, u, usq15);
            f[q] = f[o] + (feq_q - feq_o);
        }
    }
}

/// Velocity NEBB: impose `u` on a face with outward normal `n`.
///
/// `f` holds the post-streaming populations (unknown slots may contain
/// garbage); on return the unknowns are reconstructed and the realized
/// `(ρ, u)` moments match the imposed velocity exactly. Returns the solved ρ.
pub fn reconstruct_velocity<L: Lattice>(f: &mut [Scalar], u: [Scalar; 3], n: [i32; 3]) -> Scalar {
    debug_assert_eq!(f.len(), L::Q);
    let (tangential, outgoing) = known_sums::<L>(f, n);
    let un = u[0] * n[0] as Scalar + u[1] * n[1] as Scalar + u[2] * n[2] as Scalar;
    let denom = 1.0 + un;
    debug_assert!(denom.abs() > 1e-12, "velocity too close to the sonic limit");
    let rho = (tangential + 2.0 * outgoing) / denom;
    rebuild_unknowns::<L>(f, rho, u, n);
    rho
}

/// Pressure NEBB: impose `rho` on a face with outward normal `n`.
///
/// The normal velocity is solved from the knowns (`u = (u·n) n`, purely
/// face-normal), the unknowns reconstructed. Returns the solved velocity.
pub fn reconstruct_pressure<L: Lattice>(f: &mut [Scalar], rho: Scalar, n: [i32; 3]) -> [Scalar; 3] {
    debug_assert_eq!(f.len(), L::Q);
    debug_assert!(rho > 0.0);
    let (tangential, outgoing) = known_sums::<L>(f, n);
    let un = (tangential + 2.0 * outgoing) / rho - 1.0;
    let u = [un * n[0] as Scalar, un * n[1] as Scalar, un * n[2] as Scalar];
    rebuild_unknowns::<L>(f, rho, u, n);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{equilibrium, moments};
    use crate::lattice::{D2Q9, D3Q19};

    fn poison_unknowns<L: Lattice>(f: &mut [Scalar], n: [i32; 3]) {
        for q in 0..L::Q {
            if cn::<L>(q, n) < 0 {
                f[q] = 99.0; // garbage that must be overwritten
            }
        }
    }

    #[test]
    fn velocity_nebb_realizes_the_imposed_moments_exactly_d3q19() {
        // Start from equilibrium at some state, poison the unknowns, impose a
        // normal inflow: the reconstructed cell must carry exactly (ρ*, u*).
        let n = [-1, 0, 0]; // west face
        let u_star = [0.07, 0.0, 0.0];
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(1.03, u_star, &mut f);
        poison_unknowns::<D3Q19>(&mut f, n);
        let rho = reconstruct_velocity::<D3Q19>(&mut f, u_star, n);
        let (r, j) = moments::<D3Q19>(&f);
        assert!((r - rho).abs() < 1e-12);
        for a in 0..3 {
            assert!(
                (j[a] - rho * u_star[a]).abs() < 1e-12,
                "momentum axis {a}: {} vs {}",
                j[a],
                rho * u_star[a]
            );
        }
        // Starting from a consistent equilibrium the solved ρ is the original.
        assert!((rho - 1.03).abs() < 1e-12);
    }

    #[test]
    fn velocity_nebb_d2q9_all_four_faces() {
        for (n, u) in [
            ([-1, 0, 0], [0.05, 0.0, 0.0]),
            ([1, 0, 0], [-0.04, 0.0, 0.0]),
            ([0, -1, 0], [0.0, 0.03, 0.0]),
            ([0, 1, 0], [0.0, -0.06, 0.0]),
        ] {
            let mut f = vec![0.0; D2Q9::Q];
            equilibrium::<D2Q9>(1.0, u, &mut f);
            poison_unknowns::<D2Q9>(&mut f, n);
            let rho = reconstruct_velocity::<D2Q9>(&mut f, u, n);
            let (r, j) = moments::<D2Q9>(&f);
            assert!((r - rho).abs() < 1e-12, "face {n:?}");
            for a in 0..2 {
                assert!((j[a] - rho * u[a]).abs() < 1e-12, "face {n:?} axis {a}");
            }
        }
    }

    #[test]
    fn pressure_nebb_imposes_density_and_solves_normal_velocity() {
        let n = [1, 0, 0]; // east face (outlet)
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(0.98, [0.04, 0.0, 0.0], &mut f);
        poison_unknowns::<D3Q19>(&mut f, n);
        let u = reconstruct_pressure::<D3Q19>(&mut f, 0.98, n);
        let (r, j) = moments::<D3Q19>(&f);
        assert!((r - 0.98).abs() < 1e-12, "density {r}");
        // Starting from a consistent equilibrium, the solved u is the original.
        assert!((u[0] - 0.04).abs() < 1e-12, "u = {u:?}");
        assert!((j[0] - 0.98 * 0.04).abs() < 1e-12);
        assert!(j[1].abs() < 1e-12 && j[2].abs() < 1e-12);
    }

    #[test]
    fn reconstruction_preserves_known_populations() {
        let n = [-1, 0, 0];
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(1.0, [0.02, 0.01, 0.0], &mut f);
        let before = f.clone();
        reconstruct_velocity::<D3Q19>(&mut f, [0.05, 0.0, 0.0], n);
        for q in 0..D3Q19::Q {
            if cn::<D3Q19>(q, n) >= 0 {
                assert_eq!(f[q], before[q], "known q {q} modified");
            }
        }
    }

    #[test]
    fn zero_velocity_face_acts_like_a_resting_reservoir() {
        // With u* = 0 the unknowns equal their opposites' non-equilibrium
        // bounce-back: a no-flux face. Net momentum through the face vanishes.
        let n = [0, -1, 0];
        let mut f = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.0, [0.0; 3], &mut f);
        poison_unknowns::<D2Q9>(&mut f, n);
        reconstruct_velocity::<D2Q9>(&mut f, [0.0; 3], n);
        let (_, j) = moments::<D2Q9>(&f);
        assert!(j[1].abs() < 1e-14);
    }
}
