//! The discrete Maxwell–Boltzmann equilibrium of the LBGK model (Qian et al. 1992).
//!
//! ```text
//! f_q^eq = w_q ρ [ 1 + 3 (c_q·u) + 9/2 (c_q·u)² − 3/2 u² ]
//! ```
//!
//! (with lattice sound speed `c_s² = 1/3`, so `1/c_s² = 3`, `1/(2c_s⁴) = 4.5`,
//! `1/(2c_s²) = 1.5`).

use crate::lattice::Lattice;
use crate::Scalar;

/// Floating point operations per equilibrium evaluation of a single direction.
///
/// Counted from the expression below: one dot product (`2D−1` flops with D≈3 → 5),
/// plus 6 multiplies/adds to assemble the polynomial. Used by the sustained-Flops
/// accounting in `swlb-arch::perf`.
pub const FLOPS_PER_EQUILIBRIUM: usize = 11;

/// Equilibrium population for direction `q` at density `rho` and velocity `u`.
///
/// `usq15` must be `1.5 · (u·u)` — hoisting it lets callers amortize the velocity
/// norm across all `Q` directions (one of the "pre-computation of high-overhead
/// operations" tricks in the paper's GPU section).
#[inline(always)]
pub fn equilibrium_dir<L: Lattice>(q: usize, rho: Scalar, u: [Scalar; 3], usq15: Scalar) -> Scalar {
    let c = L::C[q];
    let cu = c[0] as Scalar * u[0] + c[1] as Scalar * u[1] + c[2] as Scalar * u[2];
    L::W[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - usq15)
}

/// Full equilibrium vector for `(rho, u)` written into `out` (length `Q`).
#[inline]
pub fn equilibrium<L: Lattice>(rho: Scalar, u: [Scalar; 3], out: &mut [Scalar]) {
    debug_assert_eq!(out.len(), L::Q);
    let usq15 = 1.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
    for q in 0..L::Q {
        out[q] = equilibrium_dir::<L>(q, rho, u, usq15);
    }
}

/// Compute density and momentum (zeroth and first moments) of a population vector.
///
/// Returns `(rho, j)` with `j = Σ_q f_q c_q`; the velocity is `u = j / rho`.
#[inline(always)]
pub fn moments<L: Lattice>(f: &[Scalar]) -> (Scalar, [Scalar; 3]) {
    debug_assert_eq!(f.len(), L::Q);
    let mut rho = 0.0;
    let mut j = [0.0; 3];
    for q in 0..L::Q {
        let fq = f[q];
        rho += fq;
        let c = L::C[q];
        j[0] += fq * c[0] as Scalar;
        j[1] += fq * c[1] as Scalar;
        j[2] += fq * c[2] as Scalar;
    }
    (rho, j)
}

/// Velocity from `(rho, j)`, guarding against division by a vanished density.
#[inline(always)]
pub fn velocity(rho: Scalar, j: [Scalar; 3]) -> [Scalar; 3] {
    if rho.abs() < 1e-300 {
        [0.0; 3]
    } else {
        let inv = 1.0 / rho;
        [j[0] * inv, j[1] * inv, j[2] * inv]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{D2Q9, D3Q15, D3Q19, D3Q27, Lattice};

    fn check_moments_recovered<L: Lattice>(rho: Scalar, u: [Scalar; 3]) {
        let mut feq = vec![0.0; L::Q];
        equilibrium::<L>(rho, u, &mut feq);
        let (r, j) = moments::<L>(&feq);
        assert!((r - rho).abs() < 1e-12, "{}: rho {r} != {rho}", L::NAME);
        for a in 0..L::D {
            assert!(
                (j[a] - rho * u[a]).abs() < 1e-12,
                "{}: j[{a}] = {} != {}",
                L::NAME,
                j[a],
                rho * u[a]
            );
        }
    }

    #[test]
    fn equilibrium_reproduces_density_and_momentum() {
        check_moments_recovered::<D2Q9>(1.0, [0.05, -0.02, 0.0]);
        check_moments_recovered::<D3Q15>(0.9, [0.01, 0.03, -0.04]);
        check_moments_recovered::<D3Q19>(1.1, [0.02, -0.01, 0.05]);
        check_moments_recovered::<D3Q27>(1.0, [-0.03, 0.02, 0.01]);
    }

    #[test]
    fn equilibrium_at_rest_equals_weights_times_rho() {
        let mut feq = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(2.0, [0.0; 3], &mut feq);
        for q in 0..D3Q19::Q {
            assert!((feq[q] - 2.0 * D3Q19::W[q]).abs() < 1e-15);
        }
    }

    #[test]
    fn second_moment_of_equilibrium_is_isotropic_plus_advective() {
        // Σ_q feq_q c_a c_b = rho cs² δ_ab + rho u_a u_b  (the Navier–Stokes
        // pressure + momentum-flux tensor), exact for the quadratic equilibrium.
        let rho = 1.2;
        let u = [0.04, -0.03, 0.02];
        let mut feq = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(rho, u, &mut feq);
        for a in 0..3 {
            for b in 0..3 {
                let mut pi = 0.0;
                for q in 0..D3Q19::Q {
                    pi += feq[q] * (D3Q19::C[q][a] * D3Q19::C[q][b]) as Scalar;
                }
                let expect = rho * crate::CS2 * ((a == b) as usize as Scalar) + rho * u[a] * u[b];
                assert!(
                    (pi - expect).abs() < 1e-12,
                    "Pi[{a}][{b}] = {pi}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn velocity_handles_zero_density() {
        assert_eq!(velocity(0.0, [1.0, 2.0, 3.0]), [0.0; 3]);
        let u = velocity(2.0, [1.0, 0.0, 0.0]);
        assert!((u[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn equilibrium_is_galilean_symmetric_under_velocity_reflection() {
        // feq(q; u) == feq(opp(q); -u) because c_opp = -c.
        let rho = 1.0;
        let u = [0.06, -0.02, 0.03];
        let nu = [-0.06, 0.02, -0.03];
        let mut f_pos = vec![0.0; D3Q19::Q];
        let mut f_neg = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(rho, u, &mut f_pos);
        equilibrium::<D3Q19>(rho, nu, &mut f_neg);
        for q in 0..D3Q19::Q {
            assert!((f_pos[q] - f_neg[D3Q19::OPP[q]]).abs() < 1e-15);
        }
    }
}
