//! Lattice descriptors (DnQm velocity sets).
//!
//! The paper's production runs use **D3Q19** (Fig. 3 of the paper); D2Q9 is provided
//! for 2-D validation cases, and D3Q15 / D3Q27 round out the usual cubic family so
//! that accuracy/bandwidth trade-offs can be studied (the bytes-per-cell-update of
//! the performance model scale with `Q`).
//!
//! A descriptor is a zero-sized type implementing [`Lattice`]: it exposes the
//! discrete velocities `c_q`, the quadrature weights `w_q` and the opposite-direction
//! permutation used by bounce-back. Velocities are stored as `[i32; 3]` even for 2-D
//! models (with `c_z = 0`) so that all generic kernels can be written once.

use crate::Scalar;

/// A discrete velocity set.
///
/// Implementors must satisfy the standard lattice Boltzmann quadrature constraints
/// (checked exhaustively by this module's tests):
///
/// * `Σ_q w_q = 1`
/// * `Σ_q w_q c_q = 0`
/// * `Σ_q w_q c_qα c_qβ = c_s² δ_αβ` with `c_s² = 1/3`
/// * `c_{opp(q)} = -c_q`
pub trait Lattice: Copy + Send + Sync + 'static {
    /// Spatial dimensionality (2 or 3).
    const D: usize;
    /// Number of discrete velocities.
    const Q: usize;
    /// Human-readable name, e.g. `"D3Q19"`.
    const NAME: &'static str;
    /// Discrete velocity vectors; `C[q]` is the displacement of direction `q`.
    const C: &'static [[i32; 3]];
    /// Quadrature weights.
    const W: &'static [Scalar];
    /// Opposite-direction permutation: `C[OPP[q]] == -C[q]`.
    const OPP: &'static [usize];

    /// Bytes loaded + stored per lattice-cell update in the paper's accounting.
    ///
    /// The paper (§IV-C.3) counts **380 B/LUP for D3Q19** in double precision,
    /// i.e. `2.5 · Q · 8` bytes: one read of each population, one write, and a
    /// half-weight charge for the write-allocate traffic of the store stream.
    /// We use the same formula for all lattices so the roofline model stays
    /// consistent across velocity sets.
    fn bytes_per_lup() -> usize {
        // 2.5 * Q * sizeof(f64), computed in integer arithmetic.
        Self::Q * 8 * 5 / 2
    }
}

macro_rules! declare_lattice {
    ($(#[$doc:meta])* $name:ident, d = $d:expr, q = $q:expr, c = $c:expr, w = $w:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name;

        impl $name {
            const C_ARR: [[i32; 3]; $q] = $c;
            const W_ARR: [Scalar; $q] = $w;
            const OPP_ARR: [usize; $q] = opposites(&Self::C_ARR);
        }

        impl Lattice for $name {
            const D: usize = $d;
            const Q: usize = $q;
            const NAME: &'static str = stringify!($name);
            const C: &'static [[i32; 3]] = &Self::C_ARR;
            const W: &'static [Scalar] = &Self::W_ARR;
            const OPP: &'static [usize] = &Self::OPP_ARR;
        }
    };
}

/// Compute the opposite-direction permutation at compile time.
const fn opposites<const Q: usize>(c: &[[i32; 3]; Q]) -> [usize; Q] {
    let mut opp = [usize::MAX; Q];
    let mut q = 0;
    while q < Q {
        let mut r = 0;
        while r < Q {
            if c[r][0] == -c[q][0] && c[r][1] == -c[q][1] && c[r][2] == -c[q][2] {
                opp[q] = r;
            }
            r += 1;
        }
        // A malformed velocity set (missing opposite) fails loudly at compile time.
        assert!(opp[q] != usize::MAX, "velocity set is not symmetric");
        q += 1;
    }
    opp
}

declare_lattice!(
    /// The standard 2-D nine-velocity lattice.
    ///
    /// Used by the 2-D validation cases (lid-driven cavity, Poiseuille/Couette
    /// channels, Taylor–Green). Weights: rest 4/9, axis 1/9, diagonal 1/36.
    D2Q9,
    d = 2,
    q = 9,
    c = [
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
        [-1, 1, 0],
    ],
    w = [
        4.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
    ]
);

declare_lattice!(
    /// The 3-D fifteen-velocity lattice (rest + 6 axis + 8 corners).
    ///
    /// Cheaper than D3Q19 per cell but less isotropic; included for
    /// bandwidth-vs-accuracy studies. Weights: rest 2/9, axis 1/9, corner 1/72.
    D3Q15,
    d = 3,
    q = 15,
    c = [
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 1],
        [-1, -1, -1],
        [1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [-1, 1, -1],
        [1, -1, -1],
        [-1, 1, 1],
    ],
    w = [
        2.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 9.0,
        1.0 / 72.0,
        1.0 / 72.0,
        1.0 / 72.0,
        1.0 / 72.0,
        1.0 / 72.0,
        1.0 / 72.0,
        1.0 / 72.0,
        1.0 / 72.0,
    ]
);

declare_lattice!(
    /// The 3-D nineteen-velocity lattice used by SunwayLB's production runs
    /// (rest + 6 axis + 12 edge diagonals; Fig. 3 of the paper).
    ///
    /// Weights: rest 1/3, axis 1/18, edge 1/36. In double precision this is
    /// `19 × 8 = 152` bytes of populations per cell and the paper's 380 B/LUP.
    D3Q19,
    d = 3,
    q = 19,
    c = [
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
        [-1, 1, 0],
        [1, 0, 1],
        [-1, 0, -1],
        [1, 0, -1],
        [-1, 0, 1],
        [0, 1, 1],
        [0, -1, -1],
        [0, 1, -1],
        [0, -1, 1],
    ],
    w = [
        1.0 / 3.0,
        1.0 / 18.0,
        1.0 / 18.0,
        1.0 / 18.0,
        1.0 / 18.0,
        1.0 / 18.0,
        1.0 / 18.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
        1.0 / 36.0,
    ]
);

declare_lattice!(
    /// The full 3-D twenty-seven-velocity lattice (rest + 6 axis + 12 edges +
    /// 8 corners).
    ///
    /// Most isotropic of the cubic family, ~42 % more memory traffic than D3Q19.
    /// Weights: rest 8/27, axis 2/27, edge 1/54, corner 1/216.
    D3Q27,
    d = 3,
    q = 27,
    c = [
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
        [-1, 1, 0],
        [1, 0, 1],
        [-1, 0, -1],
        [1, 0, -1],
        [-1, 0, 1],
        [0, 1, 1],
        [0, -1, -1],
        [0, 1, -1],
        [0, -1, 1],
        [1, 1, 1],
        [-1, -1, -1],
        [1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [-1, 1, -1],
        [1, -1, -1],
        [-1, 1, 1],
    ],
    w = [
        8.0 / 27.0,
        2.0 / 27.0,
        2.0 / 27.0,
        2.0 / 27.0,
        2.0 / 27.0,
        2.0 / 27.0,
        2.0 / 27.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 54.0,
        1.0 / 216.0,
        1.0 / 216.0,
        1.0 / 216.0,
        1.0 / 216.0,
        1.0 / 216.0,
        1.0 / 216.0,
        1.0 / 216.0,
        1.0 / 216.0,
    ]
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CS2;

    fn check_quadrature<L: Lattice>() {
        // Zeroth moment: weights sum to one.
        let sum: Scalar = L::W.iter().sum();
        assert!((sum - 1.0).abs() < 1e-14, "{}: Σw = {sum}", L::NAME);

        // First moment: Σ w c = 0.
        for a in 0..3 {
            let m: Scalar = (0..L::Q).map(|q| L::W[q] * L::C[q][a] as Scalar).sum();
            assert!(m.abs() < 1e-14, "{}: Σ w c_{a} = {m}", L::NAME);
        }

        // Second moment: Σ w c_a c_b = cs² δ_ab (restricted to active dims).
        for a in 0..L::D {
            for b in 0..L::D {
                let m: Scalar = (0..L::Q)
                    .map(|q| L::W[q] * (L::C[q][a] * L::C[q][b]) as Scalar)
                    .sum();
                let expect = if a == b { CS2 } else { 0.0 };
                assert!(
                    (m - expect).abs() < 1e-14,
                    "{}: Σ w c_{a} c_{b} = {m}, expected {expect}",
                    L::NAME
                );
            }
        }

        // Third moment vanishes by symmetry: Σ w c_a c_b c_c = 0.
        for a in 0..L::D {
            for b in 0..L::D {
                for c in 0..L::D {
                    let m: Scalar = (0..L::Q)
                        .map(|q| L::W[q] * (L::C[q][a] * L::C[q][b] * L::C[q][c]) as Scalar)
                        .sum();
                    assert!(m.abs() < 1e-14, "{}: odd third moment {m}", L::NAME);
                }
            }
        }
    }

    fn check_opposites<L: Lattice>() {
        for q in 0..L::Q {
            let o = L::OPP[q];
            for a in 0..3 {
                assert_eq!(L::C[o][a], -L::C[q][a], "{}: opp({q}) = {o}", L::NAME);
            }
            // The permutation is an involution.
            assert_eq!(L::OPP[o], q);
        }
    }

    fn check_unique_velocities<L: Lattice>() {
        for p in 0..L::Q {
            for q in (p + 1)..L::Q {
                assert_ne!(L::C[p], L::C[q], "{}: duplicate velocity {p}/{q}", L::NAME);
            }
        }
    }

    #[test]
    fn d2q9_is_a_valid_lattice() {
        check_quadrature::<D2Q9>();
        check_opposites::<D2Q9>();
        check_unique_velocities::<D2Q9>();
        assert_eq!(D2Q9::Q, 9);
        assert_eq!(D2Q9::D, 2);
        // 2-D model must have no z motion at all.
        assert!(D2Q9::C.iter().all(|c| c[2] == 0));
    }

    #[test]
    fn d3q15_is_a_valid_lattice() {
        check_quadrature::<D3Q15>();
        check_opposites::<D3Q15>();
        check_unique_velocities::<D3Q15>();
        assert_eq!(D3Q15::Q, 15);
    }

    #[test]
    fn d3q19_is_a_valid_lattice() {
        check_quadrature::<D3Q19>();
        check_opposites::<D3Q19>();
        check_unique_velocities::<D3Q19>();
        assert_eq!(D3Q19::Q, 19);
        // D3Q19 has no corner velocities (|c|² ≤ 2).
        assert!(D3Q19::C
            .iter()
            .all(|c| c[0] * c[0] + c[1] * c[1] + c[2] * c[2] <= 2));
    }

    #[test]
    fn d3q27_is_a_valid_lattice() {
        check_quadrature::<D3Q27>();
        check_opposites::<D3Q27>();
        check_unique_velocities::<D3Q27>();
        assert_eq!(D3Q27::Q, 27);
    }

    #[test]
    fn rest_velocity_is_direction_zero() {
        assert_eq!(D2Q9::C[0], [0, 0, 0]);
        assert_eq!(D3Q15::C[0], [0, 0, 0]);
        assert_eq!(D3Q19::C[0], [0, 0, 0]);
        assert_eq!(D3Q27::C[0], [0, 0, 0]);
        assert_eq!(D3Q19::OPP[0], 0);
    }

    #[test]
    fn bytes_per_lup_matches_paper_for_d3q19() {
        // §IV-C.3: "a total amount of 380 bytes ... to update one fluid cell".
        assert_eq!(D3Q19::bytes_per_lup(), 380);
    }

    #[test]
    fn bytes_per_lup_scales_with_q() {
        assert_eq!(D2Q9::bytes_per_lup(), 180);
        assert_eq!(D3Q15::bytes_per_lup(), 300);
        assert_eq!(D3Q27::bytes_per_lup(), 540);
    }
}
