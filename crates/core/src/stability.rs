//! Pre-flight stability and accuracy analysis.
//!
//! Production CFD frameworks vet a case before burning core-hours on it; at
//! the paper's scale (days on 10 M cores) a mis-parameterized run is an
//! expensive failure, which is why SunwayLB's pre-processing stage owns grid
//! initialization and parameter setup (§IV-B). This module encodes the
//! standard LBGK operating envelope:
//!
//! * `τ > 0.5` — positive viscosity (hard stability bound);
//! * `τ − 0.5` not too small — BGK develops spurious oscillations near the
//!   bound (MRT extends this margin, see [`crate::mrt`]);
//! * Mach number `Ma = |u|/c_s ≪ 1` — the equilibrium truncation makes LBM a
//!   weakly-compressible solver with `O(Ma²)` errors;
//! * grid Reynolds number `Re_cell = |u|/ν` small enough that sub-cell
//!   gradients stay resolvable.

use crate::collision::BgkParams;
use crate::Scalar;

/// Severity of a pre-flight finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: within the comfortable envelope.
    Ok,
    /// Likely to degrade accuracy; results need scrutiny.
    Warning,
    /// Likely to blow up or produce nonsense.
    Critical,
}

/// One pre-flight finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// What was found and what to do about it.
    pub message: String,
}

/// Pre-flight report for a case.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// Mach number of the characteristic velocity.
    pub mach: Scalar,
    /// Grid Reynolds number `|u| / ν`.
    pub grid_reynolds: Scalar,
    /// Distance of τ from the stability bound.
    pub tau_margin: Scalar,
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
}

impl StabilityReport {
    /// Worst severity across the findings.
    pub fn worst(&self) -> Severity {
        self.findings
            .iter()
            .map(|f| f.severity)
            .max()
            .unwrap_or(Severity::Ok)
    }

    /// Whether the case is safe to launch (no critical findings).
    pub fn is_launchable(&self) -> bool {
        self.worst() < Severity::Critical
    }
}

/// Analyze a case defined by its relaxation parameters and characteristic
/// lattice velocity.
pub fn analyze(params: BgkParams, u_char: Scalar) -> StabilityReport {
    let cs = (1.0f64 / 3.0).sqrt();
    let nu = params.viscosity();
    let mach = u_char.abs() / cs;
    let grid_reynolds = if nu > 0.0 { u_char.abs() / nu } else { Scalar::INFINITY };
    let tau_margin = params.tau - 0.5;

    let mut findings = Vec::new();
    if mach >= 0.5 {
        findings.push(Finding {
            severity: Severity::Critical,
            message: format!(
                "Mach number {mach:.2} approaches the sonic limit; reduce the lattice \
                 velocity (increase resolution or the physical time step)"
            ),
        });
    } else if mach > 0.17 {
        findings.push(Finding {
            severity: Severity::Warning,
            message: format!(
                "Mach number {mach:.2} > 0.17: compressibility errors ~O(Ma²) exceed 3%"
            ),
        });
    } else {
        findings.push(Finding {
            severity: Severity::Ok,
            message: format!("Mach number {mach:.3} is in the low-Mach regime"),
        });
    }

    if tau_margin < 0.005 {
        findings.push(Finding {
            severity: Severity::Critical,
            message: format!(
                "tau = {:.4} is within 0.005 of the stability bound; BGK will develop \
                 checkerboard oscillations — raise tau or switch to MRT",
                params.tau
            ),
        });
    } else if tau_margin < 0.02 {
        findings.push(Finding {
            severity: Severity::Warning,
            message: format!(
                "tau = {:.4} leaves a thin stability margin; consider MRT (crate::mrt) \
                 or a Smagorinsky closure for robustness",
                params.tau
            ),
        });
    } else {
        findings.push(Finding {
            severity: Severity::Ok,
            message: format!("tau = {:.4} has a comfortable stability margin", params.tau),
        });
    }

    if grid_reynolds > 100.0 {
        findings.push(Finding {
            severity: Severity::Warning,
            message: format!(
                "grid Reynolds number {grid_reynolds:.0} > 100: sub-cell gradients are \
                 unresolved; add cells or an LES closure"
            ),
        });
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    StabilityReport {
        mach,
        grid_reynolds,
        tau_margin,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comfortable_case_is_launchable() {
        let r = analyze(BgkParams::from_tau(0.8), 0.05);
        assert!(r.is_launchable());
        assert_eq!(r.worst(), Severity::Ok);
        assert!((r.mach - 0.05 / (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sonic_velocity_is_critical() {
        let r = analyze(BgkParams::from_tau(0.8), 0.5);
        assert!(!r.is_launchable());
        assert!(r.findings[0].message.contains("sonic"));
    }

    #[test]
    fn moderate_mach_is_a_warning() {
        let r = analyze(BgkParams::from_tau(0.8), 0.12);
        assert!(r.is_launchable());
        assert_eq!(r.worst(), Severity::Warning);
    }

    #[test]
    fn thin_tau_margin_warns_and_recommends_mrt() {
        let r = analyze(BgkParams::from_tau(0.51), 0.01);
        assert_eq!(r.worst(), Severity::Warning);
        assert!(r.findings[0].message.contains("MRT"));
        let r = analyze(BgkParams::from_tau(0.5001), 0.01);
        assert!(!r.is_launchable());
    }

    #[test]
    fn high_grid_reynolds_warns() {
        // u = 0.2 with tau barely above 0.5: nu tiny, Re_cell enormous.
        let r = analyze(BgkParams::from_tau(0.501), 0.2);
        assert!(r
            .findings
            .iter()
            .any(|f| f.message.contains("grid Reynolds")));
        assert!(r.grid_reynolds > 100.0);
    }

    #[test]
    fn findings_sorted_most_severe_first() {
        let r = analyze(BgkParams::from_tau(0.5001), 0.6);
        for pair in r.findings.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }
}
