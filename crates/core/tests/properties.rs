//! Property-based tests of the core invariants (proptest).
//!
//! These are the machine-checked versions of the claims the rest of the
//! workspace builds on: conservation laws of the collision operators,
//! permutation property of streaming, layout- and schedule-independence of the
//! fused kernel, and exactness of the parallel driver.

use proptest::prelude::*;
use swlb_core::collision::{
    collide_bgk, collide_smagorinsky, BgkParams, CollisionKind, SmagorinskyParams,
};
use swlb_core::equilibrium::{equilibrium, moments};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::kernels::{fused_step, fused_step_optimized, InteriorIndex};
use swlb_core::lattice::{Lattice, D2Q9, D3Q19};
use swlb_core::layout::{AosField, PopField, SoaField, StorageScheme};
use swlb_core::parallel::ThreadPool;
use swlb_core::prelude::NodeKind;
use swlb_core::solver::Solver;
use swlb_core::stream::{collide_step, propagate_step, split_step};
use swlb_core::Scalar;

/// Strategy: a physically plausible population vector (positive, O(w_q)).
fn pops<L: Lattice>() -> impl Strategy<Value = Vec<Scalar>> {
    prop::collection::vec(0.001f64..0.5, L::Q)
}

/// Strategy: small grid dims.
fn small_dims_3d() -> impl Strategy<Value = GridDims> {
    (2usize..6, 2usize..6, 2usize..6).prop_map(|(x, y, z)| GridDims::new(x, y, z))
}

/// Build a field from a flat vector of per-(cell, q) values.
fn field_from<L: Lattice, F: PopField<L>>(dims: GridDims, vals: &[Scalar]) -> F {
    let mut f = F::new(dims);
    for cell in 0..dims.cells() {
        for q in 0..L::Q {
            f.set(cell, q, vals[(cell * L::Q + q) % vals.len()] + 0.01);
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bgk_conserves_mass_momentum_d3q19(f in pops::<D3Q19>(), tau in 0.51f64..2.0) {
        let mut g = f.clone();
        collide_bgk::<D3Q19>(&mut g, 1.0 / tau);
        let (r0, j0) = moments::<D3Q19>(&f);
        let (r1, j1) = moments::<D3Q19>(&g);
        prop_assert!((r0 - r1).abs() < 1e-11 * r0.abs().max(1.0));
        for a in 0..3 {
            prop_assert!((j0[a] - j1[a]).abs() < 1e-11);
        }
    }

    #[test]
    fn bgk_conserves_mass_momentum_d2q9(f in pops::<D2Q9>(), tau in 0.51f64..2.0) {
        let mut g = f.clone();
        collide_bgk::<D2Q9>(&mut g, 1.0 / tau);
        let (r0, j0) = moments::<D2Q9>(&f);
        let (r1, j1) = moments::<D2Q9>(&g);
        prop_assert!((r0 - r1).abs() < 1e-11 * r0.abs().max(1.0));
        for a in 0..2 {
            prop_assert!((j0[a] - j1[a]).abs() < 1e-11);
        }
    }

    #[test]
    fn smagorinsky_conserves_mass_momentum(
        f in pops::<D3Q19>(),
        tau in 0.55f64..2.0,
        cs in 0.05f64..0.3,
    ) {
        let p = SmagorinskyParams::new(BgkParams::from_tau(tau), cs).unwrap();
        let mut g = f.clone();
        collide_smagorinsky::<D3Q19>(&mut g, &p);
        let (r0, j0) = moments::<D3Q19>(&f);
        let (r1, j1) = moments::<D3Q19>(&g);
        prop_assert!((r0 - r1).abs() < 1e-10 * r0.abs().max(1.0));
        for a in 0..3 {
            prop_assert!((j0[a] - j1[a]).abs() < 1e-10);
        }
    }

    #[test]
    fn equilibrium_moments_roundtrip(
        rho in 0.5f64..2.0,
        ux in -0.15f64..0.15,
        uy in -0.15f64..0.15,
        uz in -0.15f64..0.15,
    ) {
        let mut feq = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(rho, [ux, uy, uz], &mut feq);
        let (r, j) = moments::<D3Q19>(&feq);
        prop_assert!((r - rho).abs() < 1e-12);
        prop_assert!((j[0] - rho * ux).abs() < 1e-12);
        prop_assert!((j[1] - rho * uy).abs() < 1e-12);
        prop_assert!((j[2] - rho * uz).abs() < 1e-12);
    }

    #[test]
    fn streaming_is_a_permutation_per_direction(
        dims in small_dims_3d(),
        vals in prop::collection::vec(0.0f64..1.0, 64),
    ) {
        let flags = FlagField::new(dims);
        let src: SoaField<D3Q19> = field_from(dims, &vals);
        let mut dst = SoaField::<D3Q19>::new(dims);
        propagate_step(&flags, &src, &mut dst);
        for q in 0..D3Q19::Q {
            let mut a: Vec<Scalar> = (0..dims.cells()).map(|c| src.get(c, q)).collect();
            let mut b: Vec<Scalar> = (0..dims.cells()).map(|c| dst.get(c, q)).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn fused_equals_split_with_random_obstacles(
        dims in small_dims_3d(),
        vals in prop::collection::vec(0.0f64..1.0, 64),
        obstacle_bits in prop::collection::vec(prop::bool::weighted(0.2), 216),
        tau in 0.55f64..1.6,
    ) {
        let mut flags = FlagField::new(dims);
        // Scatter obstacles (never fully solid: keep cell 0 fluid).
        for c in 1..dims.cells() {
            if obstacle_bits[c % obstacle_bits.len()] {
                let [x, y, z] = dims.coords(c);
                flags.set(x, y, z, NodeKind::Wall);
            }
        }
        let src: SoaField<D3Q19> = field_from(dims, &vals);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(tau));
        let mut a = SoaField::<D3Q19>::new(dims);
        let mut b = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut a, &coll);
        split_step(&flags, &src, &mut b, &coll);
        for c in 0..dims.cells() {
            for q in 0..D3Q19::Q {
                prop_assert!((a.get(c, q) - b.get(c, q)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn soa_equals_aos(
        dims in small_dims_3d(),
        vals in prop::collection::vec(0.0f64..1.0, 64),
        tau in 0.55f64..1.6,
    ) {
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        let soa: SoaField<D3Q19> = field_from(dims, &vals);
        let aos: AosField<D3Q19> = field_from(dims, &vals);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(tau));
        let mut da = SoaField::<D3Q19>::new(dims);
        let mut db = AosField::<D3Q19>::new(dims);
        fused_step(&flags, &soa, &mut da, &coll);
        fused_step(&flags, &aos, &mut db, &coll);
        for c in 0..dims.cells() {
            for q in 0..D3Q19::Q {
                prop_assert_eq!(da.get(c, q), db.get(c, q));
            }
        }
    }

    #[test]
    fn parallel_equals_serial_for_any_thread_count(
        dims in small_dims_3d(),
        vals in prop::collection::vec(0.0f64..1.0, 64),
        threads in 1usize..9,
        tau in 0.55f64..1.6,
    ) {
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        let src: SoaField<D3Q19> = field_from(dims, &vals);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(tau));
        let mut serial = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut serial, &coll);
        let mut par = SoaField::<D3Q19>::new(dims);
        ThreadPool::new(threads).fused_step(&flags, &src, &mut par, &coll, None);
        for c in 0..dims.cells() {
            for q in 0..D3Q19::Q {
                prop_assert_eq!(serial.get(c, q), par.get(c, q));
            }
        }
    }

    #[test]
    fn optimized_equals_generic_on_random_geometry(
        vals in prop::collection::vec(0.0f64..1.0, 64),
        obstacle_bits in prop::collection::vec(prop::bool::weighted(0.15), 125),
        tau in 0.55f64..1.6,
        tile_z in 0usize..5,
        threads in 1usize..5,
    ) {
        let dims = GridDims::new(6, 6, 6);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        for c in 0..dims.cells() {
            let [x, y, z] = dims.coords(c);
            if !dims.on_boundary(x, y, z) && obstacle_bits[c % obstacle_bits.len()] {
                flags.set(x, y, z, NodeKind::Wall);
            }
        }
        let src: SoaField<D3Q19> = field_from(dims, &vals);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(tau));
        let interior = InteriorIndex::build::<D3Q19>(&flags);

        let mut reference = SoaField::<D3Q19>::new(dims);
        fused_step(&flags, &src, &mut reference, &coll);

        // The collision kind is threaded through (no ω→τ→ω round-trip), so
        // serial optimized dispatch is bit-exact against the reference on
        // scalar-semantics lanes; under auto-selected AVX2 the fused
        // multiply-adds differ from the reference by rounding only.
        let tol = swlb_core::simd::dispatch_tolerance();
        let mut optimized = SoaField::<D3Q19>::new(dims);
        fused_step_optimized(&flags, &src, &mut optimized, &coll, &interior, 0..dims.ny, tile_z);
        for c in 0..dims.cells() {
            for q in 0..D3Q19::Q {
                let (r, o) = (reference.get(c, q), optimized.get(c, q));
                prop_assert!((r - o).abs() <= tol, "cell {} q {}: {} vs {}", c, q, r, o);
            }
        }

        // ...and so does the pooled + z-blocked dispatch, for any thread count.
        let mut pooled = SoaField::<D3Q19>::new(dims);
        ThreadPool::new(threads)
            .with_tile_z(tile_z)
            .fused_step(&flags, &src, &mut pooled, &coll, Some(&interior));
        for c in 0..dims.cells() {
            for q in 0..D3Q19::Q {
                let (r, p) = (reference.get(c, q), pooled.get(c, q));
                prop_assert!((r - p).abs() <= tol, "cell {} q {}: {} vs {}", c, q, r, p);
            }
        }
    }

    #[test]
    fn vector_dispatch_conserves_mass_and_momentum(
        vals in prop::collection::vec(0.0f64..1.0, 64),
        tau in 0.55f64..1.6,
    ) {
        // Periodic box, no walls: one fused step is a permutation (streaming)
        // composed with a per-cell conservative collision, so total mass and
        // momentum are invariant. The interior cells take whatever lane path
        // the host auto-selects (AVX2, portable, or mask-scalar under
        // SWLB_NO_SIMD=1), so this pins conservation on the vector kernel.
        let dims = GridDims::new(7, 6, 9);
        let flags = FlagField::new(dims);
        let src: SoaField<D3Q19> = field_from(dims, &vals);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(tau));
        let interior = InteriorIndex::build::<D3Q19>(&flags);
        let mut dst = SoaField::<D3Q19>::new(dims);
        fused_step_optimized(&flags, &src, &mut dst, &coll, &interior, 0..dims.ny, 0);
        let sums = |f: &SoaField<D3Q19>| {
            let mut m = 0.0;
            let mut j = [0.0; 3];
            for c in 0..dims.cells() {
                for q in 0..D3Q19::Q {
                    let v = f.get(c, q);
                    m += v;
                    for (a, ja) in j.iter_mut().enumerate() {
                        *ja += v * D3Q19::C[q][a] as Scalar;
                    }
                }
            }
            (m, j)
        };
        let (m0, j0) = sums(&src);
        let (m1, j1) = sums(&dst);
        prop_assert!((m0 - m1).abs() <= 1e-10 * m0.max(1.0), "mass {} -> {}", m0, m1);
        for a in 0..3 {
            prop_assert!(
                (j0[a] - j1[a]).abs() <= 1e-10 * (1.0 + j0[a].abs()),
                "momentum[{}] {} -> {}", a, j0[a], j1[a]
            );
        }
    }

    #[test]
    fn temporal_blocking_conserves_mass_and_momentum(
        dims in (3usize..7, 3usize..7, 3usize..7).prop_map(|(x, y, z)| GridDims::new(x, y, z)),
        tau in 0.55f64..1.6,
        k in 1usize..5,
        seed in 0.0f64..1.0,
    ) {
        // Fully periodic box: every step is a permutation (streaming) composed
        // with a per-cell conservative collision, so a depth-k blocked sweep
        // must preserve global mass and momentum exactly like per-step
        // execution — whatever the wavefront schedule does to the tile order.
        let sums = |f: &SoaField<D3Q19>| {
            let mut m = 0.0;
            let mut j = [0.0; 3];
            for c in 0..dims.cells() {
                for q in 0..D3Q19::Q {
                    let v = f.get(c, q);
                    m += v;
                    for (a, ja) in j.iter_mut().enumerate() {
                        *ja += v * D3Q19::C[q][a] as Scalar;
                    }
                }
            }
            (m, j)
        };
        for scheme in [StorageScheme::Ab, StorageScheme::Aa] {
            // AA blocks must end on a completed odd/even pair.
            let k = if scheme == StorageScheme::Aa { k + k % 2 } else { k };
            let mut s = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(tau))
                .storage(scheme)
                .time_block(k)
                .try_build()
                .unwrap();
            s.initialize_field(|x, y, z| {
                let v = 0.02 * (((x * 5 + y * 3 + z) % 7) as Scalar + seed);
                (1.0 + v, [0.05 * v, -0.03 * v, 0.02 * v])
            });
            let (m0, j0) = sums(s.canonical_populations().as_ref());
            s.run(2 * k as u64);
            let (m1, j1) = sums(s.canonical_populations().as_ref());
            prop_assert!(
                (m0 - m1).abs() <= 1e-10 * m0.max(1.0),
                "{:?} k={}: mass {} -> {}", scheme, k, m0, m1
            );
            for a in 0..3 {
                prop_assert!(
                    (j0[a] - j1[a]).abs() <= 1e-10 * (1.0 + j0[a].abs()),
                    "{:?} k={}: momentum[{}] {} -> {}", scheme, k, a, j0[a], j1[a]
                );
            }
        }
    }

    #[test]
    fn collide_step_is_idempotent_at_tau_one(
        dims in small_dims_3d(),
        vals in prop::collection::vec(0.0f64..1.0, 64),
    ) {
        // ω = 1 projects onto equilibrium; a second collision is then a no-op.
        let flags = FlagField::new(dims);
        let mut f: SoaField<D3Q19> = field_from(dims, &vals);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(1.0));
        collide_step(&flags, &mut f, &coll);
        let once = f.clone();
        collide_step(&flags, &mut f, &coll);
        for c in 0..dims.cells() {
            for q in 0..D3Q19::Q {
                prop_assert!((once.get(c, q) - f.get(c, q)).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn grid_idx_coords_roundtrip(
        nx in 1usize..20, ny in 1usize..20, nz in 1usize..20,
    ) {
        let d = GridDims::new(nx, ny, nz);
        // Sample a handful of linear indices.
        for i in [0, d.cells() / 3, d.cells() / 2, d.cells() - 1] {
            let [x, y, z] = d.coords(i);
            prop_assert_eq!(d.idx(x, y, z), i);
        }
    }
}
