//! Distributed group I/O: aggregate per-rank output at group leaders.
//!
//! The communication half of the paper's group-I/O mode (§IV-B): ranks are
//! organized in contiguous groups, members ship their output chunk to the
//! group leader, and each leader assembles one [`GroupFile`] container —
//! turning `P` file writes into `P / group_size`.

use swlb_comm::{CommError, Communicator};
use swlb_io::{GroupFile, IoGroups};

/// Reserved user tag for group-I/O traffic (stays well below the
/// communicator's reserved range).
const GROUP_IO_TAG: u64 = 900;

/// Aggregate `chunk` across this rank's I/O group.
///
/// Leaders return `Some(GroupFile)` holding every member's chunk (including
/// their own), ready to be written to disk; members return `None` after
/// shipping their chunk to the leader.
pub fn aggregate_group<C: Communicator>(
    comm: &C,
    groups: IoGroups,
    chunk: &[u8],
) -> Result<Option<GroupFile>, CommError> {
    let rank = comm.rank();
    // Chunks travel as f64 payloads over the communicator; pack bytes 1:1.
    // (Lossless: every u8 value is exactly representable.)
    let payload: Vec<f64> = chunk.iter().map(|&b| b as f64).collect();
    if groups.is_leader(rank) {
        let mut file = GroupFile::new();
        file.insert(rank as u32, chunk.to_vec());
        for member in groups.members_of(rank, comm.size()) {
            if member == rank {
                continue;
            }
            let data = comm.recv(member, GROUP_IO_TAG)?;
            file.insert(member as u32, data.iter().map(|&v| v as u8).collect());
        }
        Ok(Some(file))
    } else {
        comm.send(groups.leader_of(rank), GROUP_IO_TAG, payload)?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swlb_comm::World;

    #[test]
    fn leaders_collect_their_whole_group() {
        let groups = IoGroups::new(3);
        let out = World::new(8).run(|comm| {
            let chunk = vec![comm.rank() as u8; comm.rank() + 1];
            aggregate_group(&comm, groups, &chunk).unwrap()
        });
        // Groups: {0,1,2} led by 0, {3,4,5} led by 3, {6,7} led by 6.
        for (rank, result) in out.iter().enumerate() {
            if groups.is_leader(rank) {
                let file = result.as_ref().expect("leader has a file");
                let members = groups.members_of(rank, 8);
                assert_eq!(file.len(), members.len());
                for m in members {
                    let c = file.chunk(m as u32).expect("member chunk present");
                    assert_eq!(c, vec![m as u8; m + 1].as_slice());
                }
            } else {
                assert!(result.is_none(), "member {rank} should not hold a file");
            }
        }
    }

    #[test]
    fn group_size_one_means_every_rank_writes_itself() {
        let groups = IoGroups::new(1);
        let out = World::new(4).run(|comm| {
            aggregate_group(&comm, groups, &[comm.rank() as u8]).unwrap()
        });
        for (rank, result) in out.iter().enumerate() {
            let file = result.as_ref().unwrap();
            assert_eq!(file.len(), 1);
            assert_eq!(file.chunk(rank as u32).unwrap(), &[rank as u8]);
        }
    }

    #[test]
    fn aggregated_file_roundtrips_through_the_container_format() {
        let groups = IoGroups::new(4);
        let out = World::new(4).run(|comm| {
            let chunk: Vec<u8> = (0..50).map(|i| (i * (comm.rank() + 1)) as u8).collect();
            aggregate_group(&comm, groups, &chunk).unwrap()
        });
        let file = out[0].as_ref().unwrap();
        let mut buf = Vec::new();
        file.write(&mut buf).unwrap();
        let back = GroupFile::read(&mut buf.as_slice()).unwrap();
        assert_eq!(&back, file);
    }
}
