//! Checkpoint-rollback recovery for distributed runs.
//!
//! [`run_with_recovery`] drives a [`DistributedSolver`] to a target step count
//! while surviving transient faults: dropped, delayed, duplicated or corrupted
//! halo messages and numerical divergence (NaN/Inf or global-mass drift). The
//! protocol per step:
//!
//! 1. attempt the step (the engine's halo retry heals delays in place);
//! 2. every rank contributes `[fail_flag, local_mass]` to one status
//!    allreduce. The reduced pair is simultaneously the *failure agreement*
//!    (any rank's failure makes the sum positive) and the *divergence guard*
//!    (a NaN or Inf anywhere poisons the mass sum; drift beyond tolerance is
//!    visible in the reduced value). Because every rank sees the same reduced
//!    values, every rank reaches the same verdict — no extra voting round.
//! 3. on a clean verdict, periodically checkpoint (gather → atomic write on
//!    rank 0 via [`CheckpointStore`]);
//! 4. on a failed verdict, roll back: rank 0 loads the newest *valid*
//!    checkpoint (skipping corrupt files), broadcasts its step, every rank
//!    bumps the halo epoch (so pre-rollback frames in flight are discarded as
//!    stale) and re-scatters the state, then the run resumes.
//!
//! Restarts are capped by [`RecoveryPolicy::max_restarts`]; exhaustion returns
//! the typed [`SwlbError::RestartsExhausted`] instead of looping. Rank death is
//! not recoverable by rollback: the dead rank's operations return
//! [`SwlbError::Disconnected`] immediately, and the survivors' status
//! reduction times out (the run sets a communicator-wide op deadline), so
//! every rank fails fast with a typed error instead of hanging — the paper's
//! month-long-run requirement (§IV-B) is "never wedge a 160,000-core job".
//!
//! No step of this protocol uses a barrier: barriers cannot time out, and a
//! dead rank would wedge every survivor in one.
//!
//! All fallible entry points return the workspace-wide [`SwlbError`] (see
//! `swlb-obs`), so callers mix checkpoint, communication and numerical
//! failures under one `?`. If the solver carries an enabled
//! [`Recorder`](swlb_obs::Recorder), the recovery loop reports
//! `recovery.rollbacks` / `recovery.wasted_steps` counters and times the
//! `checkpoint` / `rollback` phases.

use crate::engine::{chunked_from_legacy, DistributedSolver};
use std::time::Duration;
use swlb_comm::{CommError, Communicator};
use swlb_core::lattice::Lattice;
use swlb_io::checkpoint::CheckpointStore;
use swlb_io::{AnyCheckpoint, ChunkedCheckpoint};
use swlb_obs::{Phase, SwlbError};

/// When to checkpoint, how often to retry, how long to wait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Checkpoint every this many completed steps (≥ 1). A checkpoint is also
    /// written at entry so a rollback target always exists.
    pub checkpoint_every: u64,
    /// Rollback-restarts allowed before giving up. `0` = fail fast on the
    /// first fault.
    pub max_restarts: u32,
    /// Base pause before a restart; doubled per consecutive restart, capped at
    /// 8× (gives in-flight stragglers time to drain before the replay).
    pub backoff: Duration,
    /// Relative global-mass drift (vs. the mass at entry) treated as
    /// divergence. `INFINITY` disables the drift guard (inflow/outflow cases
    /// legitimately change mass); NaN/Inf detection is always active.
    pub mass_drift_tol: f64,
    /// Deadline for the status reduction and rollback collectives. Must
    /// comfortably exceed one step's compute plus the halo retry budget;
    /// expiry means a peer is dead or wedged and the run fails fast.
    pub status_timeout: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: 50,
            max_restarts: 3,
            backoff: Duration::from_millis(10),
            mass_drift_tol: f64::INFINITY,
            status_timeout: Duration::from_secs(60),
        }
    }
}

impl RecoveryPolicy {
    fn backoff_for(&self, restart: u32) -> Duration {
        let mult = 1u32
            .checked_shl(restart.saturating_sub(1))
            .unwrap_or(u32::MAX)
            .min(8);
        self.backoff.saturating_mul(mult)
    }
}

/// What a recovered run went through to finish.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Completed steps at exit (the target, on success).
    pub steps_completed: u64,
    /// Rollback-restarts performed.
    pub restarts: u32,
    /// Steps recomputed because of rollbacks.
    pub wasted_steps: u64,
    /// Checkpoints written by this rank (only rank 0 writes).
    pub checkpoints_written: u64,
    /// Human-readable description of each fault that forced a rollback.
    pub faults_recovered: Vec<String>,
    /// Global mass at exit.
    pub final_mass: f64,
}

/// Capture the global state as a rank-count-independent [`ChunkedCheckpoint`]
/// (collective; `Some` on rank 0). Chunks stay per-source-rank with global
/// coordinates, so the file this produces can be rolled back into a world of
/// any size — including after the scheduler re-shards a preempted job.
fn capture<L: Lattice, C: Communicator>(
    solver: &DistributedSolver<'_, L, C>,
) -> Result<Option<ChunkedCheckpoint>, CommError> {
    solver.capture_chunked()
}

/// Roll every rank back to the newest valid checkpoint (collective). Accepts
/// both generations: a legacy (v1/v2) whole-domain file is wrapped as a
/// single chunk, then both restore through the re-sharding
/// [`DistributedSolver::restore_chunked`] path — so a rollback works even
/// when the checkpoint was written under a different rank count.
fn rollback<L: Lattice, C: Communicator>(
    solver: &mut DistributedSolver<'_, L, C>,
    store: &CheckpointStore,
) -> Result<u64, SwlbError> {
    let ck = if solver.rank() == 0 {
        let (ck, skipped) = store
            .load_latest_valid_any()?
            .ok_or(SwlbError::NoValidCheckpoint)?;
        for path in skipped {
            eprintln!("[recovery] skipping corrupt checkpoint {}", path.display());
        }
        Some(match ck {
            AnyCheckpoint::Chunked(ck) => ck,
            AnyCheckpoint::Legacy(ck) => chunked_from_legacy::<L>(&ck)?,
        })
    } else {
        None
    };
    // New halo epoch first: frames sent before the rollback must read as stale.
    solver.bump_epoch();
    // Every rank learns the rollback step inside the restore's broadcast; a
    // dead rank 0 makes this time out (op deadline is set), never hang.
    solver.restore_chunked(ck.as_ref())?;
    Ok(solver.step_count())
}

/// Drive `solver` to `total_steps` completed steps under `policy`, writing
/// checkpoints into `store` and rolling back on faults. Collective: every rank
/// calls it with the same arguments (each rank may point `store` at its own
/// directory; only rank 0 writes).
pub fn run_with_recovery<L: Lattice, C: Communicator>(
    solver: &mut DistributedSolver<'_, L, C>,
    total_steps: u64,
    policy: &RecoveryPolicy,
    store: &CheckpointStore,
) -> Result<RecoveryReport, SwlbError> {
    run_with_recovery_instrumented(solver, total_steps, policy, store, |_| {})
}

/// [`run_with_recovery`] with a per-step instrumentation hook, called after
/// every locally successful step *before* the health check. Production code
/// passes a no-op; fault-injection tests use it to poison state (e.g. write a
/// NaN) at a chosen step and watch the guard catch it.
pub fn run_with_recovery_instrumented<L: Lattice, C: Communicator>(
    solver: &mut DistributedSolver<'_, L, C>,
    total_steps: u64,
    policy: &RecoveryPolicy,
    store: &CheckpointStore,
    mut on_step: impl FnMut(&mut DistributedSolver<'_, L, C>),
) -> Result<RecoveryReport, SwlbError> {
    assert!(
        policy.checkpoint_every >= 1,
        "checkpoint_every must be at least 1"
    );
    let comm = solver.comm();
    let prev_timeout = comm.op_timeout();
    comm.set_op_timeout(Some(policy.status_timeout));
    let result = run_inner(solver, total_steps, policy, store, &mut on_step);
    solver.comm().set_op_timeout(prev_timeout);
    result
}

fn run_inner<L: Lattice, C: Communicator>(
    solver: &mut DistributedSolver<'_, L, C>,
    total_steps: u64,
    policy: &RecoveryPolicy,
    store: &CheckpointStore,
    on_step: &mut impl FnMut(&mut DistributedSolver<'_, L, C>),
) -> Result<RecoveryReport, SwlbError> {
    let mut report = RecoveryReport::default();
    let recorder = solver.recorder().clone();
    let obs_rollbacks = recorder.counter("recovery.rollbacks");
    let obs_wasted = recorder.counter("recovery.wasted_steps");

    // Reference mass for the drift guard, agreed once at entry.
    let mass0 = solver.comm().allreduce_sum(&[solver.local_mass()])?[0];
    if !mass0.is_finite() {
        return Err(SwlbError::Diverged {
            step: solver.step_count(),
        });
    }

    // Entry checkpoint: a rollback target must exist before the first fault.
    save_checkpoint(solver, store, &mut report)?;

    let mut mass = mass0;
    while solver.step_count() < total_steps {
        let attempted = solver.step_count();
        let local_err: Option<SwlbError> = match solver.step() {
            Ok(()) => {
                on_step(solver);
                None
            }
            // A dead transport cannot reach the status reduction either;
            // fail fast instead of voting.
            Err(CommError::Disconnected) => return Err(CommError::Disconnected.into()),
            Err(e) => Some(e.into()),
        };

        // Status agreement + divergence guard in one reduction.
        let local_mass = if local_err.is_some() {
            0.0
        } else {
            solver.local_mass()
        };
        let fail_flag = if local_err.is_some() { 1.0 } else { 0.0 };
        let status = solver.comm().allreduce_sum(&[fail_flag, local_mass])?;
        let (fail_sum, mass_sum) = (status[0], status[1]);

        let diverged =
            !mass_sum.is_finite() || (mass_sum - mass0).abs() > policy.mass_drift_tol * mass0.abs();
        if fail_sum == 0.0 && !diverged {
            mass = mass_sum;
            // Under temporal blocking, checkpoints land on block boundaries
            // only. A mid-block capture is valid, but a restore resets the
            // intra-block phase — resuming from a mid-block step would shift
            // the exchange cadence against an uninterrupted run; boundary
            // checkpoints keep the recovered trajectory step-for-step
            // identical to the fault-free one.
            if solver.step_count().is_multiple_of(policy.checkpoint_every)
                && solver.block_phase() == 0
            {
                save_checkpoint(solver, store, &mut report)?;
            }
            continue;
        }

        // Unanimous verdict: something failed this step. Identify the fault
        // (for the report / the final error) and roll back.
        let fault: SwlbError = match local_err {
            Some(e) => e,
            None if diverged => SwlbError::Diverged { step: attempted },
            None => SwlbError::PeerFault { step: attempted },
        };
        if report.restarts >= policy.max_restarts {
            return Err(SwlbError::RestartsExhausted {
                restarts: report.restarts,
                last: Box::new(fault),
            });
        }
        report.restarts += 1;
        report
            .faults_recovered
            .push(format!("step {attempted}: {fault}"));
        std::thread::sleep(policy.backoff_for(report.restarts));
        // Every step completed past the checkpoint — including the one whose
        // result the verdict just discarded — is recomputed.
        let reached = solver.step_count();
        let resumed_at = {
            let _g = recorder.phase(Phase::Rollback);
            rollback(solver, store)?
        };
        obs_rollbacks.inc();
        report.wasted_steps += reached - resumed_at;
        obs_wasted.add(reached - resumed_at);
    }

    report.steps_completed = solver.step_count();
    report.final_mass = mass;
    Ok(report)
}

fn save_checkpoint<L: Lattice, C: Communicator>(
    solver: &DistributedSolver<'_, L, C>,
    store: &CheckpointStore,
    report: &mut RecoveryReport,
) -> Result<(), SwlbError> {
    let _g = solver.recorder().phase(Phase::Checkpoint);
    if let Some(ck) = capture(solver)? {
        store.save_chunked(&ck)?;
        report.checkpoints_written += 1;
        solver.recorder().counter("recovery.checkpoints").inc();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DistributedSolver, ExchangeMode, HaloRetry};
    use swlb_comm::World;
    use swlb_core::collision::{BgkParams, CollisionKind};
    use swlb_core::flags::FlagField;
    use swlb_core::geometry::GridDims;
    use swlb_core::lattice::D2Q9;
    use swlb_core::layout::PopField;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("swlb-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir, 3).unwrap()
    }

    fn case() -> (GridDims, FlagField, CollisionKind) {
        let global = GridDims::new2d(12, 12);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        flags.paint_lid([0.05, 0.0, 0.0]);
        (global, flags, CollisionKind::Bgk(BgkParams::from_tau(0.8)))
    }

    #[test]
    fn fault_free_recovered_run_matches_plain_run() {
        let (global, flags, coll) = case();
        let flags_ref = &flags;
        let plain = World::new(4).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::OnTheFly)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.run(20).unwrap();
            s.gather_populations().unwrap()
        });
        let store = temp_store("clean");
        let store_ref = &store;
        let recovered = World::new(4).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::OnTheFly)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let policy = RecoveryPolicy {
                checkpoint_every: 5,
                ..Default::default()
            };
            let report = run_with_recovery(&mut s, 20, &policy, store_ref).unwrap();
            assert_eq!(report.steps_completed, 20);
            assert_eq!(report.restarts, 0);
            assert_eq!(report.wasted_steps, 0);
            if comm.rank() == 0 {
                // Entry + steps 5, 10, 15, 20.
                assert_eq!(report.checkpoints_written, 5);
            }
            s.gather_populations().unwrap()
        });
        let (a, b) = (plain[0].as_ref().unwrap(), recovered[0].as_ref().unwrap());
        for cell in 0..global.cells() {
            for q in 0..9 {
                assert_eq!(a.get(cell, q), b.get(cell, q), "cell {cell} q {q}");
            }
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn injected_divergence_rolls_back_and_still_matches() {
        let (global, flags, coll) = case();
        let flags_ref = &flags;
        let plain = World::new(2).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.run(12).unwrap();
            s.gather_populations().unwrap()
        });
        let store = temp_store("nan");
        let store_ref = &store;
        let out = World::new(2).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .halo_retry(HaloRetry::snappy())
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let policy = RecoveryPolicy {
                checkpoint_every: 4,
                status_timeout: Duration::from_secs(10),
                ..Default::default()
            };
            // Poison one population on rank 1 after step 7 completes — once.
            let mut injected = false;
            let report = run_with_recovery_instrumented(&mut s, 12, &policy, store_ref, |s| {
                if !injected && s.rank() == 1 && s.step_count() == 7 {
                    injected = true;
                    let dims = s.local_flags().dims();
                    let cell = dims.idx(2, 2, 0);
                    s.local_populations_mut().set(cell, 0, f64::NAN);
                }
            })
            .unwrap();
            assert_eq!(report.steps_completed, 12);
            assert_eq!(report.restarts, 1, "exactly one rollback expected");
            // Rolled back from the failed step-7 attempt to the step-4 ckpt.
            assert_eq!(report.wasted_steps, 3);
            assert!(
                report.faults_recovered[0].contains("diverged"),
                "fault description: {:?}",
                report.faults_recovered
            );
            s.gather_populations().unwrap()
        });
        let (a, b) = (plain[0].as_ref().unwrap(), out[0].as_ref().unwrap());
        for cell in 0..global.cells() {
            for q in 0..9 {
                assert_eq!(a.get(cell, q), b.get(cell, q), "cell {cell} q {q}");
            }
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn aa_storage_rollback_from_mid_parity_checkpoint_matches_plain_run() {
        // checkpoint_every = 5 captures at Streamed parity; the rollback
        // restores the canonical payload on the odd flavor — which must be
        // exactly the same trajectory (canonical restart equivalence).
        let (global, flags, coll) = case();
        let flags_ref = &flags;
        let plain = World::new(2).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .storage(swlb_core::layout::StorageScheme::Aa)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.run(12).unwrap();
            s.gather_populations().unwrap()
        });
        let store = temp_store("aa-nan");
        let store_ref = &store;
        let out = World::new(2).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .storage(swlb_core::layout::StorageScheme::Aa)
                .halo_retry(HaloRetry::snappy())
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let policy = RecoveryPolicy {
                checkpoint_every: 5,
                status_timeout: Duration::from_secs(10),
                ..Default::default()
            };
            let mut injected = false;
            let report = run_with_recovery_instrumented(&mut s, 12, &policy, store_ref, |s| {
                if !injected && s.rank() == 1 && s.step_count() == 7 {
                    injected = true;
                    let dims = s.local_flags().dims();
                    let cell = dims.idx(2, 2, 0);
                    s.local_populations_mut().set(cell, 0, f64::NAN);
                }
            })
            .unwrap();
            assert_eq!(report.steps_completed, 12);
            assert_eq!(report.restarts, 1, "exactly one rollback expected");
            // Rolled back from the failed step-7 attempt to the step-5 ckpt.
            assert_eq!(report.wasted_steps, 2);
            s.gather_populations().unwrap()
        });
        let (a, b) = (plain[0].as_ref().unwrap(), out[0].as_ref().unwrap());
        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        for cell in 0..global.cells() {
            if !flags.kind(cell).is_fluid() {
                continue;
            }
            for q in 0..9 {
                let (x, y) = (a.get(cell, q), b.get(cell, q));
                assert!((x - y).abs() < tol, "cell {cell} q {q}: {x} vs {y}");
            }
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn rollback_across_a_reshard_restores_a_4_rank_checkpoint_into_6_ranks() {
        // The elastic-resume contract at the resilience layer: a checkpoint
        // written by a 4-rank world must be a valid rollback target for a
        // 6-rank world (different `px × py`), and the resumed trajectory must
        // match the uninterrupted one.
        let (global, flags, coll) = case();
        let flags_ref = &flags;
        let store = temp_store("reshard");
        let store_ref = &store;

        let plain = World::new(1).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.run(12).unwrap();
            s.gather_populations().unwrap()
        });

        // A 4-rank world checkpoints at step 8.
        World::new(4).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::OnTheFly)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.run(8).unwrap();
            if let Some(ck) = s.capture_chunked().unwrap() {
                store_ref.save_chunked(&ck).unwrap();
            }
        });

        // A 6-rank world rolls back from that file and finishes the run.
        let out = World::new(6).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let step = rollback(&mut s, store_ref).unwrap();
            assert_eq!(step, 8);
            assert_eq!(s.step_count(), 8);
            s.run(4).unwrap();
            s.gather_populations().unwrap()
        });

        let (a, b) = (plain[0].as_ref().unwrap(), out[0].as_ref().unwrap());
        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        for cell in 0..global.cells() {
            for q in 0..9 {
                let (x, y) = (a.get(cell, q), b.get(cell, q));
                assert!((x - y).abs() < tol, "cell {cell} q {q}: {x} vs {y}");
            }
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn zero_restart_budget_fails_fast_with_typed_error() {
        let (global, flags, coll) = case();
        let flags_ref = &flags;
        let store = temp_store("budget");
        let store_ref = &store;
        let errs = World::new(2).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let policy = RecoveryPolicy {
                checkpoint_every: 4,
                max_restarts: 0,
                status_timeout: Duration::from_secs(10),
                ..Default::default()
            };
            let mut injected = false;
            let err = run_with_recovery_instrumented(&mut s, 12, &policy, store_ref, |s| {
                if !injected && s.rank() == 0 && s.step_count() == 3 {
                    injected = true;
                    let dims = s.local_flags().dims();
                    // (2, 2) is interior fluid on every rank (never a wall or
                    // halo cell), so the poison is visible to the mass guard.
                    let cell = dims.idx(2, 2, 0);
                    s.local_populations_mut().set(cell, 0, f64::INFINITY);
                }
            })
            .unwrap_err();
            matches!(err, SwlbError::RestartsExhausted { restarts: 0, .. })
        });
        assert!(
            errs.iter().all(|&ok| ok),
            "both ranks must fail fast with the typed error"
        );
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn recovery_counters_match_report() {
        let (global, flags, coll) = case();
        let flags_ref = &flags;
        let store = temp_store("obs");
        let store_ref = &store;
        let out = World::new(2).run(|comm| {
            let rec = swlb_obs::Recorder::enabled();
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .recorder(rec.clone())
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let policy = RecoveryPolicy {
                checkpoint_every: 4,
                status_timeout: Duration::from_secs(10),
                ..Default::default()
            };
            let mut injected = false;
            let report = run_with_recovery_instrumented(&mut s, 10, &policy, store_ref, |s| {
                if !injected && s.rank() == 0 && s.step_count() == 6 {
                    injected = true;
                    let dims = s.local_flags().dims();
                    let cell = dims.idx(2, 2, 0);
                    s.local_populations_mut().set(cell, 0, f64::NAN);
                }
            })
            .unwrap();
            let snap = rec.snapshot(report.steps_completed).unwrap();
            (report, snap)
        });
        for (report, snap) in out {
            assert_eq!(
                snap.counter("recovery.rollbacks"),
                Some(report.restarts as u64)
            );
            assert_eq!(
                snap.counter("recovery.wasted_steps"),
                Some(report.wasted_steps)
            );
            assert_eq!(
                snap.counter("recovery.checkpoints").unwrap_or(0),
                report.checkpoints_written
            );
            assert!(
                report.restarts >= 1,
                "the injected NaN must force a rollback"
            );
        }
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}
