//! The distributed solver: halo exchange + fused kernel per rank.
//!
//! Each rank owns an `(lnx + 2) × (lny + 2) × nz` local grid — interior plus a
//! one-cell halo ring in x/y. Under the default A-B (double-buffer) storage a
//! time step is:
//!
//! 1. send the 8 boundary strips of the current state to the neighbors,
//! 2. (on-the-fly mode) compute the inner cells that need no halo,
//! 3. receive the 8 halo strips into the current state's ring,
//! 4. compute the remaining cells,
//! 5. flip the A-B buffers.
//!
//! Sends are buffered (never block) and receives match `(source, direction)`
//! tags, so the two schedules are both deadlock-free and *bit-identical* —
//! overlap changes only when work happens, not what is computed. This is the
//! property the paper relies on when pipelining the MPE (communication) against
//! the CPE cluster (inner-domain computation), Fig. 6(2)/Fig. 9(2).
//!
//! ## AA-pattern (single-grid) storage
//!
//! With [`StorageScheme::Aa`] each rank holds ONE grid and alternates two step
//! flavors (see `swlb_core::layout`):
//!
//! - **Odd steps** (parity `Reversed`) gather from the upwind neighborhood and
//!   scatter downwind — including *into the ghost ring*, whose cells stand in
//!   for the neighbor's boundary cells. The schedule is the AB pre-exchange
//!   (tags `0..8`, populating the ghosts so gathers see the neighbor's state)
//!   plus a **post-exchange** (tags `8..16`): each rank ships its ghost strips
//!   — now holding scatters that belong to the neighbor — back across, and
//!   the receiver merges exactly those slots `(cell, q)` whose *writer*
//!   `cell − c_q` lies in the sender's region. Slot ownership (each slot has a
//!   unique writer, which is also its unique reader) makes the merge
//!   predicates disjoint across the 8 senders, wraparound self-sends included.
//! - **Even steps** (parity `Streamed`) read and write only the cell's own
//!   slots and the mailbox slots of adjacent walls, all of which the rank's
//!   own odd step wrote locally: even steps need **no communication at all** —
//!   the AA scheme halves both the resident set and the halo traffic.
//!
//! ## Depth-k temporal blocking (deep halos)
//!
//! With `time_block(k)` (k > 1) each rank's ghost ring is `k` cells deep and
//! the halo exchange runs **once per k steps** instead of once per step. A
//! block starts with the deep exchange, then advances the grid `k` times,
//! shrinking the computed rectangle by one ghost layer per intra-block step:
//! step `s` (1-based) computes the owned block *expanded* by `e = k − s` ghost
//! layers. The expanded region redundantly recomputes ghost cells with exactly
//! the data the owning neighbor uses (the flags there sample the same global
//! field), so owned cells after every intra-block step are identical to a
//! per-step exchange — results stay bit-identical to `k = 1` on
//! scalar-semantics lanes and within the usual dispatch tolerance otherwise.
//! Validity accounting per scheme:
//!
//! - **AB** pulls from distance 1, so validity shrinks by one layer per step:
//!   step `s` may compute to depth `k − s` because depth `k − s + 1 ≤ k` was
//!   valid before it.
//! - **AA** alternates the odd (gather + scatter, shrinks validity by two
//!   layers) and even (cell-local, shrinks by zero) flavors; the same
//!   `e = k − s` schedule is exactly tight for even `k`, which is why the
//!   builder requires it. The odd-step scatters that `k = 1` returns with a
//!   post-exchange are instead *recomputed* by the neighbor inside its own
//!   ghost ring, so a blocked AA step needs the pre-exchange only.
//!
//! When a subdomain is shallower than the ring (`ln < k`) one exchange cannot
//! fill it, so the exchange repeats for `R = ceil(k / min_ln)` rounds (tags
//! `64 + 16·(round−1) + d` past round 0): each round forwards what the
//! previous round made valid, advancing the valid front by at least `min_ln`
//! layers per round. Checkpoint capture stays valid mid-block (owned cells are
//! always current); restore lands on a block *boundary* — it resets the
//! intra-block phase so the next step re-exchanges before anything reads the
//! (then stale) ghosts.

use crate::partition::Partition2d;
use std::ops::Range;
use std::time::Duration;
use swlb_comm::cart::NEIGHBOR_OFFSETS;
use swlb_comm::frame::{check_frame, seal_frame, FrameCheck, FRAME_HEADER};
use swlb_comm::{Comm, CommError, Communicator, Tag};
use swlb_core::collision::{collide, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::kernels::{
    apply_non_fluid, canonicalize_streamed, gather_pull, reverse_planes, InteriorIndex, MAX_Q,
};
use swlb_core::lattice::Lattice;
use swlb_core::layout::{AaParity, PopField, SoaField, Storage, StorageScheme};
use swlb_core::macroscopic::MacroFields;
use swlb_core::parallel::ThreadPool;
use swlb_core::simd::KernelClass;
use swlb_core::Scalar;
use swlb_io::ChunkedCheckpoint;
use swlb_obs::{exponential_buckets, Counter, Gauge, Histogram, Phase, Recorder, SwlbError};

/// Halo-exchange schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Exchange first, then compute everything (paper Fig. 6(1)).
    Sequential,
    /// Overlap communication with inner-domain computation (paper Fig. 6(2)).
    OnTheFly,
}

/// Index of the opposite direction in [`NEIGHBOR_OFFSETS`] order.
fn opposite_dir(d: usize) -> usize {
    // E↔W, N↔S, NE↔SW, SE↔NW.
    d ^ 1
}

/// Tag base of the AA odd-step post-exchange (ghost-scatter return traffic);
/// the pre-exchange uses tags `0..8` and the restart scatter uses `40`.
const AA_POST_TAG_BASE: u64 = 8;

/// Tag base of deep-halo exchange rounds past the first: round `r ≥ 1` in
/// direction `d` uses `ROUND_TAG_BASE + ROUND_TAG_STRIDE·(r−1) + d`, keeping
/// every round's 8 strips distinguishable from round 0 (`0..8`), the AA
/// post-exchange (`8..16`) and the restart tags (`40`, `41`).
const ROUND_TAG_BASE: u64 = 64;
const ROUND_TAG_STRIDE: u64 = 16;

/// The tag of halo direction `d` in exchange round `round`.
fn round_tag(round: usize, d: usize) -> u64 {
    if round == 0 {
        d as u64
    } else {
        ROUND_TAG_BASE + ROUND_TAG_STRIDE * (round as u64 - 1) + d as u64
    }
}

/// Retry/backoff policy for halo receives.
///
/// Each halo receive waits up to `timeout_for(attempt)` — the base timeout
/// doubled per attempt and capped — and is retried until `max_attempts`, at
/// which point the failure escalates as [`CommError::Timeout`] (message never
/// arrived) or [`CommError::Corrupt`] (every copy that arrived failed its
/// checksum). Retrying heals delayed and duplicated messages in place; dropped
/// or corrupted ones escalate to the recovery layer, which rolls back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloRetry {
    /// Deadline for the first attempt.
    pub base_timeout: Duration,
    /// Upper bound on any single attempt's deadline.
    pub max_backoff: Duration,
    /// Attempts before escalating (≥ 1).
    pub max_attempts: u32,
}

impl Default for HaloRetry {
    /// Patient defaults for production runs: ~30 s of total waiting before a
    /// halo failure escalates.
    fn default() -> Self {
        HaloRetry {
            base_timeout: Duration::from_secs(1),
            max_backoff: Duration::from_secs(8),
            max_attempts: 6,
        }
    }
}

impl HaloRetry {
    /// Tight deadlines for fault-injection tests (milliseconds, not seconds).
    pub fn snappy() -> Self {
        HaloRetry {
            base_timeout: Duration::from_millis(50),
            max_backoff: Duration::from_millis(400),
            max_attempts: 4,
        }
    }

    fn timeout_for(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_timeout
            .checked_mul(mult)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// One rank's share of a distributed LBM simulation.
///
/// Generic over the [`Communicator`] so the identical solver code runs on the
/// production transport ([`Comm`], the default) and under fault injection
/// ([`ChaosComm`](swlb_comm::ChaosComm)).
pub struct DistributedSolver<'c, L: Lattice, C: Communicator = Comm> {
    comm: &'c C,
    part: Partition2d,
    flags: FlagField,
    store: Storage<SoaField<L>>,
    collision: CollisionKind,
    mode: ExchangeMode,
    lnx: usize,
    lny: usize,
    /// Temporal-blocking depth: steps advanced per halo exchange.
    time_block: usize,
    /// Ghost-ring width (= `time_block`). The owned block is
    /// `halo..halo+lnx × halo..halo+lny` in local coordinates.
    halo: usize,
    /// Exchange rounds per deep-halo fill: 1 unless some subdomain is
    /// shallower than the ring (see the module docs).
    rounds: usize,
    /// Intra-block phase `0..time_block`; 0 means the next step starts a
    /// block (exchanges halos). Reset by initialize/restore so a resumed run
    /// never reads stale ghosts.
    phase: usize,
    /// Execution pipeline for the inner rectangle: the same pooled + z-blocked
    /// dispatch the shared-memory [`Solver`](swlb_core::solver::Solver) uses.
    pool: ThreadPool,
    /// Interior fast-path index of the local grid (per-cell mask + run-length
    /// runs, halo ring excluded), enabling the vectorized / hand-optimized
    /// D3Q19 kernels inside the pooled dispatch. Rebuilt lazily when the local
    /// flags change (see [`DistributedSolver::local_flags_mut`]).
    interior: InteriorIndex,
    /// Set by [`DistributedSolver::local_flags_mut`]; the next step rebuilds
    /// the interior index and the active-cell count before dispatch.
    interior_dirty: bool,
    /// Which kernel class served the most recent step's inner rectangle.
    last_class: KernelClass,
    /// Reusable halo frame buffers: once capacities stabilize, the
    /// steady-state step performs no heap allocation.
    send_buf: Vec<f64>,
    recv_buf: Vec<f64>,
    step: u64,
    /// Restart generation: bumped on rollback so in-flight pre-rollback halo
    /// frames are recognized as stale and discarded.
    epoch: u64,
    retry: HaloRetry,
    /// Interior fluid-cell count (MLUPS accounting for this rank).
    active: usize,
    recorder: Recorder,
    obs_mlups: Gauge,
    obs_steps: Counter,
    obs_retries: Counter,
    obs_timeouts: Counter,
    obs_corrupt: Counter,
    obs_halo_us: Histogram,
    obs_halo_msgs: Counter,
    obs_halo_bytes: Counter,
    obs_kernel_class: Gauge,
}

/// Interior (halo-ring-excluded) fluid-cell count of a local grid.
fn count_active(flags: &FlagField, lnx: usize, lny: usize, h: usize) -> usize {
    let local = flags.dims();
    let mut active = 0;
    for y in h..h + lny {
        for x in h..h + lnx {
            for z in 0..local.nz {
                if flags.kind(local.idx(x, y, z)).is_fluid() {
                    active += 1;
                }
            }
        }
    }
    active
}

/// The single construction path for [`DistributedSolver`]: communicator,
/// global problem and collision up front; exchange schedule, halo retry policy
/// and observability recorder optional.
///
/// The default exchange mode is [`ExchangeMode::OnTheFly`] — the
/// communication/computation overlap the paper's pipelined schedule uses
/// (Fig. 6(2)); pick [`ExchangeMode::Sequential`] explicitly for the
/// exchange-first baseline.
pub struct DistributedSolverBuilder<'c, 'f, L: Lattice, C: Communicator = Comm> {
    comm: &'c C,
    global: GridDims,
    global_flags: &'f FlagField,
    collision: CollisionKind,
    mode: ExchangeMode,
    storage: StorageScheme,
    retry: HaloRetry,
    recorder: Recorder,
    pool: Option<ThreadPool>,
    time_block: usize,
    _lattice: std::marker::PhantomData<L>,
}

impl<'c, 'f, L: Lattice, C: Communicator> DistributedSolverBuilder<'c, 'f, L, C> {
    /// Start a builder for this rank's share of the global problem.
    pub fn new(
        comm: &'c C,
        global: GridDims,
        global_flags: &'f FlagField,
        collision: CollisionKind,
    ) -> Self {
        DistributedSolverBuilder {
            comm,
            global,
            global_flags,
            collision,
            mode: ExchangeMode::OnTheFly,
            storage: StorageScheme::Ab,
            retry: HaloRetry::default(),
            recorder: Recorder::disabled(),
            pool: None,
            time_block: 1,
            _lattice: std::marker::PhantomData,
        }
    }

    /// Advance `k` steps per halo exchange with a `k`-deep ghost ring
    /// (default 1 — exchange every step). AA storage requires an even `k` so
    /// a block ends at the canonical `Reversed` parity.
    pub fn time_block(mut self, k: usize) -> Self {
        self.time_block = k;
        self
    }

    /// Run this rank's inner rectangle on the given thread pool (default: a
    /// single-threaded pool). This is the second level of the paper's two-level
    /// parallelism: ranks partition the domain, the pool's threads partition
    /// each rank's inner rectangle into y-slabs with z-tile blocking.
    pub fn pool(mut self, pool: ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Select the halo-exchange schedule (default [`ExchangeMode::OnTheFly`]).
    pub fn exchange(mut self, mode: ExchangeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Select the population storage scheme (default [`StorageScheme::Ab`]).
    /// [`StorageScheme::Aa`] halves each rank's resident set and makes every
    /// second step communication-free, but supports only
    /// Fluid/Wall/MovingWall flags — [`DistributedSolverBuilder::try_build`]
    /// rejects the combination with open/NEBB boundaries.
    pub fn storage(mut self, scheme: StorageScheme) -> Self {
        self.storage = scheme;
        self
    }

    /// Replace the halo retry/backoff policy (default [`HaloRetry::default`]).
    pub fn halo_retry(mut self, retry: HaloRetry) -> Self {
        assert!(
            retry.max_attempts >= 1,
            "halo retry needs at least one attempt"
        );
        self.retry = retry;
        self
    }

    /// Attach an observability recorder (default: disabled).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Build this rank's solver, panicking on an invalid configuration.
    pub fn build(self) -> DistributedSolver<'c, L, C> {
        self.try_build()
            .unwrap_or_else(|e| panic!("distributed solver build failed: {e}"))
    }

    /// Build this rank's solver, rejecting unsupported scheme/flag
    /// combinations with a typed error: AA-pattern storage has no streaming
    /// rule for open (inlet/outlet/NEBB) boundaries.
    pub fn try_build(self) -> Result<DistributedSolver<'c, L, C>, SwlbError> {
        if self.storage == StorageScheme::Aa {
            let c = self.global_flags.census();
            if c.inlet != 0 || c.outlet != 0 {
                return Err(SwlbError::InvalidConfig(format!(
                    "AA-pattern storage supports Fluid/Wall/MovingWall nodes only, but the \
                     flag field has {} inlet and {} outlet nodes; build with StorageScheme::Ab \
                     for open/NEBB boundaries",
                    c.inlet, c.outlet
                )));
            }
        }
        if self.time_block == 0 {
            return Err(SwlbError::InvalidConfig(
                "time_block must be >= 1 (1 disables temporal blocking)".into(),
            ));
        }
        if self.storage == StorageScheme::Aa && self.time_block > 1 && self.time_block % 2 == 1 {
            return Err(SwlbError::InvalidConfig(format!(
                "AA-pattern storage needs an even time_block so a block ends at the canonical \
                 Reversed parity; got {}",
                self.time_block
            )));
        }
        let comm = self.comm;
        let h = self.time_block;
        let part = Partition2d::new(self.global, comm.size());
        let ((_, lnx), (_, lny)) = part.owned(comm.rank());
        let flags = part.local_flags_h(comm.rank(), self.global_flags, h);
        let local = part.local_dims_h(comm.rank(), h);
        let active = count_active(&flags, lnx, lny, h);
        // Rounds needed to fill an h-deep ring when subdomains may be
        // shallower than h: each round advances the valid front by at least
        // the shallowest owned extent along that axis. Every rank must agree,
        // so the minima run over the whole layout, not this rank.
        let min_lnx = (0..part.cart.px)
            .map(|cx| swlb_comm::Cart2d::block_range(self.global.nx, part.cart.px, cx).1)
            .min()
            .expect("at least one column");
        let min_lny = (0..part.cart.py)
            .map(|cy| swlb_comm::Cart2d::block_range(self.global.ny, part.cart.py, cy).1)
            .min()
            .expect("at least one row");
        let rounds = h.div_ceil(min_lnx).max(h.div_ceil(min_lny)).max(1);
        let recorder = self.recorder;
        let interior = InteriorIndex::build::<L>(&flags);
        Ok(DistributedSolver {
            comm,
            part,
            flags,
            store: Storage::with_scheme(self.storage, || SoaField::new(local)),
            collision: self.collision,
            mode: self.mode,
            lnx,
            lny,
            time_block: self.time_block,
            halo: h,
            rounds,
            phase: 0,
            pool: self.pool.unwrap_or_else(|| ThreadPool::new(1)),
            interior,
            interior_dirty: false,
            last_class: KernelClass::Generic,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
            step: 0,
            epoch: 0,
            retry: self.retry,
            active,
            obs_mlups: recorder.gauge("mlups"),
            obs_steps: recorder.counter("steps"),
            obs_retries: recorder.counter("halo.retries"),
            obs_timeouts: recorder.counter("halo.timeouts"),
            obs_corrupt: recorder.counter("halo.corrupt"),
            obs_halo_us: recorder.histogram("halo.latency_us", &exponential_buckets(10.0, 4.0, 8)),
            obs_halo_msgs: recorder.counter("halo.messages"),
            obs_halo_bytes: recorder.counter("halo.bytes"),
            obs_kernel_class: recorder.gauge("kernel_class"),
            recorder,
        })
    }
}

impl<'c, L: Lattice, C: Communicator> DistributedSolver<'c, L, C> {
    /// Start a [`DistributedSolverBuilder`] — the single construction path.
    pub fn builder<'f>(
        comm: &'c C,
        global: GridDims,
        global_flags: &'f FlagField,
        collision: CollisionKind,
    ) -> DistributedSolverBuilder<'c, 'f, L, C> {
        DistributedSolverBuilder::new(comm, global, global_flags, collision)
    }

    /// The observability recorder this rank reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Replace the halo retry/backoff policy.
    pub fn set_halo_retry(&mut self, retry: HaloRetry) {
        assert!(
            retry.max_attempts >= 1,
            "halo retry needs at least one attempt"
        );
        self.retry = retry;
    }

    /// The active halo retry/backoff policy.
    pub fn halo_retry(&self) -> HaloRetry {
        self.retry
    }

    /// Current restart generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Enter the next restart generation. Called by the recovery layer after a
    /// rollback, on every rank, so halo frames sent before the rollback are
    /// discarded as stale rather than consumed as fresh data.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Rank id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// The communicator this rank runs on (used by the recovery layer for its
    /// status reductions and rollback collectives).
    pub fn comm(&self) -> &'c C {
        self.comm
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Temporal-blocking depth (steps per halo exchange; 1 = unblocked).
    pub fn time_block(&self) -> usize {
        self.time_block
    }

    /// Ghost-ring width in cells (= [`DistributedSolver::time_block`]).
    pub fn halo_width(&self) -> usize {
        self.halo
    }

    /// Intra-block phase `0..time_block`; 0 means the next step starts a new
    /// block (and pays the halo exchange). Checkpoint capture is valid at any
    /// phase, but a *restore* always resumes at phase 0.
    pub fn block_phase(&self) -> usize {
        self.phase
    }

    /// The partition (for output assembly).
    pub fn partition(&self) -> Partition2d {
        self.part
    }

    /// Local flags (with halo ring).
    pub fn local_flags(&self) -> &FlagField {
        &self.flags
    }

    /// Mutable access to the local flags (with halo ring). Marks the cached
    /// interior fast-path index dirty; the next [`DistributedSolver::step`]
    /// rebuilds it (and the active-cell count) before dispatch.
    pub fn local_flags_mut(&mut self) -> &mut FlagField {
        self.interior_dirty = true;
        &mut self.flags
    }

    /// Which kernel class served the most recent step's inner rectangle
    /// ([`KernelClass::Generic`] before the first step).
    pub fn last_kernel_class(&self) -> KernelClass {
        self.last_class
    }

    /// Rebuild the interior index and active-cell count if the flags changed.
    fn ensure_interior(&mut self) {
        if self.interior_dirty {
            if self.store.scheme() == StorageScheme::Aa {
                let c = self.flags.census();
                assert!(
                    c.inlet == 0 && c.outlet == 0,
                    "AA-pattern storage supports Fluid/Wall/MovingWall nodes only, but the \
                     mutated local flags now have {} inlet and {} outlet nodes; use \
                     StorageScheme::Ab for open/NEBB boundaries",
                    c.inlet,
                    c.outlet
                );
            }
            self.interior = InteriorIndex::build::<L>(&self.flags);
            self.active = count_active(&self.flags, self.lnx, self.lny, self.halo);
            self.interior_dirty = false;
        }
    }

    /// Which storage scheme this rank runs.
    pub fn scheme(&self) -> StorageScheme {
        self.store.scheme()
    }

    /// AA step-flavor parity (`None` under AB storage). `Reversed` means the
    /// next step is the odd (communicating) flavor.
    pub fn parity(&self) -> Option<AaParity> {
        self.store.parity()
    }

    /// Initialize all local cells from a *global-coordinate* state function.
    pub fn initialize_with(
        &mut self,
        mut state: impl FnMut(usize, usize, usize) -> (Scalar, [Scalar; 3]),
    ) {
        let part = self.part;
        let rank = self.comm.rank();
        let global = part.global;
        let ((x0, _), (y0, _)) = part.owned(rank);
        let h = self.halo;
        let flags = self.flags.clone();
        swlb_core::kernels::initialize_with::<L, _>(&flags, self.store.state_mut(), |lx, ly, z| {
            let gx = (x0 as isize + lx as isize - h as isize).rem_euclid(global.nx as isize);
            let gy = (y0 as isize + ly as isize - h as isize).rem_euclid(global.ny as isize);
            state(gx as usize, gy as usize, z)
        });
        // The initializer writes the canonical (AB-ordered) state; convert to
        // the scheme's raw representation.
        if let Storage::Aa { field, parity } = &mut self.store {
            reverse_planes::<L>(field);
            *parity = AaParity::Reversed;
        }
        self.step = 0;
        self.phase = 0;
    }

    /// Initialize to a uniform equilibrium.
    pub fn initialize_uniform(&mut self, rho: Scalar, u: [Scalar; 3]) {
        self.initialize_with(|_, _, _| (rho, u));
    }

    /// Send ranges for direction component `d ∈ {−1, 0, +1}` along an axis
    /// with `ln` owned cells and an `h`-deep ghost ring: the `h` cells
    /// adjacent to that neighbor. When `ln < h` the strip dips into this
    /// rank's own ghost ring — valid in multi-round exchanges, where earlier
    /// rounds filled it (see the module docs).
    fn send_range(d: i32, ln: usize, h: usize) -> Range<usize> {
        match d {
            1 => ln..ln + h,
            -1 => h..2 * h,
            _ => h..ln + h,
        }
    }

    /// Receive (ghost) ranges for direction component `d`.
    fn recv_range(d: i32, ln: usize, h: usize) -> Range<usize> {
        match d {
            1 => ln + h..ln + 2 * h,
            -1 => 0..h,
            _ => h..ln + h,
        }
    }

    /// Append the strip `xr × yr` (full z) of `field` to `out` in halo wire
    /// order (y → x → z → q).
    fn pack_strip(field: &SoaField<L>, xr: Range<usize>, yr: Range<usize>, out: &mut Vec<f64>) {
        let dims = field.dims();
        out.reserve(xr.len() * yr.len() * dims.nz * L::Q);
        for y in yr {
            for x in xr.clone() {
                for z in 0..dims.nz {
                    let cell = dims.idx(x, y, z);
                    for q in 0..L::Q {
                        out.push(field.get(cell, q));
                    }
                }
            }
        }
    }

    /// Append the strip `xr × yr` of the current raw state to `out`.
    fn pack_into(&self, xr: Range<usize>, yr: Range<usize>, out: &mut Vec<f64>) {
        Self::pack_strip(self.store.state(), xr, yr, out);
    }

    fn unpack(&mut self, xr: Range<usize>, yr: Range<usize>, data: &[f64]) {
        let dims = self.flags.dims();
        let dst = self.store.state_mut();
        let mut it = data.iter();
        for y in yr {
            for x in xr.clone() {
                for z in 0..dims.nz {
                    let cell = dims.idx(x, y, z);
                    for q in 0..L::Q {
                        dst.set(cell, q, *it.next().expect("halo message too short"));
                    }
                }
            }
        }
        assert!(it.next().is_none(), "halo message too long");
    }

    /// Post all 8 halo sends of the current state for exchange round `round`.
    /// Each frame is built in place in the reusable send buffer:
    /// `[epoch, step, crc]` header, then the packed strip, then the checksum
    /// filled into its slot.
    fn post_sends(&mut self, round: usize) -> Result<(), CommError> {
        let mut buf = std::mem::take(&mut self.send_buf);
        let result = (|| {
            for (d, (dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
                let dst = self
                    .part
                    .cart
                    .neighbor(self.comm.rank(), *dx, *dy)
                    .expect("periodic topology always has neighbors");
                buf.clear();
                buf.resize(FRAME_HEADER, 0.0);
                self.pack_into(
                    Self::send_range(*dx, self.lnx, self.halo),
                    Self::send_range(*dy, self.lny, self.halo),
                    &mut buf,
                );
                seal_frame(&mut buf, self.epoch, self.step);
                self.obs_halo_msgs.inc();
                self.obs_halo_bytes
                    .add((buf.len() * std::mem::size_of::<f64>()) as u64);
                self.comm.send_buffered(dst, round_tag(round, d), &buf)?;
            }
            Ok(())
        })();
        self.send_buf = buf;
        result
    }

    /// Receive one halo frame for the current `(epoch, step)`, retrying with
    /// capped exponential backoff. Delayed messages are healed by waiting
    /// longer; duplicates and pre-rollback stragglers are discarded; dropped
    /// or corrupted messages exhaust the attempts and escalate as
    /// [`CommError::Timeout`] / [`CommError::Corrupt`] for the recovery layer.
    /// On success the full frame (header included) is left in `buf`; the
    /// payload is `buf[FRAME_HEADER..]`.
    fn recv_framed_into(&self, src: usize, tag: Tag, buf: &mut Vec<f64>) -> Result<(), CommError> {
        let retry = self.retry;
        let mut attempts: u32 = 0;
        let mut saw_corrupt = false;
        loop {
            match self
                .comm
                .recv_deadline_buffered(src, tag, retry.timeout_for(attempts), buf)
            {
                Ok(()) => {}
                Err(CommError::Timeout { .. }) => {
                    attempts += 1;
                    self.obs_retries.inc();
                    if attempts >= retry.max_attempts {
                        return if saw_corrupt {
                            self.obs_corrupt.inc();
                            Err(CommError::Corrupt { rank: src, tag })
                        } else {
                            self.obs_timeouts.inc();
                            Err(CommError::Timeout {
                                rank: src,
                                tag,
                                attempts,
                            })
                        };
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            match check_frame(buf, self.epoch, self.step) {
                FrameCheck::Valid => return Ok(()),
                // Stale frames are bounded by what was actually in flight, so
                // discarding them without charging an attempt cannot loop.
                FrameCheck::Stale => continue,
                FrameCheck::Corrupt => {
                    saw_corrupt = true;
                    attempts += 1;
                    self.obs_retries.inc();
                    if attempts >= retry.max_attempts {
                        self.obs_corrupt.inc();
                        return Err(CommError::Corrupt { rank: src, tag });
                    }
                }
                FrameCheck::Gap => {
                    self.obs_timeouts.inc();
                    return Err(CommError::Timeout {
                        rank: src,
                        tag,
                        attempts: attempts + 1,
                    });
                }
            }
        }
    }

    /// Receive all 8 halo strips of exchange round `round` into the current
    /// state's ring.
    fn recv_halos(&mut self, round: usize) -> Result<(), CommError> {
        let mut buf = std::mem::take(&mut self.recv_buf);
        let result = (|| {
            for (d, (dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
                let src_rank = self
                    .part
                    .cart
                    .neighbor(self.comm.rank(), *dx, *dy)
                    .expect("periodic topology always has neighbors");
                let t_recv = self.recorder.now();
                self.recv_framed_into(src_rank, round_tag(round, opposite_dir(d)), &mut buf)?;
                if let Some(t) = t_recv {
                    let ns = t.elapsed().as_nanos() as u64;
                    self.recorder.record_phase_ns(Phase::HaloExchange, ns);
                    self.obs_halo_us.record(ns as f64 / 1e3);
                }
                let rec = self.recorder.clone();
                let _unpack = rec.phase(Phase::HaloUnpack);
                self.unpack(
                    Self::recv_range(*dx, self.lnx, self.halo),
                    Self::recv_range(*dy, self.lny, self.halo),
                    &buf[FRAME_HEADER..],
                );
            }
            Ok(())
        })();
        self.recv_buf = buf;
        result
    }

    /// Complete a deep-halo exchange whose round-0 sends are already posted:
    /// receive round 0, then run any further rounds needed to fill a ring
    /// deeper than the shallowest subdomain.
    fn finish_exchange(&mut self) -> Result<(), CommError> {
        self.recv_halos(0)?;
        for round in 1..self.rounds {
            {
                let rec = self.recorder.clone();
                let _pack = rec.phase(Phase::HaloPack);
                self.post_sends(round)?;
            }
            self.recv_halos(round)?;
        }
        Ok(())
    }

    /// Fused stream+collide over the inner rectangle `2..lnx × 2..lny` (the
    /// cells that touch no halo), dispatched through the thread pool: y-slabs
    /// across threads, z-tile blocking inside each slab, and the vectorized
    /// (or hand-optimized scalar) D3Q19 kernel on interior BGK run-length
    /// runs. Matches the serial generic path bit-for-bit on scalar-semantics
    /// lanes and within the FMA dispatch tolerance under AVX2.
    fn step_inner(&mut self) {
        if self.lnx <= 2 || self.lny <= 2 {
            self.last_class = KernelClass::Generic;
            return;
        }
        let (xr, yr) = self.inner_ranges();
        let collision = self.collision;
        let flags = &self.flags;
        let pool = &self.pool;
        let interior = &self.interior;
        let Storage::Ab(bufs) = &mut self.store else {
            unreachable!("step_inner is the AB path")
        };
        let (src, dst) = bufs.pair_mut();
        let class = pool.step_rect::<L, _>(flags, src, dst, &collision, xr, yr, Some(interior));
        self.last_class = class;
    }

    /// The inner rectangle: owned cells whose step-1 pulls and scatters touch
    /// no ghost cell (empty for degenerate subdomains).
    fn inner_ranges(&self) -> (Range<usize>, Range<usize>) {
        let h = self.halo;
        (h + 1..h + self.lnx - 1, h + 1..h + self.lny - 1)
    }

    /// The owned block expanded by `e` ghost layers on every side.
    fn expanded_ranges(&self, e: usize) -> (Range<usize>, Range<usize>) {
        let h = self.halo;
        debug_assert!(e < h, "expansion exceeds the ring");
        (h - e..h + self.lnx + e, h - e..h + self.lny + e)
    }

    /// Fused stream+collide over the boundary ring (the four strips adjacent
    /// to the halo, corners included exactly once) on the generic serial path.
    /// Together with [`DistributedSolver::step_inner`] this covers every
    /// owned cell exactly once, including degenerate subdomains (`lnx ≤ 2` or
    /// `lny ≤ 2`) where the inner rectangle is empty and the ring is the
    /// whole subdomain.
    fn step_ring(&mut self) {
        let (lnx, lny) = (self.lnx, self.lny);
        let h = self.halo;
        self.step_rect(h..h + lnx, h..h + 1); // south row
        if lny > 1 {
            self.step_rect(h..h + lnx, h + lny - 1..h + lny); // north row
        }
        if lny > 2 {
            self.step_rect(h..h + 1, h + 1..h + lny - 1); // west column
            if lnx > 1 {
                self.step_rect(h + lnx - 1..h + lnx, h + 1..h + lny - 1); // east column
            }
        }
    }

    /// Fused stream+collide over the rectangle `xr × yr` (local coords, full z).
    fn step_rect(&mut self, xr: Range<usize>, yr: Range<usize>) {
        let dims = self.flags.dims();
        let collision = self.collision;
        let flags = &self.flags;
        let Storage::Ab(bufs) = &mut self.store else {
            unreachable!("step_rect is the AB path")
        };
        let (src, dst) = bufs.pair_mut();
        let mut f = [0.0; MAX_Q];
        for y in yr {
            for x in xr.clone() {
                for z in 0..dims.nz {
                    let cell = dims.idx(x, y, z);
                    let kind = flags.kind(cell);
                    if kind.is_fluid() || kind.is_nebb() {
                        gather_pull::<L, _>(flags, src, x, y, z, &mut f[..L::Q]);
                        swlb_core::kernels::reconstruct_nebb::<L>(&mut f[..L::Q], kind);
                        collide::<L>(&mut f[..L::Q], &collision);
                        dst.store_cell(cell, &f[..L::Q]);
                    } else {
                        apply_non_fluid::<L, _>(flags, src, dst, x, y, z, kind);
                    }
                }
            }
        }
    }

    /// Fused AA stream+collide over the inner rectangle `2..lnx × 2..lny`
    /// (whose gathers *and scatters* stay within owned cells), dispatched
    /// through the thread pool exactly like the AB inner rectangle.
    fn aa_step_inner(&mut self) {
        if self.lnx <= 2 || self.lny <= 2 {
            self.last_class = KernelClass::Generic;
            return;
        }
        let (xr, yr) = self.inner_ranges();
        let collision = self.collision;
        let flags = &self.flags;
        let pool = &self.pool;
        let interior = &self.interior;
        let Storage::Aa { field, parity } = &mut self.store else {
            unreachable!("aa_step_inner is the AA path")
        };
        let class =
            pool.aa_step_rect::<L>(flags, field, &collision, *parity, xr, yr, Some(interior));
        self.last_class = class;
    }

    /// AA sweep over the boundary ring on the generic serial path. Odd-step
    /// ring cells gather from and scatter into the ghost ring; slot ownership
    /// (unique writer = unique reader per slot) makes the order against
    /// [`DistributedSolver::aa_step_inner`] irrelevant — the schedules stay
    /// bit-identical.
    fn aa_step_ring(&mut self) {
        let (lnx, lny) = (self.lnx, self.lny);
        let h = self.halo;
        self.aa_step_rect(h..h + lnx, h..h + 1); // south row
        if lny > 1 {
            self.aa_step_rect(h..h + lnx, h + lny - 1..h + lny); // north row
        }
        if lny > 2 {
            self.aa_step_rect(h..h + 1, h + 1..h + lny - 1); // west column
            if lnx > 1 {
                self.aa_step_rect(h + lnx - 1..h + lnx, h + 1..h + lny - 1); // east column
            }
        }
    }

    /// AA sweep over the rectangle `xr × yr` (local coords, full z).
    fn aa_step_rect(&mut self, xr: Range<usize>, yr: Range<usize>) {
        let collision = self.collision;
        let flags = &self.flags;
        let Storage::Aa { field, parity } = &mut self.store else {
            unreachable!("aa_step_rect is the AA path")
        };
        swlb_core::kernels::aa_step_rect::<L>(flags, field, &collision, *parity, xr, yr);
    }

    /// One pooled AA dispatch over every owned cell `1..=lnx × 1..=lny` — the
    /// even (cell-local) step flavor, which needs no halo traffic.
    fn aa_step_owned(&mut self) {
        let collision = self.collision;
        let flags = &self.flags;
        let pool = &self.pool;
        let interior = &self.interior;
        let h = self.halo;
        let (xr, yr) = (h..h + self.lnx, h..h + self.lny);
        let Storage::Aa { field, parity } = &mut self.store else {
            unreachable!("aa_step_owned is the AA path")
        };
        let class =
            pool.aa_step_rect::<L>(flags, field, &collision, *parity, xr, yr, Some(interior));
        self.last_class = class;
    }

    /// AA odd-step post-exchange: ship the ghost strips (which now hold this
    /// rank's scatters into the neighbors' cells) across, and merge the 8
    /// incoming strips into the owned boundary ring — but only the slots
    /// `(cell, q)` whose writer `cell − c_q` lies in the *sender's* region.
    /// Every slot has exactly one writer, so the merge predicates are disjoint
    /// across senders (wraparound self-sends included) and never clobber a
    /// locally-computed value.
    fn aa_post_exchange(&mut self) -> Result<(), CommError> {
        let mut buf = std::mem::take(&mut self.send_buf);
        let send_result = (|| {
            for (d, (dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
                let dst = self
                    .part
                    .cart
                    .neighbor(self.comm.rank(), *dx, *dy)
                    .expect("periodic topology always has neighbors");
                buf.clear();
                buf.resize(FRAME_HEADER, 0.0);
                self.pack_into(
                    Self::recv_range(*dx, self.lnx, self.halo),
                    Self::recv_range(*dy, self.lny, self.halo),
                    &mut buf,
                );
                seal_frame(&mut buf, self.epoch, self.step);
                self.obs_halo_msgs.inc();
                self.obs_halo_bytes
                    .add((buf.len() * std::mem::size_of::<f64>()) as u64);
                self.comm
                    .send_buffered(dst, AA_POST_TAG_BASE + d as u64, &buf)?;
            }
            Ok(())
        })();
        self.send_buf = buf;
        send_result?;

        let mut buf = std::mem::take(&mut self.recv_buf);
        let recv_result = (|| {
            for (d, (dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
                let src_rank = self
                    .part
                    .cart
                    .neighbor(self.comm.rank(), *dx, *dy)
                    .expect("periodic topology always has neighbors");
                let t_recv = self.recorder.now();
                self.recv_framed_into(
                    src_rank,
                    AA_POST_TAG_BASE + opposite_dir(d) as u64,
                    &mut buf,
                )?;
                if let Some(t) = t_recv {
                    let ns = t.elapsed().as_nanos() as u64;
                    self.recorder.record_phase_ns(Phase::HaloExchange, ns);
                    self.obs_halo_us.record(ns as f64 / 1e3);
                }
                self.aa_merge_strip(*dx, *dy, &buf[FRAME_HEADER..]);
            }
            Ok(())
        })();
        self.recv_buf = buf;
        recv_result
    }

    /// Merge one post-exchange strip from the neighbor in direction
    /// `(dx, dy)`. The payload mirrors my owned boundary strip
    /// `send_range(dx) × send_range(dy)` in halo wire order; a slot is taken
    /// iff its writer cell lies in the sender's region (beyond my owned block
    /// in exactly the directions the sender sits, in unwrapped local coords).
    fn aa_merge_strip(&mut self, dx: i32, dy: i32, data: &[f64]) {
        fn writer_in_sender(w: isize, d: i32, ln: usize, h: usize) -> bool {
            match d {
                1 => w >= (ln + h) as isize,
                -1 => w < h as isize,
                _ => w >= h as isize && w < (ln + h) as isize,
            }
        }
        let dims = self.flags.dims();
        let (lnx, lny, h) = (self.lnx, self.lny, self.halo);
        let dst = self.store.state_mut();
        let mut it = data.iter();
        for y in Self::send_range(dy, lny, h) {
            for x in Self::send_range(dx, lnx, h) {
                for z in 0..dims.nz {
                    let cell = dims.idx(x, y, z);
                    for q in 0..L::Q {
                        let v = *it.next().expect("post-exchange message too short");
                        let c = L::C[q];
                        let wx = x as isize - c[0] as isize;
                        let wy = y as isize - c[1] as isize;
                        if writer_in_sender(wx, dx, lnx, h) && writer_in_sender(wy, dy, lny, h) {
                            dst.set(cell, q, v);
                        }
                    }
                }
            }
        }
        assert!(it.next().is_none(), "post-exchange message too long");
    }

    /// One AB time step: pre-exchange, compute, buffer flip.
    fn step_ab(&mut self, rec: &Recorder) -> Result<(), CommError> {
        {
            let _pack = rec.phase(Phase::HaloPack);
            self.post_sends(0)?;
        }
        // Both schedules run the identical inner-rectangle (pooled, optimized)
        // and boundary-ring (generic) kernels; they differ only in *when* the
        // inner rectangle runs relative to the halo receives. That is what
        // keeps them bit-identical.
        match self.mode {
            ExchangeMode::Sequential => {
                self.recv_halos(0)?;
                {
                    let _cs = rec.phase(Phase::CollideStream);
                    self.step_inner();
                }
                let _bd = rec.phase(Phase::Boundary);
                self.step_ring();
            }
            ExchangeMode::OnTheFly => {
                // Inner cells touch no halo: compute them while messages fly.
                {
                    let _cs = rec.phase(Phase::CollideStream);
                    self.step_inner();
                }
                self.recv_halos(0)?;
                let _bd = rec.phase(Phase::Boundary);
                self.step_ring();
            }
        }
        let Storage::Ab(bufs) = &mut self.store else {
            unreachable!("step_ab is the AB path")
        };
        bufs.flip();
        Ok(())
    }

    /// One pooled AB dispatch over an arbitrary rectangle of the expanded
    /// local grid (blocked intra-block steps; ghost cells included).
    fn ab_dispatch_rect(&mut self, xr: Range<usize>, yr: Range<usize>) {
        let collision = self.collision;
        let flags = &self.flags;
        let pool = &self.pool;
        let interior = &self.interior;
        let Storage::Ab(bufs) = &mut self.store else {
            unreachable!("ab_dispatch_rect is the AB path")
        };
        let (src, dst) = bufs.pair_mut();
        let class = pool.step_rect::<L, _>(flags, src, dst, &collision, xr, yr, Some(interior));
        self.last_class = class;
    }

    /// One pooled AA dispatch over an arbitrary rectangle of the expanded
    /// local grid.
    fn aa_dispatch_rect(&mut self, xr: Range<usize>, yr: Range<usize>) {
        let collision = self.collision;
        let flags = &self.flags;
        let pool = &self.pool;
        let interior = &self.interior;
        let Storage::Aa { field, parity } = &mut self.store else {
            unreachable!("aa_dispatch_rect is the AA path")
        };
        let class =
            pool.aa_step_rect::<L>(flags, field, &collision, *parity, xr, yr, Some(interior));
        self.last_class = class;
    }

    /// The frame of the expansion-`e` rectangle left after the inner
    /// rectangle — four pooled strips (or the whole rectangle when the inner
    /// one is empty). Per-cell results are independent of how the region is
    /// cut into dispatch rectangles: z-runs are never split by an x/y cut, so
    /// this decomposition is exactly as bit-stable as one big dispatch.
    fn frame_rects(&self, e: usize) -> Vec<(Range<usize>, Range<usize>)> {
        let (xo, yo) = self.expanded_ranges(e);
        if self.lnx <= 2 || self.lny <= 2 {
            return vec![(xo, yo)];
        }
        let (xi, yi) = self.inner_ranges();
        vec![
            (xo.clone(), yo.start..yi.start),       // south strip
            (xo.clone(), yi.end..yo.end),           // north strip
            (xo.start..xi.start, yi.start..yi.end), // west strip
            (xi.end..xo.end, yi.start..yi.end),     // east strip
        ]
    }

    /// One intra-block AB step under temporal blocking. Phase 0 pays the deep
    /// exchange and computes the widest expanded rectangle; later phases
    /// shrink by one ghost layer each and need no communication.
    fn step_block_ab(&mut self, rec: &Recorder) -> Result<(), CommError> {
        let s = self.phase + 1; // intra-block step, 1-based
        let e = self.time_block - s; // ghost layers to recompute this step
        if s == 1 {
            {
                let _pack = rec.phase(Phase::HaloPack);
                self.post_sends(0)?;
            }
            // Same inner/frame split in both modes (so they stay
            // bit-identical); OnTheFly just overlaps the inner rectangle with
            // the receives.
            match self.mode {
                ExchangeMode::Sequential => {
                    self.finish_exchange()?;
                    {
                        let _cs = rec.phase(Phase::CollideStream);
                        self.step_inner();
                    }
                }
                ExchangeMode::OnTheFly => {
                    {
                        let _cs = rec.phase(Phase::CollideStream);
                        self.step_inner();
                    }
                    self.finish_exchange()?;
                }
            }
            let _bd = rec.phase(Phase::Boundary);
            for (xr, yr) in self.frame_rects(e) {
                self.ab_dispatch_rect(xr, yr);
            }
        } else {
            let _cs = rec.phase(Phase::CollideStream);
            let (xr, yr) = self.expanded_ranges(e);
            self.ab_dispatch_rect(xr, yr);
        }
        let Storage::Ab(bufs) = &mut self.store else {
            unreachable!("step_block_ab is the AB path")
        };
        bufs.flip();
        Ok(())
    }

    /// One intra-block AA step under temporal blocking. The odd flavor's
    /// ghost-bound scatters are recomputed by the neighbor inside its own
    /// ring, so blocked AA needs the phase-0 pre-exchange only — no
    /// post-exchange (see the module docs).
    fn step_block_aa(&mut self, rec: &Recorder) -> Result<(), CommError> {
        let s = self.phase + 1;
        let e = self.time_block - s;
        if s == 1 {
            debug_assert_eq!(
                self.store.parity(),
                Some(AaParity::Reversed),
                "an AA block starts on the odd flavor"
            );
            {
                let _pack = rec.phase(Phase::HaloPack);
                self.post_sends(0)?;
            }
            // AA updates in place, so the overlap is sound only for a
            // single-round exchange: with `rounds > 1` the round-1 re-pack
            // reads strips (`send_range` spans ghost layers when `h > ln`)
            // that the inner sweep's odd-flavor scatters have already
            // mutated, and the deep ring would carry post-step values.
            let overlap = self.mode == ExchangeMode::OnTheFly && self.rounds == 1;
            if overlap {
                {
                    let _cs = rec.phase(Phase::CollideStream);
                    self.aa_step_inner();
                }
                self.finish_exchange()?;
            } else {
                self.finish_exchange()?;
                {
                    let _cs = rec.phase(Phase::CollideStream);
                    self.aa_step_inner();
                }
            }
            let _bd = rec.phase(Phase::Boundary);
            for (xr, yr) in self.frame_rects(e) {
                self.aa_dispatch_rect(xr, yr);
            }
        } else {
            let _cs = rec.phase(Phase::CollideStream);
            let (xr, yr) = self.expanded_ranges(e);
            self.aa_dispatch_rect(xr, yr);
        }
        let Storage::Aa { parity, .. } = &mut self.store else {
            unreachable!("step_block_aa is the AA path")
        };
        *parity = parity.flip();
        Ok(())
    }

    /// One AA time step: odd flavor communicates (pre- and post-exchange),
    /// even flavor is entirely local; the parity flips afterwards.
    fn step_aa(&mut self, rec: &Recorder) -> Result<(), CommError> {
        let parity = self.store.parity().expect("step_aa is the AA path");
        match parity {
            AaParity::Reversed => {
                {
                    let _pack = rec.phase(Phase::HaloPack);
                    self.post_sends(0)?;
                }
                match self.mode {
                    ExchangeMode::Sequential => {
                        self.recv_halos(0)?;
                        {
                            let _cs = rec.phase(Phase::CollideStream);
                            self.aa_step_inner();
                        }
                        let _bd = rec.phase(Phase::Boundary);
                        self.aa_step_ring();
                    }
                    ExchangeMode::OnTheFly => {
                        // The inner rectangle neither gathers from nor
                        // scatters into the ghost ring: overlap it with the
                        // pre-exchange receives.
                        {
                            let _cs = rec.phase(Phase::CollideStream);
                            self.aa_step_inner();
                        }
                        self.recv_halos(0)?;
                        let _bd = rec.phase(Phase::Boundary);
                        self.aa_step_ring();
                    }
                }
                self.aa_post_exchange()?;
            }
            AaParity::Streamed => {
                let _cs = rec.phase(Phase::CollideStream);
                self.aa_step_owned();
            }
        }
        let Storage::Aa { parity, .. } = &mut self.store else {
            unreachable!("step_aa is the AA path")
        };
        *parity = parity.flip();
        Ok(())
    }

    /// Advance one time step.
    pub fn step(&mut self) -> Result<(), CommError> {
        // Cheap handle clone so phase guards don't hold a borrow of `self`.
        let rec = self.recorder.clone();
        let t_step = rec.now();
        self.ensure_interior();
        self.comm.notify_step(self.step);
        let blocked = self.time_block > 1;
        match (self.store.scheme(), blocked) {
            (StorageScheme::Ab, false) => self.step_ab(&rec)?,
            (StorageScheme::Aa, false) => self.step_aa(&rec)?,
            (StorageScheme::Ab, true) => self.step_block_ab(&rec)?,
            (StorageScheme::Aa, true) => self.step_block_aa(&rec)?,
        }
        self.phase = (self.phase + 1) % self.time_block;
        self.step += 1;
        if let Some(t) = t_step {
            let ns = (t.elapsed().as_nanos() as u64).max(1);
            self.obs_steps.inc();
            // Per-rank MLUPS = interior fluid cells · 1000 / step-ns.
            self.obs_mlups.set(self.active as f64 * 1e3 / ns as f64);
            self.obs_kernel_class.set(self.last_class.as_gauge());
        }
        self.recorder.maybe_flush(self.step);
        Ok(())
    }

    /// Advance `n` steps, surfacing any halo failure as the workspace error.
    pub fn run(&mut self, n: u64) -> Result<(), SwlbError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// The canonical (AB-ordered post-collision) view of the local grid:
    /// borrowed zero-copy under AB, materialized under AA. Owned cells are
    /// always correct; ghost-ring values are only meaningful under AB and AA
    /// `Reversed` (under `Streamed` canonicalizing a ghost would need the
    /// neighbor's data).
    pub fn local_canonical(&self) -> std::borrow::Cow<'_, SoaField<L>> {
        use std::borrow::Cow;
        match &self.store {
            Storage::Ab(b) => Cow::Borrowed(b.src()),
            Storage::Aa { field, parity } => match parity {
                AaParity::Reversed => {
                    let mut f = field.clone();
                    reverse_planes::<L>(&mut f);
                    Cow::Owned(f)
                }
                AaParity::Streamed => Cow::Owned(canonicalize_streamed::<L>(field)),
            },
        }
    }

    /// Local macroscopic snapshot (includes the halo ring; interior is
    /// `1..=lnx × 1..=lny`).
    pub fn local_macroscopic(&self) -> MacroFields {
        MacroFields::compute::<L, _>(&self.flags, self.local_canonical().as_ref())
    }

    /// Current local raw state (with halo ring). Under AB this is the source
    /// buffer; under AA the slot meaning depends on
    /// [`DistributedSolver::parity`] — use
    /// [`DistributedSolver::local_canonical`] for a scheme-portable view.
    pub fn local_populations(&self) -> &SoaField<L> {
        self.store.state()
    }

    /// Mutable local raw state (restart, fault injection in tests).
    pub fn local_populations_mut(&mut self) -> &mut SoaField<L> {
        self.store.state_mut()
    }

    /// This rank's fluid mass over interior cells (no communication). A NaN or
    /// Inf anywhere in the interior poisons the sum, which is what lets the
    /// recovery layer detect divergence from one reduced scalar.
    ///
    /// Scheme-invariant: under AA `Reversed` the slots of a cell are a
    /// permutation of its canonical values, and under `Streamed` the cell's
    /// canonical values sit at `(cell + c_q, q)` — which for owned cells never
    /// leaves the local grid.
    pub fn local_mass(&self) -> Scalar {
        let dims = self.flags.dims();
        let src = self.store.state();
        let streamed = self.store.parity() == Some(AaParity::Streamed);
        let h = self.halo;
        let mut mass = 0.0;
        for y in h..h + self.lny {
            for x in h..h + self.lnx {
                for z in 0..dims.nz {
                    let cell = dims.idx(x, y, z);
                    if self.flags.kind(cell).is_fluid() {
                        for q in 0..L::Q {
                            let slot = if streamed {
                                let c = L::C[q];
                                let [a, b, d] = dims.neighbor_periodic(x, y, z, [c[0], c[1], c[2]]);
                                dims.idx(a, b, d)
                            } else {
                                cell
                            };
                            mass += src.get(slot, q);
                        }
                    }
                }
            }
        }
        mass
    }

    /// Global fluid mass (allreduce over interior cells).
    pub fn global_mass(&self) -> Result<Scalar, CommError> {
        Ok(self.comm.allreduce_sum(&[self.local_mass()])?[0])
    }

    /// Scatter a global population field from rank 0 to every rank's interior
    /// (the restart path: inverse of [`DistributedSolver::gather_populations`]).
    /// Ranks other than 0 may pass `None`.
    pub fn scatter_populations(
        &mut self,
        global_field: Option<&SoaField<L>>,
        step: u64,
    ) -> Result<(), CommError> {
        const SCATTER_TAG: u64 = 40;
        let global = self.part.global;
        if self.comm.rank() == 0 {
            let field = global_field.expect("rank 0 must supply the global field");
            assert_eq!(field.dims(), global, "checkpoint dims mismatch");
            for rank in (0..self.comm.size()).rev() {
                let ((x0, lnx), (y0, lny)) = self.part.owned(rank);
                let mut payload = Vec::with_capacity(lnx * lny * global.nz * L::Q);
                for y in 0..lny {
                    for x in 0..lnx {
                        for z in 0..global.nz {
                            let cell = global.idx(x0 + x, y0 + y, z);
                            for q in 0..L::Q {
                                payload.push(field.get(cell, q));
                            }
                        }
                    }
                }
                if rank == 0 {
                    self.unpack(
                        self.halo..self.halo + self.lnx,
                        self.halo..self.halo + self.lny,
                        &payload,
                    );
                } else {
                    self.comm.send(rank, SCATTER_TAG, payload)?;
                }
            }
        } else {
            let payload = self.comm.recv(0, SCATTER_TAG)?;
            self.unpack(
                self.halo..self.halo + self.lnx,
                self.halo..self.halo + self.lny,
                &payload,
            );
        }
        // The payload is canonical (AB-ordered); convert to the scheme's raw
        // representation. Restarting AA on the odd flavor from a canonical
        // state is exactly the AB continuation; the stale ghost ring is
        // overwritten by the pre-exchange before anything reads it.
        if let Storage::Aa { field, parity } = &mut self.store {
            reverse_planes::<L>(field);
            *parity = AaParity::Reversed;
        }
        self.step = step;
        self.phase = 0;
        Ok(())
    }

    /// Gather the full global *canonical* population field on rank 0 (`None`
    /// elsewhere) — scheme-portable: AA ranks canonicalize their owned block
    /// before packing.
    pub fn gather_populations(&self) -> Result<Option<SoaField<L>>, CommError> {
        let mut payload = Vec::new();
        Self::pack_strip(
            self.local_canonical().as_ref(),
            self.halo..self.halo + self.lnx,
            self.halo..self.halo + self.lny,
            &mut payload,
        );
        let gathered = self.comm.gather_to_root(&payload)?;
        if self.comm.rank() != 0 {
            return Ok(None);
        }
        let global = self.part.global;
        let mut field = SoaField::<L>::new(global);
        for (rank, data) in gathered.iter().enumerate() {
            let ((x0, lnx), (y0, lny)) = self.part.owned(rank);
            let mut it = data.iter();
            for y in 0..lny {
                for x in 0..lnx {
                    for z in 0..global.nz {
                        let cell = global.idx(x0 + x, y0 + y, z);
                        for q in 0..L::Q {
                            field.set(cell, q, *it.next().expect("gather payload short"));
                        }
                    }
                }
            }
        }
        Ok(Some(field))
    }

    /// Capture a rank-count-independent (v3) checkpoint on rank 0 (`None`
    /// elsewhere): each rank packs its owned interior's *canonical*
    /// populations in chunk wire order (y → x → z → q — the same order the
    /// scatter/gather paths use), and rank 0 tags each payload with its
    /// global rectangle. Unlike [`DistributedSolver::gather_populations`]
    /// nothing is re-assembled into a whole-domain field — the chunks stay
    /// per-source-rank, which is what lets a later resume re-shard them onto
    /// any layout.
    pub fn capture_chunked(&self) -> Result<Option<ChunkedCheckpoint>, CommError> {
        let mut payload = Vec::new();
        Self::pack_strip(
            self.local_canonical().as_ref(),
            self.halo..self.halo + self.lnx,
            self.halo..self.halo + self.lny,
            &mut payload,
        );
        let gathered = self.comm.gather_to_root(&payload)?;
        if self.comm.rank() != 0 {
            return Ok(None);
        }
        let global = self.part.global;
        let chunks = gathered
            .into_iter()
            .enumerate()
            .map(|(rank, data)| {
                let ((x0, lnx), (y0, lny)) = self.part.owned(rank);
                swlb_io::CheckpointChunk {
                    meta: swlb_io::ChunkMeta {
                        x0: x0 as u32,
                        y0: y0 as u32,
                        lnx: lnx as u32,
                        lny: lny as u32,
                    },
                    data,
                }
            })
            .collect();
        Ok(Some(ChunkedCheckpoint {
            step: self.step,
            dims: (global.nx as u32, global.ny as u32, global.nz as u32),
            q: L::Q as u32,
            scheme: match self.store.scheme() {
                StorageScheme::Ab => swlb_io::checkpoint::SCHEME_AB,
                StorageScheme::Aa => swlb_io::checkpoint::SCHEME_AA,
            },
            parity: 0,
            chunks,
        }))
    }

    /// Restore from a rank-count-independent (v3) checkpoint — the elastic
    /// resume path. Rank 0 holds the checkpoint and extracts each
    /// destination rank's owned rectangle from whichever source chunks
    /// overlap it, so the producing partition (its rank count, its
    /// `px × py` shape, even a serial single-chunk capture) never needs to
    /// match the current one. Payloads are canonical; AA ranks convert to
    /// their raw representation exactly as the scatter path does. Ranks
    /// other than 0 pass `None`.
    pub fn restore_chunked(&mut self, ck: Option<&ChunkedCheckpoint>) -> Result<(), SwlbError> {
        const RESHARD_TAG: u64 = 41;
        let global = self.part.global;
        let step = if self.comm.rank() == 0 {
            let ck = ck.expect("rank 0 must supply the checkpoint");
            let want = (global.nx as u32, global.ny as u32, global.nz as u32);
            if ck.dims != want || ck.q != L::Q as u32 {
                return Err(SwlbError::CorruptData(format!(
                    "checkpoint is {}x{}x{}x{}, solver needs {}x{}x{}x{}",
                    ck.dims.0,
                    ck.dims.1,
                    ck.dims.2,
                    ck.q,
                    want.0,
                    want.1,
                    want.2,
                    L::Q
                )));
            }
            self.comm
                .broadcast(&[ck.step as f64])
                .map_err(SwlbError::from)?;
            for rank in (0..self.comm.size()).rev() {
                let ((x0, lnx), (y0, lny)) = self.part.owned(rank);
                let payload = ck
                    .extract_rect(x0, y0, lnx, lny)
                    .map_err(swlb_obs::SwlbError::from)?;
                if rank == 0 {
                    self.unpack(
                        self.halo..self.halo + self.lnx,
                        self.halo..self.halo + self.lny,
                        &payload,
                    );
                } else {
                    self.comm
                        .send(rank, RESHARD_TAG, payload)
                        .map_err(SwlbError::from)?;
                }
            }
            ck.step
        } else {
            let step = self.comm.broadcast(&[0.0]).map_err(SwlbError::from)?[0] as u64;
            let payload = self.comm.recv(0, RESHARD_TAG).map_err(SwlbError::from)?;
            self.unpack(
                self.halo..self.halo + self.lnx,
                self.halo..self.halo + self.lny,
                &payload,
            );
            step
        };
        // Same scheme conversion as `scatter_populations`: the payload is
        // canonical, AA restarts on the odd flavor.
        if let Storage::Aa { field, parity } = &mut self.store {
            reverse_planes::<L>(field);
            *parity = AaParity::Reversed;
        }
        self.step = step;
        self.phase = 0;
        Ok(())
    }
}

/// Wrap a legacy (v1/v2) whole-domain checkpoint as a single-chunk v3
/// checkpoint: decode the SoA payload into a field and re-pack it in chunk
/// wire order (y → x → z → q). This is what lets pre-v3 files flow through
/// the re-sharding [`DistributedSolver::restore_chunked`] path onto any
/// destination layout.
pub fn chunked_from_legacy<L: Lattice>(
    ck: &swlb_io::Checkpoint,
) -> Result<ChunkedCheckpoint, SwlbError> {
    let dims = GridDims::new(ck.dims.0 as usize, ck.dims.1 as usize, ck.dims.2 as usize);
    if ck.q != L::Q as u32 || ck.data.len() != dims.cells() * L::Q {
        return Err(SwlbError::CorruptData(format!(
            "legacy checkpoint is {}x{}x{}x{} ({} values), lattice needs q = {}",
            ck.dims.0,
            ck.dims.1,
            ck.dims.2,
            ck.q,
            ck.data.len(),
            L::Q
        )));
    }
    let mut field = SoaField::<L>::new(dims);
    field.raw_mut().copy_from_slice(&ck.data);
    let mut data = Vec::with_capacity(ck.data.len());
    for y in 0..dims.ny {
        for x in 0..dims.nx {
            for z in 0..dims.nz {
                let cell = dims.idx(x, y, z);
                for q in 0..L::Q {
                    data.push(field.get(cell, q));
                }
            }
        }
    }
    Ok(ChunkedCheckpoint::single_chunk(
        ck.step, ck.dims, ck.q, ck.scheme, data,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swlb_comm::World;
    use swlb_core::collision::BgkParams;
    use swlb_core::kernels::fused_step;
    use swlb_core::lattice::{D2Q9, D3Q19};

    fn reference_run<L: Lattice>(
        global: GridDims,
        flags: &FlagField,
        coll: &CollisionKind,
        steps: u64,
        init: impl Fn(usize, usize, usize) -> (Scalar, [Scalar; 3]),
    ) -> SoaField<L> {
        let mut src = SoaField::<L>::new(global);
        swlb_core::kernels::initialize_with::<L, _>(flags, &mut src, init);
        let mut dst = SoaField::<L>::new(global);
        for _ in 0..steps {
            fused_step(flags, &src, &mut dst, coll);
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    fn check_distributed_matches_reference<L: Lattice>(
        global: GridDims,
        flags: FlagField,
        nranks: usize,
        mode: ExchangeMode,
        steps: u64,
    ) {
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        let init = |x: usize, y: usize, z: usize| {
            let v = 0.01 * ((x * 7 + y * 3 + z) % 11) as Scalar;
            (1.0 + v, [v * 0.1, -v * 0.05, 0.02 * v])
        };
        let reference = reference_run::<L>(global, &flags, &coll, steps, init);

        let flags_ref = &flags;
        let out = World::new(nranks).run(|comm| {
            let mut s = DistributedSolver::<L>::builder(&comm, global, flags_ref, coll)
                .exchange(mode)
                .build();
            s.initialize_with(init);
            s.run(steps).unwrap();
            s.gather_populations().unwrap()
        });
        let gathered = out[0].as_ref().expect("rank 0 gathers");
        // Exact when dispatch has scalar semantics; under auto-selected AVX2
        // the fused multiply-adds differ from the serial reference by rounding.
        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        for cell in 0..global.cells() {
            for q in 0..L::Q {
                let (r, g) = (reference.get(cell, q), gathered.get(cell, q));
                assert!(
                    (r - g).abs() < tol,
                    "cell {cell} q {q}: reference {r}, distributed {g}"
                );
            }
        }
    }

    /// Run the same problem distributed under AA-pattern storage and compare
    /// the gathered canonical field against the serial AB reference on every
    /// fluid cell (solid cells hold scheme-dependent mailbox leftovers).
    fn check_aa_distributed_matches_reference<L: Lattice>(
        global: GridDims,
        flags: FlagField,
        nranks: usize,
        mode: ExchangeMode,
        steps: u64,
    ) {
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        let init = |x: usize, y: usize, z: usize| {
            let v = 0.01 * ((x * 7 + y * 3 + z) % 11) as Scalar;
            (1.0 + v, [v * 0.1, -v * 0.05, 0.02 * v])
        };
        let reference = reference_run::<L>(global, &flags, &coll, steps, init);

        let flags_ref = &flags;
        let out = World::new(nranks).run(|comm| {
            let mut s = DistributedSolver::<L>::builder(&comm, global, flags_ref, coll)
                .exchange(mode)
                .storage(StorageScheme::Aa)
                .build();
            s.initialize_with(init);
            s.run(steps).unwrap();
            s.gather_populations().unwrap()
        });
        let gathered = out[0].as_ref().expect("rank 0 gathers");
        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        for cell in 0..global.cells() {
            if !flags.kind(cell).is_fluid() {
                continue;
            }
            for q in 0..L::Q {
                let (r, g) = (reference.get(cell, q), gathered.get(cell, q));
                assert!(
                    (r - g).abs() < tol,
                    "cell {cell} q {q}: reference {r}, AA-distributed {g}"
                );
            }
        }
    }

    #[test]
    fn aa_single_rank_matches_reference_both_parities() {
        // 5 steps end on the Streamed parity (gather canonicalizes in place),
        // 6 on Reversed (gather un-reverses); both must match AB.
        let global = GridDims::new(6, 6, 3);
        for steps in [5, 6] {
            let mut flags = FlagField::new(global);
            flags.set_box_walls();
            check_aa_distributed_matches_reference::<D3Q19>(
                global,
                flags,
                1,
                ExchangeMode::Sequential,
                steps,
            );
        }
    }

    #[test]
    fn aa_four_ranks_matches_reference_3d_both_modes() {
        let global = GridDims::new(8, 8, 4);
        for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
            let mut flags = FlagField::new(global);
            flags.set_box_walls();
            flags.set(4, 4, 2, swlb_core::boundary::NodeKind::Wall);
            check_aa_distributed_matches_reference::<D3Q19>(global, flags, 4, mode, 5);
        }
    }

    #[test]
    fn aa_six_ranks_periodic_2d_matches_reference() {
        let global = GridDims::new2d(12, 9);
        let flags = FlagField::new(global);
        check_aa_distributed_matches_reference::<D2Q9>(global, flags, 6, ExchangeMode::OnTheFly, 5);
    }

    #[test]
    fn aa_two_ranks_wraparound_neighbors() {
        // px = 2: the post-exchange self-send must route wrapped ghost
        // scatters back into the correct owned strips.
        let global = GridDims::new2d(8, 4);
        let flags = FlagField::new(global);
        check_aa_distributed_matches_reference::<D2Q9>(
            global,
            flags,
            2,
            ExchangeMode::Sequential,
            5,
        );
    }

    #[test]
    fn aa_degenerate_subdomains_match_reference() {
        // 6 ranks on 6×4 leave subdomains with lnx ≤ 2: the inner rectangle
        // is empty and the whole odd step runs on the ring path.
        let global = GridDims::new2d(6, 4);
        let flags = FlagField::new(global);
        check_aa_distributed_matches_reference::<D2Q9>(global, flags, 6, ExchangeMode::OnTheFly, 6);
    }

    #[test]
    fn aa_uneven_partition_matches_reference() {
        let global = GridDims::new(10, 7, 3);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        check_aa_distributed_matches_reference::<D3Q19>(
            global,
            flags,
            3,
            ExchangeMode::Sequential,
            4,
        );
    }

    #[test]
    fn aa_modes_are_bit_identical() {
        let global = GridDims::new(9, 8, 3);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        flags.paint_lid([0.06, 0.0, 0.0]);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.7));
        let flags_ref = &flags;
        let run = |mode: ExchangeMode| {
            World::new(4).run(|comm| {
                let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                    .exchange(mode)
                    .storage(StorageScheme::Aa)
                    .build();
                s.initialize_uniform(1.0, [0.0; 3]);
                s.run(5).unwrap();
                s.gather_populations().unwrap()
            })
        };
        let a = run(ExchangeMode::Sequential);
        let b = run(ExchangeMode::OnTheFly);
        let (fa, fb) = (a[0].as_ref().unwrap(), b[0].as_ref().unwrap());
        for cell in 0..global.cells() {
            for q in 0..19 {
                assert_eq!(fa.get(cell, q), fb.get(cell, q), "cell {cell} q {q}");
            }
        }
    }

    #[test]
    fn aa_global_mass_conserved_at_both_parities() {
        let global = GridDims::new2d(12, 12);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        flags.paint_lid([0.05, 0.0, 0.0]);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));
        let flags_ref = &flags;
        let masses = World::new(4).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::OnTheFly)
                .storage(StorageScheme::Aa)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let m0 = s.global_mass().unwrap();
            s.run(7).unwrap(); // odd count: mass measured at Streamed parity
            assert_eq!(s.parity(), Some(AaParity::Streamed));
            let m1 = s.global_mass().unwrap();
            s.run(1).unwrap(); // and again at Reversed
            assert_eq!(s.parity(), Some(AaParity::Reversed));
            let m2 = s.global_mass().unwrap();
            (m0, m1, m2)
        });
        for (m0, m1, m2) in masses {
            assert!((m0 - m1).abs() / m0 < 1e-12, "mass drift {m0} → {m1}");
            assert!((m0 - m2).abs() / m0 < 1e-12, "mass drift {m0} → {m2}");
        }
    }

    #[test]
    fn aa_rejects_open_boundaries_with_typed_error() {
        let global = GridDims::new(8, 8, 4);
        let mut flags = FlagField::new(global);
        flags.paint_channel_walls_y();
        flags.paint_inflow_outflow_x(1.0, [0.04, 0.0, 0.0]);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        let flags_ref = &flags;
        let errs = World::new(2).run(|comm| {
            DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                .storage(StorageScheme::Aa)
                .try_build()
                .err()
        });
        for e in errs {
            match e {
                Some(SwlbError::InvalidConfig(msg)) => {
                    assert!(msg.contains("AA-pattern"), "unexpected message: {msg}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_rank_matches_reference() {
        let global = GridDims::new(6, 6, 3);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        check_distributed_matches_reference::<D3Q19>(global, flags, 1, ExchangeMode::Sequential, 4);
    }

    #[test]
    fn four_ranks_sequential_matches_reference_3d() {
        let global = GridDims::new(8, 8, 4);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        flags.set(4, 4, 2, swlb_core::boundary::NodeKind::Wall);
        check_distributed_matches_reference::<D3Q19>(global, flags, 4, ExchangeMode::Sequential, 5);
    }

    #[test]
    fn four_ranks_on_the_fly_matches_reference_3d() {
        let global = GridDims::new(8, 8, 4);
        let mut flags = FlagField::new(global);
        flags.paint_channel_walls_y();
        flags.paint_inflow_outflow_x(1.0, [0.04, 0.0, 0.0]);
        check_distributed_matches_reference::<D3Q19>(global, flags, 4, ExchangeMode::OnTheFly, 5);
    }

    #[test]
    fn six_ranks_periodic_2d_matches_reference() {
        let global = GridDims::new2d(12, 9);
        let flags = FlagField::new(global);
        check_distributed_matches_reference::<D2Q9>(global, flags, 6, ExchangeMode::OnTheFly, 6);
    }

    #[test]
    fn uneven_partition_matches_reference() {
        // 10 is not divisible by 3: block sizes 4/3/3 exercise the uneven path.
        let global = GridDims::new(10, 7, 3);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        check_distributed_matches_reference::<D3Q19>(global, flags, 3, ExchangeMode::Sequential, 4);
    }

    #[test]
    fn two_ranks_with_wraparound_neighbors() {
        // px = 2: east and west neighbor are the same rank; periodic exchange
        // must still route the strips to the correct halos.
        let global = GridDims::new2d(8, 4);
        let flags = FlagField::new(global);
        check_distributed_matches_reference::<D2Q9>(global, flags, 2, ExchangeMode::Sequential, 5);
    }

    #[test]
    fn sequential_and_on_the_fly_are_bit_identical() {
        let global = GridDims::new(9, 8, 3);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        flags.paint_lid([0.06, 0.0, 0.0]);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.7));
        let flags_ref = &flags;

        let run = |mode: ExchangeMode| {
            World::new(4).run(|comm| {
                let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                    .exchange(mode)
                    .build();
                s.initialize_uniform(1.0, [0.0; 3]);
                s.run(6).unwrap();
                s.gather_populations().unwrap()
            })
        };
        let a = run(ExchangeMode::Sequential);
        let b = run(ExchangeMode::OnTheFly);
        let (fa, fb) = (a[0].as_ref().unwrap(), b[0].as_ref().unwrap());
        for cell in 0..global.cells() {
            for q in 0..19 {
                assert_eq!(fa.get(cell, q), fb.get(cell, q), "cell {cell} q {q}");
            }
        }
    }

    #[test]
    fn global_mass_is_conserved_across_ranks() {
        let global = GridDims::new2d(12, 12);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        flags.paint_lid([0.05, 0.0, 0.0]);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));
        let flags_ref = &flags;
        let masses = World::new(4).run(|comm| {
            let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::OnTheFly)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            let m0 = s.global_mass().unwrap();
            s.run(20).unwrap();
            let m1 = s.global_mass().unwrap();
            (m0, m1)
        });
        for (m0, m1) in masses {
            assert!((m0 - m1).abs() / m0 < 1e-12, "mass drift {m0} → {m1}");
        }
    }

    #[test]
    fn flag_mutation_rebuilds_interior_index_and_reports_kernel_class() {
        let global = GridDims::new(10, 10, 12);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        let flags_ref = &flags;
        let out = World::new(1).run(|comm| {
            let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::OnTheFly)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.step().unwrap();
            let class_before = s.last_kernel_class();
            let runs_before = s.interior.runs().run_count();
            // Carve an obstacle out of the inner rectangle through the public
            // mutator; the next step must pick it up (more runs, fewer active
            // cells) without an explicit rebuild call.
            // Mid-pencil in z: the excluded 1-neighborhood leaves interior
            // cells on both sides, so the pencil splits into two runs.
            s.local_flags_mut()
                .set(5, 5, 5, swlb_core::boundary::NodeKind::Wall);
            let active_before = s.active;
            s.step().unwrap();
            (
                class_before,
                runs_before,
                s.interior.runs().run_count(),
                active_before,
                s.active,
                s.last_kernel_class(),
            )
        });
        let (class_before, runs_before, runs_after, active_before, active_after, class_after) =
            out[0];
        assert_eq!(class_before, swlb_core::simd::selected_kernel_class());
        assert_ne!(class_before, KernelClass::Generic);
        assert_eq!(class_after, class_before);
        assert!(runs_after > runs_before, "wall must split a z-run");
        assert_eq!(active_after, active_before - 1);
    }

    /// Distributed depth-k run vs the serial per-step reference. Exact on
    /// scalar-semantics lanes; the dispatch tolerance absorbs fast/generic
    /// path differences at the redundantly recomputed ghost borders.
    fn check_blocked_matches_reference<L: Lattice>(
        global: GridDims,
        flags: FlagField,
        nranks: usize,
        mode: ExchangeMode,
        scheme: StorageScheme,
        time_block: usize,
        steps: u64,
    ) {
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        let init = |x: usize, y: usize, z: usize| {
            let v = 0.01 * ((x * 7 + y * 3 + z) % 11) as Scalar;
            (1.0 + v, [v * 0.1, -v * 0.05, 0.02 * v])
        };
        let reference = reference_run::<L>(global, &flags, &coll, steps, init);

        let flags_ref = &flags;
        let out = World::new(nranks).run(|comm| {
            let mut s = DistributedSolver::<L>::builder(&comm, global, flags_ref, coll)
                .exchange(mode)
                .storage(scheme)
                .time_block(time_block)
                .build();
            s.initialize_with(init);
            s.run(steps).unwrap();
            s.gather_populations().unwrap()
        });
        let gathered = out[0].as_ref().expect("rank 0 gathers");
        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        for cell in 0..global.cells() {
            if scheme == StorageScheme::Aa && !flags.kind(cell).is_fluid() {
                continue;
            }
            for q in 0..L::Q {
                let (r, g) = (reference.get(cell, q), gathered.get(cell, q));
                assert!(
                    (r - g).abs() < tol,
                    "k={time_block} {scheme:?} {mode:?} cell {cell} q {q}: \
                     reference {r}, blocked {g}"
                );
            }
        }
    }

    #[test]
    fn blocked_ab_matches_reference_both_modes() {
        let global = GridDims::new(8, 8, 4);
        for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
            for k in [2usize, 4] {
                let mut flags = FlagField::new(global);
                flags.set_box_walls();
                flags.set(4, 4, 2, swlb_core::boundary::NodeKind::Wall);
                check_blocked_matches_reference::<D3Q19>(
                    global,
                    flags,
                    4,
                    mode,
                    StorageScheme::Ab,
                    k,
                    8,
                );
            }
        }
    }

    #[test]
    fn blocked_aa_matches_reference_both_modes() {
        let global = GridDims::new(8, 8, 4);
        for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
            for k in [2usize, 4] {
                let mut flags = FlagField::new(global);
                flags.set_box_walls();
                flags.set(4, 4, 2, swlb_core::boundary::NodeKind::Wall);
                check_blocked_matches_reference::<D3Q19>(
                    global,
                    flags,
                    4,
                    mode,
                    StorageScheme::Aa,
                    k,
                    8,
                );
            }
        }
    }

    #[test]
    fn blocked_run_may_end_mid_block() {
        // Owned cells are valid after every intra-block step, so a step count
        // that is not a multiple of k still gathers the exact state.
        let global = GridDims::new(8, 8, 4);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        check_blocked_matches_reference::<D3Q19>(
            global,
            flags,
            4,
            ExchangeMode::OnTheFly,
            StorageScheme::Ab,
            4,
            7,
        );
    }

    #[test]
    fn blocked_degenerate_subdomains_use_multiple_rounds() {
        // 6 ranks on 6x4: every subdomain is 2x2, so an h=4 ring needs
        // R = ceil(4/2) = 2 exchange rounds per block.
        let global = GridDims::new(6, 4, 3);
        for scheme in [StorageScheme::Ab, StorageScheme::Aa] {
            let mut flags = FlagField::new(global);
            flags.set_box_walls();
            check_blocked_matches_reference::<D3Q19>(
                global,
                flags,
                6,
                ExchangeMode::Sequential,
                scheme,
                4,
                8,
            );
        }
    }

    #[test]
    fn blocked_2d_periodic_matches_reference() {
        // Fully periodic D2Q9 with wraparound neighbors exercises the
        // deep-ring ghost sampling across the domain edge.
        let global = GridDims::new2d(9, 8);
        check_blocked_matches_reference::<D2Q9>(
            global,
            FlagField::new(global),
            2,
            ExchangeMode::OnTheFly,
            StorageScheme::Ab,
            2,
            6,
        );
    }

    #[test]
    fn blocked_halo_messages_drop_by_exactly_k() {
        // 8 sends per exchange; blocking exchanges once per k steps, so the
        // per-step message count falls by exactly k for both schemes.
        let global = GridDims::new(8, 8, 4);
        let steps = 8u64;
        let count = |scheme: StorageScheme, k: usize| -> u64 {
            let mut flags = FlagField::new(global);
            flags.set_box_walls();
            let flags_ref = &flags;
            let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
            let out = World::new(4).run(|comm| {
                let rec = Recorder::enabled();
                let msgs = rec.counter("halo.messages");
                let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                    .storage(scheme)
                    .time_block(k)
                    .recorder(rec)
                    .build();
                s.initialize_uniform(1.0, [0.0; 3]);
                s.run(steps).unwrap();
                msgs.get()
            });
            out.iter().sum()
        };
        for scheme in [StorageScheme::Ab, StorageScheme::Aa] {
            let base = count(scheme, 1);
            for k in [2u64, 4] {
                let blocked = count(scheme, k as usize);
                assert_eq!(
                    blocked * k,
                    base,
                    "{scheme:?}: k={k} must cut messages by exactly {k}x \
                     ({base} -> {blocked})"
                );
            }
        }
    }

    #[test]
    fn blocked_builder_rejects_odd_aa_depth() {
        let global = GridDims::new(8, 8, 4);
        let flags = FlagField::new(global);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        World::new(1).run(|comm| {
            let err = DistributedSolver::<D3Q19>::builder(&comm, global, &flags, coll)
                .storage(StorageScheme::Aa)
                .time_block(3)
                .try_build()
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, SwlbError::InvalidConfig(_)), "{err}");
            let err = DistributedSolver::<D3Q19>::builder(&comm, global, &flags, coll)
                .time_block(0)
                .try_build()
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, SwlbError::InvalidConfig(_)), "{err}");
        });
    }

    #[test]
    fn blocked_restore_resumes_at_block_boundary() {
        // Capture mid-run, restore into a blocked solver, continue: the
        // restore resets the intra-block phase, so the continuation
        // re-exchanges before reading ghosts and still matches the reference.
        let global = GridDims::new(8, 8, 4);
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        let init = |x: usize, y: usize, z: usize| {
            let v = 0.01 * ((x * 7 + y * 3 + z) % 11) as Scalar;
            (1.0 + v, [v * 0.1, -v * 0.05, 0.02 * v])
        };
        let reference = reference_run::<D3Q19>(global, &flags, &coll, 10, init);
        let flags_ref = &flags;
        let out = World::new(4).run(|comm| {
            let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                .time_block(2)
                .build();
            s.initialize_with(init);
            s.run(6).unwrap();
            assert_eq!(s.block_phase(), 0, "6 steps = 3 whole blocks");
            let ck = s.capture_chunked().unwrap();
            // Wreck the live state, then roll back to the checkpoint.
            s.local_populations_mut().raw_mut().fill(7.0);
            s.bump_epoch();
            s.restore_chunked(ck.as_ref()).unwrap();
            s.run(4).unwrap();
            s.gather_populations().unwrap()
        });
        let gathered = out[0].as_ref().expect("rank 0 gathers");
        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        for cell in 0..global.cells() {
            for q in 0..D3Q19::Q {
                let (r, g) = (reference.get(cell, q), gathered.get(cell, q));
                assert!((r - g).abs() < tol, "cell {cell} q {q}: {r} vs {g}");
            }
        }
    }
}
