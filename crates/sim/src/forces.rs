//! Momentum-exchange force evaluation on immersed obstacles.
//!
//! The paper's engineering cases report resistance/drag on bodies (Suboff §V-B,
//! cylinder §V-A). The standard LBM observable is the **momentum-exchange
//! method** over bounce-back links: for every fluid cell `x` with a solid
//! neighbor at `x + c_q`, the outgoing packet `f_q(x)` (momentum `c_q f_q`)
//! bounces back with reversed velocity (momentum `−c_q f_q`, plus the
//! moving-wall correction), so the wall gains
//!
//! ```text
//! ΔP = c_q · ( 2 f_q(x) − 6 w_q ρ₀ (c_q · u_w) )
//! ```
//!
//! per link and step, evaluated on the post-collision state — exactly what the
//! A-B buffers hold between steps. (Note it is `2 f_q`, *not* `f_q + f_opp`:
//! the same-time opposite population is not the bounced packet, and using it
//! systematically under-predicts drag on the upstream face.)

use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::kernels::MAX_Q;
use swlb_core::lattice::Lattice;
use swlb_core::layout::PopField;
use swlb_core::Scalar;

/// Total momentum-exchange force on all solid nodes inside `region` (local
/// coordinates, half-open ranges; pass the full grid to integrate everything).
///
/// Returns the force vector in lattice units (mass · cells / step²).
pub fn momentum_exchange_force_region<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    field: &F,
    xr: std::ops::Range<usize>,
    yr: std::ops::Range<usize>,
) -> [Scalar; 3] {
    let dims = flags.dims();
    let mut force = [0.0; 3];
    let mut f = [0.0; MAX_Q];
    for y in yr {
        for x in xr.clone() {
            for z in 0..dims.nz {
                let cell = dims.idx(x, y, z);
                if !flags.kind(cell).is_fluid() {
                    continue;
                }
                field.load_cell(cell, &mut f[..L::Q]);
                for q in 1..L::Q {
                    let c = L::C[q];
                    let [nx, ny, nz] = dims.neighbor_periodic(x, y, z, c);
                    let nkind = flags.kind(dims.idx(nx, ny, nz));
                    if nkind.is_solid() {
                        let mut transfer = 2.0 * f[q];
                        if let swlb_core::boundary::NodeKind::MovingWall { u } = nkind {
                            let cu = c[0] as Scalar * u[0]
                                + c[1] as Scalar * u[1]
                                + c[2] as Scalar * u[2];
                            transfer -= 6.0 * L::W[q] * cu;
                        }
                        force[0] += c[0] as Scalar * transfer;
                        force[1] += c[1] as Scalar * transfer;
                        force[2] += c[2] as Scalar * transfer;
                    }
                }
            }
        }
    }
    force
}

/// Momentum-exchange force over the whole grid.
pub fn momentum_exchange_force<L: Lattice, F: PopField<L>>(
    flags: &FlagField,
    field: &F,
) -> [Scalar; 3] {
    let dims = flags.dims();
    momentum_exchange_force_region::<L, F>(flags, field, 0..dims.nx, 0..dims.ny)
}

/// Drag coefficient from a force component: `C_d = 2 F / (ρ U² A)`.
pub fn drag_coefficient(force: Scalar, rho: Scalar, u: Scalar, frontal_area: Scalar) -> Scalar {
    if rho <= 0.0 || u.abs() < 1e-300 || frontal_area <= 0.0 {
        return 0.0;
    }
    2.0 * force / (rho * u * u * frontal_area)
}

/// Dimensionless vortex-shedding frequency: `St = f · D / U`.
pub fn strouhal_number(shedding_freq: Scalar, diameter: Scalar, u: Scalar) -> Scalar {
    if u.abs() < 1e-300 {
        return 0.0;
    }
    shedding_freq * diameter / u
}

/// Estimate the dominant oscillation frequency of a signal sampled once per
/// step, by counting mean crossings (robust for the near-sinusoidal lift
/// signal of vortex shedding). Returns cycles per step.
pub fn dominant_frequency(signal: &[Scalar]) -> Scalar {
    if signal.len() < 4 {
        return 0.0;
    }
    let mean = signal.iter().sum::<Scalar>() / signal.len() as Scalar;
    let mut crossings = 0usize;
    let mut first = None;
    let mut last = 0usize;
    for i in 1..signal.len() {
        if (signal[i - 1] - mean) <= 0.0 && (signal[i] - mean) > 0.0 {
            crossings += 1;
            if first.is_none() {
                first = Some(i);
            }
            last = i;
        }
    }
    match (first, crossings) {
        (Some(f), c) if c >= 2 => (c - 1) as Scalar / (last - f) as Scalar,
        _ => 0.0,
    }
}

/// Strongest spectral peak of a signal within a frequency band (cycles per
/// sample), via direct DFT.
///
/// Confined LBM channels are acoustic cavities: the transverse standing wave
/// at `f = c_s / (2 H)` rings for ~1e5 steps and can dominate the raw lift
/// signal. Since that resonance frequency is known *a priori*, restricting the
/// search band below it isolates the physical vortex-shedding peak. Returns
/// `None` when the signal is too short or the band is empty.
pub fn spectral_peak_frequency(signal: &[Scalar], f_min: Scalar, f_max: Scalar) -> Option<Scalar> {
    let n = signal.len();
    if n < 16 {
        return None;
    }
    let mean = signal.iter().sum::<Scalar>() / n as Scalar;
    let k_min = ((f_min * n as Scalar).ceil() as usize).max(1);
    let k_max = ((f_max * n as Scalar).floor() as usize).min(n / 2);
    if k_min > k_max {
        return None;
    }
    let mut best: Option<(Scalar, usize)> = None;
    for k in k_min..=k_max {
        let (mut re, mut im) = (0.0, 0.0);
        for (i, &v) in signal.iter().enumerate() {
            let phase = std::f64::consts::TAU * k as Scalar * i as Scalar / n as Scalar;
            re += (v - mean) * phase.cos();
            im += (v - mean) * phase.sin();
        }
        let amp = re.hypot(im);
        if best.map(|(a, _)| amp > a).unwrap_or(true) {
            best = Some((amp, k));
        }
    }
    best.map(|(_, k)| k as Scalar / n as Scalar)
}

/// Frontal area of a cylinder of diameter `d` spanning `nz` cells.
pub fn cylinder_frontal_area(d: Scalar, dims: GridDims) -> Scalar {
    d * dims.nz as Scalar
}

#[cfg(test)]
mod tests {
    use super::*;
    use swlb_core::collision::{BgkParams, CollisionKind};
    use swlb_core::kernels::{fused_step, initialize_equilibrium};
    use swlb_core::lattice::D2Q9;
    use swlb_core::layout::SoaField;
    use swlb_core::prelude::NodeKind;

    #[test]
    fn fluid_at_rest_exerts_no_net_force() {
        let dims = GridDims::new2d(10, 10);
        let mut flags = FlagField::new(dims);
        flags.set_box_walls();
        flags.set(5, 5, 0, NodeKind::Wall);
        let mut field = SoaField::<D2Q9>::new(dims);
        initialize_equilibrium::<D2Q9, _>(&flags, &mut field, 1.0, [0.0; 3]);
        let f = momentum_exchange_force::<D2Q9, _>(&flags, &field);
        for a in 0..3 {
            assert!(f[a].abs() < 1e-12, "axis {a}: {}", f[a]);
        }
    }

    #[test]
    fn uniform_flow_pushes_obstacle_downstream() {
        // A plate in a uniform +x stream must feel +x force.
        let dims = GridDims::new2d(16, 12);
        let mut flags = FlagField::new(dims);
        for y in 3..9 {
            flags.set(8, y, 0, NodeKind::Wall);
        }
        let mut src = SoaField::<D2Q9>::new(dims);
        initialize_equilibrium::<D2Q9, _>(&flags, &mut src, 1.0, [0.08, 0.0, 0.0]);
        let mut dst = SoaField::<D2Q9>::new(dims);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
        for _ in 0..10 {
            fused_step(&flags, &src, &mut dst, &coll);
            std::mem::swap(&mut src, &mut dst);
        }
        let f = momentum_exchange_force::<D2Q9, _>(&flags, &src);
        assert!(f[0] > 1e-6, "drag = {}", f[0]);
        // Symmetric plate: negligible lift.
        assert!(f[1].abs() < f[0] * 0.2, "lift = {} vs drag {}", f[1], f[0]);
    }

    #[test]
    fn region_split_sums_to_total() {
        let dims = GridDims::new2d(12, 12);
        let mut flags = FlagField::new(dims);
        flags.set(6, 6, 0, NodeKind::Wall);
        flags.set(6, 7, 0, NodeKind::Wall);
        let mut src = SoaField::<D2Q9>::new(dims);
        initialize_equilibrium::<D2Q9, _>(&flags, &mut src, 1.0, [0.05, 0.02, 0.0]);
        let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));
        let mut dst = SoaField::<D2Q9>::new(dims);
        fused_step(&flags, &src, &mut dst, &coll);

        let total = momentum_exchange_force::<D2Q9, _>(&flags, &dst);
        let left = momentum_exchange_force_region::<D2Q9, _>(&flags, &dst, 0..6, 0..12);
        let right = momentum_exchange_force_region::<D2Q9, _>(&flags, &dst, 6..12, 0..12);
        for a in 0..3 {
            assert!((total[a] - left[a] - right[a]).abs() < 1e-13);
        }
    }

    #[test]
    fn drag_coefficient_normalization() {
        assert!((drag_coefficient(1.0, 1.0, 1.0, 2.0) - 1.0).abs() < 1e-15);
        assert!((drag_coefficient(0.5, 1.0, 0.5, 4.0) - 1.0).abs() < 1e-15);
        assert_eq!(drag_coefficient(1.0, 1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn strouhal_normalization() {
        assert!((strouhal_number(0.02, 10.0, 1.0) - 0.2).abs() < 1e-15);
        assert_eq!(strouhal_number(1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn spectral_peak_finds_the_slow_mode_under_a_fast_one() {
        // Slow physical mode at f = 0.01 buried under a strong fast resonance
        // at f = 0.06: the band-limited search must recover the slow one.
        let n = 600;
        let signal: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                0.3 * (std::f64::consts::TAU * 0.01 * t).sin()
                    + 1.5 * (std::f64::consts::TAU * 0.06 * t).sin()
            })
            .collect();
        // Unrestricted: finds the strong fast mode.
        let f_all = spectral_peak_frequency(&signal, 0.0, 0.5).unwrap();
        assert!((f_all - 0.06).abs() < 0.005, "f_all = {f_all}");
        // Band-limited below the resonance: finds the physical mode.
        let f_phys = spectral_peak_frequency(&signal, 0.0, 0.04).unwrap();
        assert!((f_phys - 0.01).abs() < 0.003, "f_phys = {f_phys}");
        // Degenerate inputs.
        assert_eq!(spectral_peak_frequency(&signal[..8], 0.0, 0.5), None);
        assert_eq!(spectral_peak_frequency(&signal, 0.4, 0.1), None);
    }

    #[test]
    fn dominant_frequency_of_a_sine() {
        // Period 50 steps over 400 samples.
        let signal: Vec<f64> = (0..400)
            .map(|i| (i as f64 * std::f64::consts::TAU / 50.0).sin())
            .collect();
        let f = dominant_frequency(&signal);
        assert!((f - 0.02).abs() < 0.002, "f = {f}");
        // Constant signal has no frequency.
        assert_eq!(dominant_frequency(&vec![1.0; 100]), 0.0);
        assert_eq!(dominant_frequency(&[1.0, 2.0]), 0.0);
    }
}
