//! Reusable case construction: one validated description of "a simulation"
//! that front-ends can build solvers from.
//!
//! The `swlb` CLI historically inlined its case setup (paint walls, paint lid,
//! initialize, run); the serving layer (`swlb-serve`) needs the same setups
//! driven programmatically — build a solver from a job's spec, slice it, drop
//! it on preemption, and rebuild it later from a checkpoint. [`CaseSpec`] is
//! that description and [`CaseSolver`] the lattice-erased solver it builds:
//! the enum closes over the lattice type parameter so a scheduler can hold
//! jobs of mixed lattices in one queue.

use swlb_core::collision::BgkParams;
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::{D2Q9, D3Q19};
use swlb_core::layout::{PopField, StorageScheme};
use swlb_core::parallel::ThreadPool;
use swlb_core::simd::KernelClass;
use swlb_core::solver::{Solver, StepStats};
use swlb_core::Scalar;
use swlb_io::checkpoint::{SCHEME_AA, SCHEME_AB};
use swlb_io::Checkpoint;
use swlb_obs::{Recorder, SwlbError};

/// Lattice family a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeKind {
    /// 2-D, 9 discrete velocities.
    D2Q9,
    /// 3-D, 19 discrete velocities (the paper's production lattice).
    D3Q19,
}

impl LatticeKind {
    /// Populations per cell.
    pub fn q(self) -> u32 {
        match self {
            LatticeKind::D2Q9 => 9,
            LatticeKind::D3Q19 => 19,
        }
    }

    /// Canonical lowercase name (wire format).
    pub fn name(self) -> &'static str {
        match self {
            LatticeKind::D2Q9 => "d2q9",
            LatticeKind::D3Q19 => "d3q19",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "d2q9" => Some(LatticeKind::D2Q9),
            "d3q19" => Some(LatticeKind::D3Q19),
            _ => None,
        }
    }
}

/// Built-in case families (the boundary/initialization recipes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Lid-driven cavity: sealed box, moving lid.
    Cavity,
    /// Channel: y-walls, density inflow/outflow in x.
    Channel,
    /// Taylor–Green vortex: fully periodic decaying vortices.
    TaylorGreen,
}

impl CaseKind {
    /// Canonical lowercase name (wire format).
    pub fn name(self) -> &'static str {
        match self {
            CaseKind::Cavity => "cavity",
            CaseKind::Channel => "channel",
            CaseKind::TaylorGreen => "taylor-green",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cavity" => Some(CaseKind::Cavity),
            "channel" => Some(CaseKind::Channel),
            "taylor-green" => Some(CaseKind::TaylorGreen),
            _ => None,
        }
    }
}

/// Everything needed to (re)build a case solver, independent of any front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Boundary/initialization recipe.
    pub case: CaseKind,
    /// Lattice family.
    pub lattice: LatticeKind,
    /// Grid extent (nz is forced to 1 for 2-D lattices).
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// BGK relaxation time.
    pub tau: Scalar,
    /// Driving velocity magnitude (lattice units).
    pub u_lattice: Scalar,
    /// Population storage scheme (two-grid AB or single-grid AA). AA halves
    /// the job's resident footprint but supports closed boundaries only, so
    /// [`CaseKind::Channel`] (inflow/outflow) must run under AB.
    pub storage: StorageScheme,
}

/// Cell-count admission cap: a service must bound the memory one job can
/// demand (a 256³ D3Q19 job is ~2.5 GiB of population storage per buffer).
pub const MAX_CELLS: usize = 4 << 20;

impl CaseSpec {
    /// Effective grid dims (z collapsed for 2-D lattices).
    pub fn dims(&self) -> GridDims {
        match self.lattice {
            LatticeKind::D2Q9 => GridDims::new2d(self.nx, self.ny),
            LatticeKind::D3Q19 => GridDims::new(self.nx, self.ny, self.nz),
        }
    }

    /// Validate physics and admission bounds without building anything.
    pub fn validate(&self) -> Result<(), SwlbError> {
        BgkParams::try_from_tau(self.tau)?;
        let need_z = matches!(self.lattice, LatticeKind::D3Q19);
        if self.nx < 3 || self.ny < 3 || (need_z && self.nz < 3) {
            return Err(SwlbError::InvalidDims(format!(
                "case grid {}x{}x{} too small (each extent must be >= 3)",
                self.nx, self.ny, self.nz
            )));
        }
        let cells = self.dims().cells();
        if cells > MAX_CELLS {
            return Err(SwlbError::InvalidConfig(format!(
                "case has {cells} cells, above the admission cap of {MAX_CELLS}"
            )));
        }
        if !(0.0..0.3).contains(&self.u_lattice.abs()) {
            return Err(SwlbError::InvalidConfig(format!(
                "u_lattice {} outside the low-Mach range |u| < 0.3",
                self.u_lattice
            )));
        }
        if self.storage == StorageScheme::Aa && self.case == CaseKind::Channel {
            return Err(SwlbError::InvalidConfig(
                "AA-pattern storage supports closed boundaries only; the channel \
                 case paints inflow/outflow nodes and must run under StorageScheme::Ab"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Build a painted, initialized solver running on `pool` and reporting
    /// into `recorder`.
    pub fn build(&self, pool: ThreadPool, recorder: Recorder) -> Result<CaseSolver, SwlbError> {
        self.validate()?;
        let params = BgkParams::try_from_tau(self.tau)?;
        match self.lattice {
            LatticeKind::D2Q9 => {
                let mut s = Solver::<D2Q9>::builder(self.dims(), params)
                    .pool(pool)
                    .recorder(recorder)
                    .storage(self.storage)
                    .try_build()?;
                self.paint(&mut s);
                Ok(CaseSolver::D2(s))
            }
            LatticeKind::D3Q19 => {
                let mut s = Solver::<D3Q19>::builder(self.dims(), params)
                    .pool(pool)
                    .recorder(recorder)
                    .storage(self.storage)
                    .try_build()?;
                self.paint(&mut s);
                Ok(CaseSolver::D3(s))
            }
        }
    }

    fn paint<L: swlb_core::lattice::Lattice>(&self, s: &mut Solver<L>) {
        let u = self.u_lattice;
        match self.case {
            CaseKind::Cavity => {
                s.flags_mut().set_box_walls();
                s.flags_mut().paint_lid([u, 0.0, 0.0]);
                s.initialize_uniform(1.0, [0.0; 3]);
            }
            CaseKind::Channel => {
                s.flags_mut().paint_channel_walls_y();
                s.flags_mut().paint_inflow_outflow_x(1.0, [u, 0.0, 0.0]);
                s.initialize_uniform(1.0, [u, 0.0, 0.0]);
            }
            CaseKind::TaylorGreen => {
                let k = std::f64::consts::TAU / self.nx as Scalar;
                s.initialize_field(|x, y, _| {
                    let (xs, ys) = (x as Scalar * k, y as Scalar * k);
                    (
                        1.0 - 0.75 * u * u * ((2.0 * xs).cos() + (2.0 * ys).cos()),
                        [u * xs.sin() * ys.cos(), -u * xs.cos() * ys.sin(), 0.0],
                    )
                });
            }
        }
    }
}

/// A lattice-erased case solver: the unit a job scheduler slices, checkpoints,
/// drops, and rebuilds.
pub enum CaseSolver {
    /// 2-D solver.
    D2(Solver<D2Q9>),
    /// 3-D solver.
    D3(Solver<D3Q19>),
}

impl CaseSolver {
    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        match self {
            CaseSolver::D2(s) => s.step_count(),
            CaseSolver::D3(s) => s.step_count(),
        }
    }

    /// Grid dims.
    pub fn dims(&self) -> GridDims {
        match self {
            CaseSolver::D2(s) => s.dims(),
            CaseSolver::D3(s) => s.dims(),
        }
    }

    /// Fluid-cell count (MLUPS accounting).
    pub fn active_cells(&self) -> usize {
        match self {
            CaseSolver::D2(s) => s.active_cells(),
            CaseSolver::D3(s) => s.active_cells(),
        }
    }

    /// Kernel class that served the latest step.
    pub fn last_kernel_class(&self) -> KernelClass {
        match self {
            CaseSolver::D2(s) => s.last_kernel_class(),
            CaseSolver::D3(s) => s.last_kernel_class(),
        }
    }

    /// Summary statistics of the current state.
    pub fn stats(&self) -> StepStats {
        match self {
            CaseSolver::D2(s) => s.stats(),
            CaseSolver::D3(s) => s.stats(),
        }
    }

    /// The flag field (e.g. for force evaluation).
    pub fn flags(&self) -> &FlagField {
        match self {
            CaseSolver::D2(s) => s.flags(),
            CaseSolver::D3(s) => s.flags(),
        }
    }

    /// Advance `n` steps with divergence checks every `check_every` steps.
    pub fn run_checked(&mut self, n: u64, check_every: u64) -> Result<(), SwlbError> {
        match self {
            CaseSolver::D2(s) => s.run_checked(n, check_every),
            CaseSolver::D3(s) => s.run_checked(n, check_every),
        }
    }

    /// Whether the current state contains NaN/Inf.
    pub fn has_non_finite(&self) -> bool {
        match self {
            CaseSolver::D2(s) => s.macroscopic().has_non_finite(),
            CaseSolver::D3(s) => s.macroscopic().has_non_finite(),
        }
    }

    /// Speed magnitude of the z=0 plane (slice outputs).
    pub fn slice_speed(&self) -> Vec<Scalar> {
        match self {
            CaseSolver::D2(s) => s.macroscopic().slice_xy_speed(0),
            CaseSolver::D3(s) => s.macroscopic().slice_xy_speed(0),
        }
    }

    /// Density field (volume outputs).
    pub fn rho(&self) -> Vec<Scalar> {
        match self {
            CaseSolver::D2(s) => s.macroscopic().rho.clone(),
            CaseSolver::D3(s) => s.macroscopic().rho.clone(),
        }
    }

    /// Storage scheme of the underlying solver.
    pub fn scheme(&self) -> StorageScheme {
        match self {
            CaseSolver::D2(s) => s.scheme(),
            CaseSolver::D3(s) => s.scheme(),
        }
    }

    /// Capture the full population state as a [`Checkpoint`] — the
    /// preemption primitive: save this, drop the solver, rebuild later from
    /// the same [`CaseSpec`] and [`CaseSolver::restore`].
    ///
    /// The payload is always the canonical (AB-convention, post-collision)
    /// state regardless of the solver's storage scheme, so checkpoints are
    /// portable across schemes: an AA job's checkpoint restores into an AB
    /// solver and vice versa. The checkpoint's `scheme` byte records the
    /// producer for provenance; `parity` is always 0 (canonical).
    pub fn capture(&self) -> Checkpoint {
        let dims = self.dims();
        let (q, data) = match self {
            CaseSolver::D2(s) => (9u32, s.canonical_populations().raw().to_vec()),
            CaseSolver::D3(s) => (19u32, s.canonical_populations().raw().to_vec()),
        };
        Checkpoint {
            step: self.step_count(),
            dims: (dims.nx as u32, dims.ny as u32, dims.nz as u32),
            q,
            scheme: match self.scheme() {
                StorageScheme::Ab => SCHEME_AB,
                StorageScheme::Aa => SCHEME_AA,
            },
            parity: 0,
            data,
        }
    }

    /// Restore population state and step count from a checkpoint captured off
    /// a solver built from the same spec.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), SwlbError> {
        let dims = self.dims();
        let want = (dims.nx as u32, dims.ny as u32, dims.nz as u32);
        let q = match self {
            CaseSolver::D2(_) => 9u32,
            CaseSolver::D3(_) => 19u32,
        };
        if ck.dims != want || ck.q != q {
            return Err(SwlbError::CorruptData(format!(
                "checkpoint is {}x{}x{} q{}, solver wants {}x{}x{} q{}",
                ck.dims.0, ck.dims.1, ck.dims.2, ck.q, want.0, want.1, want.2, q
            )));
        }
        match self {
            CaseSolver::D2(s) => s.restore_canonical(&ck.data, ck.step),
            CaseSolver::D3(s) => s.restore_canonical(&ck.data, ck.step),
        }
    }

    /// Fault-injection hook: poison one interior population with NaN so the
    /// next divergence check trips — the job-level analogue of ChaosComm's
    /// corrupt-in-flight faults, used by chaos tests to exercise
    /// rollback-retry supervision.
    pub fn poison_with_nan(&mut self) {
        let d = self.dims();
        // Center cell: guaranteed interior fluid for every case family (walls
        // only ever occupy the outermost shell).
        let cell = d.idx(d.nx / 2, d.ny / 2, d.nz / 2);
        // Slot q=0 is the rest population: under every scheme and parity it
        // is stored at (and read back from) the cell itself, so the poison is
        // visible to the very next macroscopic evaluation.
        match self {
            CaseSolver::D2(s) => s.state_mut().set(cell, 0, Scalar::NAN),
            CaseSolver::D3(s) => s.state_mut().set(cell, 0, Scalar::NAN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CaseSpec {
        CaseSpec {
            case: CaseKind::Cavity,
            lattice: LatticeKind::D3Q19,
            nx: 8,
            ny: 8,
            nz: 8,
            tau: 0.8,
            u_lattice: 0.05,
            storage: StorageScheme::Ab,
        }
    }

    #[test]
    fn wire_names_roundtrip() {
        for c in [CaseKind::Cavity, CaseKind::Channel, CaseKind::TaylorGreen] {
            assert_eq!(CaseKind::parse(c.name()), Some(c));
        }
        for l in [LatticeKind::D2Q9, LatticeKind::D3Q19] {
            assert_eq!(LatticeKind::parse(l.name()), Some(l));
        }
        assert_eq!(CaseKind::parse("vortex-street"), None);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = spec();
        s.tau = 0.4; // below the linear-stability bound
        assert!(s.validate().is_err());
        let mut s = spec();
        s.nx = 2;
        assert!(matches!(s.validate(), Err(SwlbError::InvalidDims(_))));
        let mut s = spec();
        s.u_lattice = 0.5;
        assert!(matches!(s.validate(), Err(SwlbError::InvalidConfig(_))));
        let mut s = spec();
        (s.nx, s.ny, s.nz) = (1 << 12, 1 << 12, 4);
        assert!(matches!(s.validate(), Err(SwlbError::InvalidConfig(_))));
    }

    #[test]
    fn every_case_family_builds_and_steps() {
        for case in [CaseKind::Cavity, CaseKind::Channel, CaseKind::TaylorGreen] {
            for lattice in [LatticeKind::D2Q9, LatticeKind::D3Q19] {
                for storage in [StorageScheme::Ab, StorageScheme::Aa] {
                    let s = CaseSpec {
                        case,
                        lattice,
                        nx: 8,
                        ny: 8,
                        nz: 6,
                        tau: 0.8,
                        u_lattice: 0.05,
                        storage,
                    };
                    if case == CaseKind::Channel && storage == StorageScheme::Aa {
                        // Open boundaries are AB-only; validated below.
                        assert!(matches!(s.validate(), Err(SwlbError::InvalidConfig(_))));
                        continue;
                    }
                    let mut solver = s
                        .build(ThreadPool::new(1), Recorder::disabled())
                        .unwrap_or_else(|e| panic!("{case:?}/{lattice:?}/{storage:?}: {e}"));
                    solver.run_checked(4, 2).unwrap();
                    assert_eq!(solver.step_count(), 4);
                    assert!(!solver.has_non_finite());
                }
            }
        }
    }

    #[test]
    fn aa_case_tracks_ab_case_and_checkpoints_are_cross_scheme() {
        let pool = ThreadPool::new(1);
        let ab = spec();
        let mut aa = spec();
        aa.storage = StorageScheme::Aa;

        let mut sa = ab.build(pool.clone(), Recorder::disabled()).unwrap();
        let mut sb = aa.build(pool.clone(), Recorder::disabled()).unwrap();
        sa.run_checked(5, 5).unwrap();
        sb.run_checked(5, 5).unwrap();

        // Mid-parity capture (odd step count => AA state is Streamed): the
        // payload must still be canonical and restore into an *AB* solver.
        let ck = sb.capture();
        assert_eq!(ck.scheme, SCHEME_AA);
        assert_eq!(ck.parity, 0);
        let mut sc = ab.build(pool, Recorder::disabled()).unwrap();
        sc.restore(&ck).unwrap();
        sa.run_checked(3, 3).unwrap();
        sb.run_checked(3, 3).unwrap();
        sc.run_checked(3, 3).unwrap();

        // Compare fluid cells only: AA wall slots are scatter mailboxes, so
        // macroscopic values over solid cells are not meaningful.
        let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
        let (ra, rb, rc) = (sa.rho(), sb.rho(), sc.rho());
        for i in 0..ra.len() {
            if sa.flags().kind(i) != swlb_core::boundary::NodeKind::Fluid {
                continue;
            }
            assert!((ra[i] - rb[i]).abs() <= tol, "AA vs AB rho mismatch at {i}");
            assert!((rb[i] - rc[i]).abs() <= tol, "restored vs AA rho mismatch at {i}");
        }
    }

    #[test]
    fn capture_restore_resumes_bit_exact() {
        let pool = ThreadPool::new(1);
        let mut a = spec().build(pool.clone(), Recorder::disabled()).unwrap();
        a.run_checked(6, 6).unwrap();
        let ck = a.capture();
        assert_eq!(ck.step, 6);
        // Keep running the original to step 10.
        a.run_checked(4, 4).unwrap();

        // Fresh solver, restored at step 6, run the same 4 steps.
        let mut b = spec().build(pool, Recorder::disabled()).unwrap();
        b.restore(&ck).unwrap();
        assert_eq!(b.step_count(), 6);
        b.run_checked(4, 4).unwrap();

        let (CaseSolver::D3(sa), CaseSolver::D3(sb)) = (&a, &b) else {
            panic!("expected D3 solvers");
        };
        assert_eq!(sa.state().raw(), sb.state().raw());
    }

    #[test]
    fn restore_rejects_mismatched_checkpoint() {
        let pool = ThreadPool::new(1);
        let mut solver = spec().build(pool.clone(), Recorder::disabled()).unwrap();
        let mut other = spec();
        other.nx = 10;
        let foreign = other.build(pool, Recorder::disabled()).unwrap().capture();
        assert!(matches!(
            solver.restore(&foreign),
            Err(SwlbError::CorruptData(_))
        ));
    }

    #[test]
    fn poison_trips_divergence_check() {
        let mut solver = spec().build(ThreadPool::new(1), Recorder::disabled()).unwrap();
        solver.run_checked(2, 2).unwrap();
        solver.poison_with_nan();
        assert!(solver.has_non_finite());
        assert!(matches!(
            solver.run_checked(2, 1),
            Err(SwlbError::Diverged { .. })
        ));
    }
}
