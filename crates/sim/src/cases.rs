//! Reusable case construction: one validated description of "a simulation"
//! that front-ends can build solvers from.
//!
//! The `swlb` CLI historically inlined its case setup (paint walls, paint lid,
//! initialize, run); the serving layer (`swlb-serve`) needs the same setups
//! driven programmatically — build a solver from a job's spec, slice it, drop
//! it on preemption, and rebuild it later from a checkpoint. [`CaseSpec`] is
//! that description and [`CaseSolver`] the lattice-erased solver it builds:
//! the enum closes over the lattice type parameter so a scheduler can hold
//! jobs of mixed lattices in one queue.

use crate::engine::{chunked_from_legacy, DistributedSolver, ExchangeMode};
use swlb_comm::World;
use swlb_core::collision::{BgkParams, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::{Lattice, D2Q9, D3Q19};
use swlb_core::layout::{PopField, SoaField, StorageScheme};
use swlb_core::parallel::ThreadPool;
use swlb_core::simd::KernelClass;
use swlb_core::solver::{Solver, StepStats};
use swlb_core::Scalar;
use swlb_io::checkpoint::{SCHEME_AA, SCHEME_AB};
use swlb_io::{AnyCheckpoint, Checkpoint, ChunkedCheckpoint};
use swlb_obs::{Recorder, SwlbError};

/// Lattice family a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeKind {
    /// 2-D, 9 discrete velocities.
    D2Q9,
    /// 3-D, 19 discrete velocities (the paper's production lattice).
    D3Q19,
}

impl LatticeKind {
    /// Populations per cell.
    pub fn q(self) -> u32 {
        match self {
            LatticeKind::D2Q9 => 9,
            LatticeKind::D3Q19 => 19,
        }
    }

    /// Canonical lowercase name (wire format).
    pub fn name(self) -> &'static str {
        match self {
            LatticeKind::D2Q9 => "d2q9",
            LatticeKind::D3Q19 => "d3q19",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "d2q9" => Some(LatticeKind::D2Q9),
            "d3q19" => Some(LatticeKind::D3Q19),
            _ => None,
        }
    }
}

/// Built-in case families (the boundary/initialization recipes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Lid-driven cavity: sealed box, moving lid.
    Cavity,
    /// Channel: y-walls, density inflow/outflow in x.
    Channel,
    /// Taylor–Green vortex: fully periodic decaying vortices.
    TaylorGreen,
}

impl CaseKind {
    /// Canonical lowercase name (wire format).
    pub fn name(self) -> &'static str {
        match self {
            CaseKind::Cavity => "cavity",
            CaseKind::Channel => "channel",
            CaseKind::TaylorGreen => "taylor-green",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cavity" => Some(CaseKind::Cavity),
            "channel" => Some(CaseKind::Channel),
            "taylor-green" => Some(CaseKind::TaylorGreen),
            _ => None,
        }
    }
}

/// Everything needed to (re)build a case solver, independent of any front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Boundary/initialization recipe.
    pub case: CaseKind,
    /// Lattice family.
    pub lattice: LatticeKind,
    /// Grid extent (nz is forced to 1 for 2-D lattices).
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// BGK relaxation time.
    pub tau: Scalar,
    /// Driving velocity magnitude (lattice units).
    pub u_lattice: Scalar,
    /// Population storage scheme (two-grid AB or single-grid AA). AA halves
    /// the job's resident footprint but supports closed boundaries only, so
    /// [`CaseKind::Channel`] (inflow/outflow) must run under AB.
    pub storage: StorageScheme,
    /// Temporal-blocking depth `k` (1 disables blocking). Each sweep advances
    /// the grid `k` steps; distributed slices exchange `k`-deep halos once per
    /// block. AA storage requires an even depth.
    pub time_block: usize,
}

/// Cell-count admission cap: a service must bound the memory one job can
/// demand (a 256³ D3Q19 job is ~2.5 GiB of population storage per buffer).
pub const MAX_CELLS: usize = 4 << 20;

impl CaseSpec {
    /// Effective grid dims (z collapsed for 2-D lattices).
    pub fn dims(&self) -> GridDims {
        match self.lattice {
            LatticeKind::D2Q9 => GridDims::new2d(self.nx, self.ny),
            LatticeKind::D3Q19 => GridDims::new(self.nx, self.ny, self.nz),
        }
    }

    /// Validate physics and admission bounds without building anything.
    pub fn validate(&self) -> Result<(), SwlbError> {
        BgkParams::try_from_tau(self.tau)?;
        let need_z = matches!(self.lattice, LatticeKind::D3Q19);
        if self.nx < 3 || self.ny < 3 || (need_z && self.nz < 3) {
            return Err(SwlbError::InvalidDims(format!(
                "case grid {}x{}x{} too small (each extent must be >= 3)",
                self.nx, self.ny, self.nz
            )));
        }
        let cells = self.dims().cells();
        if cells > MAX_CELLS {
            return Err(SwlbError::InvalidConfig(format!(
                "case has {cells} cells, above the admission cap of {MAX_CELLS}"
            )));
        }
        if !(0.0..0.3).contains(&self.u_lattice.abs()) {
            return Err(SwlbError::InvalidConfig(format!(
                "u_lattice {} outside the low-Mach range |u| < 0.3",
                self.u_lattice
            )));
        }
        if self.storage == StorageScheme::Aa && self.case == CaseKind::Channel {
            return Err(SwlbError::InvalidConfig(
                "AA-pattern storage supports closed boundaries only; the channel \
                 case paints inflow/outflow nodes and must run under StorageScheme::Ab"
                    .into(),
            ));
        }
        if self.time_block == 0 {
            return Err(SwlbError::InvalidConfig(
                "time_block must be >= 1 (1 disables temporal blocking)".into(),
            ));
        }
        if self.storage == StorageScheme::Aa && self.time_block > 1 && !self.time_block.is_multiple_of(2) {
            return Err(SwlbError::InvalidConfig(format!(
                "AA-pattern temporal blocking needs an even depth (a block must end \
                 on a completed odd/even step pair); got time_block = {}",
                self.time_block
            )));
        }
        Ok(())
    }

    /// Build a painted, initialized solver running on `pool` and reporting
    /// into `recorder`.
    pub fn build(&self, pool: ThreadPool, recorder: Recorder) -> Result<CaseSolver, SwlbError> {
        self.validate()?;
        let params = BgkParams::try_from_tau(self.tau)?;
        match self.lattice {
            LatticeKind::D2Q9 => {
                let mut s = Solver::<D2Q9>::builder(self.dims(), params)
                    .pool(pool)
                    .recorder(recorder)
                    .storage(self.storage)
                    .time_block(self.time_block)
                    .try_build()?;
                self.paint(&mut s);
                Ok(CaseSolver::D2(s))
            }
            LatticeKind::D3Q19 => {
                let mut s = Solver::<D3Q19>::builder(self.dims(), params)
                    .pool(pool)
                    .recorder(recorder)
                    .storage(self.storage)
                    .time_block(self.time_block)
                    .try_build()?;
                self.paint(&mut s);
                Ok(CaseSolver::D3(s))
            }
        }
    }

    /// Build like [`CaseSpec::build`], wrapping the solver in an
    /// [`ElasticSolver`] when `width > 1` so its slices execute on a
    /// `width`-rank in-process world. Jobs built with `width <= 1` stay
    /// plain serial solvers (and ignore later width changes).
    pub fn build_with_width(
        &self,
        pool: ThreadPool,
        recorder: Recorder,
        width: u32,
    ) -> Result<CaseSolver, SwlbError> {
        let inner = self.build(pool, recorder.clone())?;
        if width <= 1 {
            return Ok(inner);
        }
        Ok(CaseSolver::Elastic(Box::new(ElasticSolver::new(
            inner,
            self.clone(),
            width,
            recorder,
        ))))
    }

    /// Paint this case's boundary recipe onto a standalone global flag field
    /// (the distributed construction path: `DistributedSolver` carves its
    /// local flags out of this).
    pub fn paint_flags(&self, flags: &mut FlagField) {
        let u = self.u_lattice;
        match self.case {
            CaseKind::Cavity => {
                flags.set_box_walls();
                flags.paint_lid([u, 0.0, 0.0]);
            }
            CaseKind::Channel => {
                flags.paint_channel_walls_y();
                flags.paint_inflow_outflow_x(1.0, [u, 0.0, 0.0]);
            }
            CaseKind::TaylorGreen => {} // fully periodic
        }
    }

    fn paint<L: swlb_core::lattice::Lattice>(&self, s: &mut Solver<L>) {
        let u = self.u_lattice;
        match self.case {
            CaseKind::Cavity => {
                s.flags_mut().set_box_walls();
                s.flags_mut().paint_lid([u, 0.0, 0.0]);
                s.initialize_uniform(1.0, [0.0; 3]);
            }
            CaseKind::Channel => {
                s.flags_mut().paint_channel_walls_y();
                s.flags_mut().paint_inflow_outflow_x(1.0, [u, 0.0, 0.0]);
                s.initialize_uniform(1.0, [u, 0.0, 0.0]);
            }
            CaseKind::TaylorGreen => {
                let k = std::f64::consts::TAU / self.nx as Scalar;
                s.initialize_field(|x, y, _| {
                    let (xs, ys) = (x as Scalar * k, y as Scalar * k);
                    (
                        1.0 - 0.75 * u * u * ((2.0 * xs).cos() + (2.0 * ys).cos()),
                        [u * xs.sin() * ys.cos(), -u * xs.cos() * ys.sin(), 0.0],
                    )
                });
            }
        }
    }
}

/// A case solver whose slices execute on a `width`-rank in-process world,
/// carrying canonical state through the rank-count-independent chunked
/// checkpoint format between slices — which is exactly what lets `width`
/// change at any slice boundary (the scheduler's elastic resume). A serial
/// shadow solver holds the canonical state and serves macroscopics, outputs,
/// and fault injection; the distributed world exists only for the duration
/// of a slice.
pub struct ElasticSolver {
    inner: CaseSolver,
    spec: CaseSpec,
    width: u32,
    /// The per-source-rank capture from the most recent distributed slice.
    /// Reused by [`CaseSolver::capture_chunked`] while still current, so
    /// checkpoints written at preemption genuinely carry one chunk per rank.
    last_capture: Option<ChunkedCheckpoint>,
    /// The job's recorder, shared by every rank of each slice so the
    /// `halo.messages` / `halo.bytes` counters accumulate job-wide totals.
    recorder: Recorder,
}

impl ElasticSolver {
    /// Wrap a freshly built (or restored) serial solver. `width` is clamped
    /// to ≥ 1; `inner` must not itself be elastic.
    pub fn new(inner: CaseSolver, spec: CaseSpec, width: u32, recorder: Recorder) -> Self {
        assert!(
            !matches!(inner, CaseSolver::Elastic(_)),
            "elastic solvers do not nest"
        );
        ElasticSolver {
            inner,
            spec,
            width: width.max(1),
            last_capture: None,
            recorder,
        }
    }

    /// Current execution width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Change the execution width for subsequent slices (the re-shard);
    /// returns the previous width. Takes effect at the next slice because
    /// state lives in canonical chunked form between slices — no gather or
    /// layout surgery is needed.
    pub fn set_width(&mut self, width: u32) -> u32 {
        std::mem::replace(&mut self.width, width.max(1))
    }

    fn run_slice(&mut self, n: u64) -> Result<(), SwlbError> {
        let state = self.inner.capture_chunked();
        let new_state = match self.spec.lattice {
            LatticeKind::D2Q9 => run_distributed_slice::<D2Q9>(
                &self.spec,
                self.width as usize,
                &state,
                n,
                &self.recorder,
            )?,
            LatticeKind::D3Q19 => run_distributed_slice::<D3Q19>(
                &self.spec,
                self.width as usize,
                &state,
                n,
                &self.recorder,
            )?,
        };
        self.inner.restore_chunked_state(&new_state)?;
        self.last_capture = Some(new_state);
        Ok(())
    }

    fn run_checked(&mut self, n: u64, check_every: u64) -> Result<(), SwlbError> {
        if self.width <= 1 {
            self.last_capture = None;
            return self.inner.run_checked(n, check_every);
        }
        // The divergence check runs at the slice boundary: a NaN injected
        // before the slice propagates through the distributed steps and is
        // caught in the re-imported state, mirroring the serial guard.
        self.run_slice(n)?;
        if self.inner.has_non_finite() {
            return Err(SwlbError::Diverged {
                step: self.inner.step_count(),
            });
        }
        Ok(())
    }
}

/// One distributed slice: build a `width`-rank world over the case's global
/// flags, restore the canonical chunked state onto whatever partition that
/// world gets (re-sharding as needed), advance `steps`, capture back.
fn run_distributed_slice<L: Lattice>(
    spec: &CaseSpec,
    width: usize,
    state: &ChunkedCheckpoint,
    steps: u64,
    recorder: &Recorder,
) -> Result<ChunkedCheckpoint, SwlbError> {
    let dims = spec.dims();
    let mut flags = FlagField::new(dims);
    spec.paint_flags(&mut flags);
    let coll = CollisionKind::Bgk(BgkParams::try_from_tau(spec.tau)?);
    let flags_ref = &flags;
    let results = World::new(width).run(|comm| -> Result<Option<ChunkedCheckpoint>, SwlbError> {
        let mut s = DistributedSolver::<L>::builder(&comm, dims, flags_ref, coll)
            .exchange(ExchangeMode::OnTheFly)
            .storage(spec.storage)
            .time_block(spec.time_block)
            .recorder(recorder.clone())
            .try_build()?;
        s.restore_chunked(if comm.rank() == 0 { Some(state) } else { None })?;
        s.run(steps)?;
        Ok(s.capture_chunked()?)
    });
    let mut captured = None;
    for (rank, result) in results.into_iter().enumerate() {
        if let Some(ck) = result? {
            debug_assert_eq!(rank, 0, "only rank 0 captures");
            captured = Some(ck);
        }
    }
    captured.ok_or_else(|| SwlbError::CorruptData("rank 0 produced no capture".into()))
}

/// A lattice-erased case solver: the unit a job scheduler slices, checkpoints,
/// drops, and rebuilds.
pub enum CaseSolver {
    /// 2-D solver.
    D2(Solver<D2Q9>),
    /// 3-D solver.
    D3(Solver<D3Q19>),
    /// Width-elastic solver: slices run on an in-process multi-rank world.
    Elastic(Box<ElasticSolver>),
}

impl CaseSolver {
    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        match self {
            CaseSolver::D2(s) => s.step_count(),
            CaseSolver::D3(s) => s.step_count(),
            CaseSolver::Elastic(e) => e.inner.step_count(),
        }
    }

    /// Grid dims.
    pub fn dims(&self) -> GridDims {
        match self {
            CaseSolver::D2(s) => s.dims(),
            CaseSolver::D3(s) => s.dims(),
            CaseSolver::Elastic(e) => e.inner.dims(),
        }
    }

    /// Fluid-cell count (MLUPS accounting).
    pub fn active_cells(&self) -> usize {
        match self {
            CaseSolver::D2(s) => s.active_cells(),
            CaseSolver::D3(s) => s.active_cells(),
            CaseSolver::Elastic(e) => e.inner.active_cells(),
        }
    }

    /// Kernel class that served the latest step.
    pub fn last_kernel_class(&self) -> KernelClass {
        match self {
            CaseSolver::D2(s) => s.last_kernel_class(),
            CaseSolver::D3(s) => s.last_kernel_class(),
            CaseSolver::Elastic(e) => e.inner.last_kernel_class(),
        }
    }

    /// Summary statistics of the current state.
    pub fn stats(&self) -> StepStats {
        match self {
            CaseSolver::D2(s) => s.stats(),
            CaseSolver::D3(s) => s.stats(),
            CaseSolver::Elastic(e) => e.inner.stats(),
        }
    }

    /// The flag field (e.g. for force evaluation).
    pub fn flags(&self) -> &FlagField {
        match self {
            CaseSolver::D2(s) => s.flags(),
            CaseSolver::D3(s) => s.flags(),
            CaseSolver::Elastic(e) => e.inner.flags(),
        }
    }

    /// Advance `n` steps with divergence checks every `check_every` steps.
    pub fn run_checked(&mut self, n: u64, check_every: u64) -> Result<(), SwlbError> {
        match self {
            CaseSolver::D2(s) => s.run_checked(n, check_every),
            CaseSolver::D3(s) => s.run_checked(n, check_every),
            CaseSolver::Elastic(e) => e.run_checked(n, check_every),
        }
    }

    /// Whether the current state contains NaN/Inf.
    pub fn has_non_finite(&self) -> bool {
        match self {
            CaseSolver::D2(s) => s.macroscopic().has_non_finite(),
            CaseSolver::D3(s) => s.macroscopic().has_non_finite(),
            CaseSolver::Elastic(e) => e.inner.has_non_finite(),
        }
    }

    /// Speed magnitude of the z=0 plane (slice outputs).
    pub fn slice_speed(&self) -> Vec<Scalar> {
        match self {
            CaseSolver::D2(s) => s.macroscopic().slice_xy_speed(0),
            CaseSolver::D3(s) => s.macroscopic().slice_xy_speed(0),
            CaseSolver::Elastic(e) => e.inner.slice_speed(),
        }
    }

    /// Density field (volume outputs).
    pub fn rho(&self) -> Vec<Scalar> {
        match self {
            CaseSolver::D2(s) => s.macroscopic().rho.clone(),
            CaseSolver::D3(s) => s.macroscopic().rho.clone(),
            CaseSolver::Elastic(e) => e.inner.rho(),
        }
    }

    /// Storage scheme of the underlying solver.
    pub fn scheme(&self) -> StorageScheme {
        match self {
            CaseSolver::D2(s) => s.scheme(),
            CaseSolver::D3(s) => s.scheme(),
            CaseSolver::Elastic(e) => e.inner.scheme(),
        }
    }

    /// Populations-per-cell of the underlying lattice.
    pub fn q(&self) -> u32 {
        match self {
            CaseSolver::D2(_) => 9,
            CaseSolver::D3(_) => 19,
            CaseSolver::Elastic(e) => e.inner.q(),
        }
    }

    /// Execution width (1 unless elastic).
    pub fn width(&self) -> u32 {
        match self {
            CaseSolver::Elastic(e) => e.width(),
            _ => 1,
        }
    }

    /// Change the execution width at a slice boundary; returns the previous
    /// width. No-op (returns 1) on non-elastic solvers.
    pub fn set_width(&mut self, width: u32) -> u32 {
        match self {
            CaseSolver::Elastic(e) => e.set_width(width),
            _ => 1,
        }
    }

    /// Capture the full population state as a [`Checkpoint`] — the
    /// preemption primitive: save this, drop the solver, rebuild later from
    /// the same [`CaseSpec`] and [`CaseSolver::restore`].
    ///
    /// The payload is always the canonical (AB-convention, post-collision)
    /// state regardless of the solver's storage scheme, so checkpoints are
    /// portable across schemes: an AA job's checkpoint restores into an AB
    /// solver and vice versa. The checkpoint's `scheme` byte records the
    /// producer for provenance; `parity` is always 0 (canonical).
    pub fn capture(&self) -> Checkpoint {
        let dims = self.dims();
        let (q, data) = match self {
            CaseSolver::D2(s) => (9u32, s.canonical_populations().raw().to_vec()),
            CaseSolver::D3(s) => (19u32, s.canonical_populations().raw().to_vec()),
            CaseSolver::Elastic(e) => return e.inner.capture(),
        };
        Checkpoint {
            step: self.step_count(),
            dims: (dims.nx as u32, dims.ny as u32, dims.nz as u32),
            q,
            scheme: match self.scheme() {
                StorageScheme::Ab => SCHEME_AB,
                StorageScheme::Aa => SCHEME_AA,
            },
            parity: 0,
            data,
        }
    }

    /// Restore population state and step count from a checkpoint captured off
    /// a solver built from the same spec.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), SwlbError> {
        let dims = self.dims();
        let want = (dims.nx as u32, dims.ny as u32, dims.nz as u32);
        let q = self.q();
        if ck.dims != want || ck.q != q {
            return Err(SwlbError::CorruptData(format!(
                "checkpoint is {}x{}x{} q{}, solver wants {}x{}x{} q{}",
                ck.dims.0, ck.dims.1, ck.dims.2, ck.q, want.0, want.1, want.2, q
            )));
        }
        match self {
            CaseSolver::D2(s) => s.restore_canonical(&ck.data, ck.step),
            CaseSolver::D3(s) => s.restore_canonical(&ck.data, ck.step),
            CaseSolver::Elastic(e) => {
                e.last_capture = None;
                e.inner.restore(ck)
            }
        }
    }

    /// Capture the state in the rank-count-independent chunked (format v3)
    /// representation. Elastic solvers hand back the genuine per-rank
    /// capture from their most recent distributed slice when it is still
    /// current; everything else exports a single whole-domain chunk.
    pub fn capture_chunked(&self) -> ChunkedCheckpoint {
        match self {
            CaseSolver::Elastic(e) => {
                if let Some(ck) = &e.last_capture {
                    if ck.step == e.inner.step_count() {
                        return ck.clone();
                    }
                }
                e.inner.capture_chunked()
            }
            CaseSolver::D2(_) => chunked_from_legacy::<D2Q9>(&self.capture())
                .expect("a self-capture is always well-formed"),
            CaseSolver::D3(_) => chunked_from_legacy::<D3Q19>(&self.capture())
                .expect("a self-capture is always well-formed"),
        }
    }

    /// Restore from a chunked checkpoint, re-assembling the global canonical
    /// field from whatever source partition wrote it — this is what lets a
    /// job checkpointed at one width resume at another.
    pub fn restore_chunked_state(&mut self, ck: &ChunkedCheckpoint) -> Result<(), SwlbError> {
        let dims = self.dims();
        let want = (dims.nx as u32, dims.ny as u32, dims.nz as u32);
        if ck.dims != want || ck.q != self.q() {
            return Err(SwlbError::CorruptData(format!(
                "chunked checkpoint is {}x{}x{} q{}, solver wants {}x{}x{} q{}",
                ck.dims.0,
                ck.dims.1,
                ck.dims.2,
                ck.q,
                want.0,
                want.1,
                want.2,
                self.q()
            )));
        }
        match self {
            CaseSolver::D2(s) => {
                let f = field_from_chunked::<D2Q9>(ck)?;
                s.restore_canonical(f.raw(), ck.step)
            }
            CaseSolver::D3(s) => {
                let f = field_from_chunked::<D3Q19>(ck)?;
                s.restore_canonical(f.raw(), ck.step)
            }
            CaseSolver::Elastic(e) => {
                e.last_capture = None;
                e.inner.restore_chunked_state(ck)?;
                e.last_capture = Some(ck.clone());
                Ok(())
            }
        }
    }

    /// Restore from either checkpoint generation: legacy whole-domain v1/v2
    /// files or chunked v3.
    pub fn restore_any(&mut self, ck: &AnyCheckpoint) -> Result<(), SwlbError> {
        match ck {
            AnyCheckpoint::Legacy(ck) => self.restore(ck),
            AnyCheckpoint::Chunked(ck) => self.restore_chunked_state(ck),
        }
    }

    /// Fault-injection hook: poison one interior population with NaN so the
    /// next divergence check trips — the job-level analogue of ChaosComm's
    /// corrupt-in-flight faults, used by chaos tests to exercise
    /// rollback-retry supervision.
    pub fn poison_with_nan(&mut self) {
        let d = self.dims();
        // Center cell: guaranteed interior fluid for every case family (walls
        // only ever occupy the outermost shell).
        let cell = d.idx(d.nx / 2, d.ny / 2, d.nz / 2);
        // Slot q=0 is the rest population: under every scheme and parity it
        // is stored at (and read back from) the cell itself, so the poison is
        // visible to the very next macroscopic evaluation.
        match self {
            CaseSolver::D2(s) => s.state_mut().set(cell, 0, Scalar::NAN),
            CaseSolver::D3(s) => s.state_mut().set(cell, 0, Scalar::NAN),
            CaseSolver::Elastic(e) => {
                e.last_capture = None;
                e.inner.poison_with_nan();
            }
        }
    }
}

/// Assemble a chunked checkpoint's global canonical payload into an SoA field
/// (cell-major), converting from the chunk wire order (y → x → z → q).
fn field_from_chunked<L: Lattice>(ck: &ChunkedCheckpoint) -> Result<SoaField<L>, SwlbError> {
    let data = ck.assemble_global()?;
    let dims = GridDims::new(ck.dims.0 as usize, ck.dims.1 as usize, ck.dims.2 as usize);
    let mut f = SoaField::<L>::new(dims);
    let mut it = data.iter();
    for y in 0..dims.ny {
        for x in 0..dims.nx {
            for z in 0..dims.nz {
                let cell = dims.idx(x, y, z);
                for q in 0..L::Q {
                    f.set(cell, q, *it.next().expect("assembled payload too short"));
                }
            }
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CaseSpec {
        CaseSpec {
            case: CaseKind::Cavity,
            lattice: LatticeKind::D3Q19,
            nx: 8,
            ny: 8,
            nz: 8,
            tau: 0.8,
            u_lattice: 0.05,
            storage: StorageScheme::Ab,
            time_block: 1,
        }
    }

    #[test]
    fn wire_names_roundtrip() {
        for c in [CaseKind::Cavity, CaseKind::Channel, CaseKind::TaylorGreen] {
            assert_eq!(CaseKind::parse(c.name()), Some(c));
        }
        for l in [LatticeKind::D2Q9, LatticeKind::D3Q19] {
            assert_eq!(LatticeKind::parse(l.name()), Some(l));
        }
        assert_eq!(CaseKind::parse("vortex-street"), None);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = spec();
        s.tau = 0.4; // below the linear-stability bound
        assert!(s.validate().is_err());
        let mut s = spec();
        s.nx = 2;
        assert!(matches!(s.validate(), Err(SwlbError::InvalidDims(_))));
        let mut s = spec();
        s.u_lattice = 0.5;
        assert!(matches!(s.validate(), Err(SwlbError::InvalidConfig(_))));
        let mut s = spec();
        (s.nx, s.ny, s.nz) = (1 << 12, 1 << 12, 4);
        assert!(matches!(s.validate(), Err(SwlbError::InvalidConfig(_))));
    }

    #[test]
    fn every_case_family_builds_and_steps() {
        for case in [CaseKind::Cavity, CaseKind::Channel, CaseKind::TaylorGreen] {
            for lattice in [LatticeKind::D2Q9, LatticeKind::D3Q19] {
                for storage in [StorageScheme::Ab, StorageScheme::Aa] {
                    let s = CaseSpec {
                        case,
                        lattice,
                        nx: 8,
                        ny: 8,
                        nz: 6,
                        tau: 0.8,
                        u_lattice: 0.05,
                        storage,
                        time_block: 1,
                    };
                    if case == CaseKind::Channel && storage == StorageScheme::Aa {
                        // Open boundaries are AB-only; validated below.
                        assert!(matches!(s.validate(), Err(SwlbError::InvalidConfig(_))));
                        continue;
                    }
                    let mut solver = s
                        .build(ThreadPool::new(1), Recorder::disabled())
                        .unwrap_or_else(|e| panic!("{case:?}/{lattice:?}/{storage:?}: {e}"));
                    solver.run_checked(4, 2).unwrap();
                    assert_eq!(solver.step_count(), 4);
                    assert!(!solver.has_non_finite());
                }
            }
        }
    }

    #[test]
    fn aa_case_tracks_ab_case_and_checkpoints_are_cross_scheme() {
        let pool = ThreadPool::new(1);
        let ab = spec();
        let mut aa = spec();
        aa.storage = StorageScheme::Aa;

        let mut sa = ab.build(pool.clone(), Recorder::disabled()).unwrap();
        let mut sb = aa.build(pool.clone(), Recorder::disabled()).unwrap();
        sa.run_checked(5, 5).unwrap();
        sb.run_checked(5, 5).unwrap();

        // Mid-parity capture (odd step count => AA state is Streamed): the
        // payload must still be canonical and restore into an *AB* solver.
        let ck = sb.capture();
        assert_eq!(ck.scheme, SCHEME_AA);
        assert_eq!(ck.parity, 0);
        let mut sc = ab.build(pool, Recorder::disabled()).unwrap();
        sc.restore(&ck).unwrap();
        sa.run_checked(3, 3).unwrap();
        sb.run_checked(3, 3).unwrap();
        sc.run_checked(3, 3).unwrap();

        // Compare fluid cells only: AA wall slots are scatter mailboxes, so
        // macroscopic values over solid cells are not meaningful.
        let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
        let (ra, rb, rc) = (sa.rho(), sb.rho(), sc.rho());
        for i in 0..ra.len() {
            if sa.flags().kind(i) != swlb_core::boundary::NodeKind::Fluid {
                continue;
            }
            assert!((ra[i] - rb[i]).abs() <= tol, "AA vs AB rho mismatch at {i}");
            assert!(
                (rb[i] - rc[i]).abs() <= tol,
                "restored vs AA rho mismatch at {i}"
            );
        }
    }

    #[test]
    fn capture_restore_resumes_bit_exact() {
        let pool = ThreadPool::new(1);
        let mut a = spec().build(pool.clone(), Recorder::disabled()).unwrap();
        a.run_checked(6, 6).unwrap();
        let ck = a.capture();
        assert_eq!(ck.step, 6);
        // Keep running the original to step 10.
        a.run_checked(4, 4).unwrap();

        // Fresh solver, restored at step 6, run the same 4 steps.
        let mut b = spec().build(pool, Recorder::disabled()).unwrap();
        b.restore(&ck).unwrap();
        assert_eq!(b.step_count(), 6);
        b.run_checked(4, 4).unwrap();

        let (CaseSolver::D3(sa), CaseSolver::D3(sb)) = (&a, &b) else {
            panic!("expected D3 solvers");
        };
        assert_eq!(sa.state().raw(), sb.state().raw());
    }

    #[test]
    fn restore_rejects_mismatched_checkpoint() {
        let pool = ThreadPool::new(1);
        let mut solver = spec().build(pool.clone(), Recorder::disabled()).unwrap();
        let mut other = spec();
        other.nx = 10;
        let foreign = other.build(pool, Recorder::disabled()).unwrap().capture();
        assert!(matches!(
            solver.restore(&foreign),
            Err(SwlbError::CorruptData(_))
        ));
    }

    #[test]
    fn elastic_width_2_matches_serial_run() {
        let pool = ThreadPool::new(1);
        let mut serial = spec().build(pool.clone(), Recorder::disabled()).unwrap();
        serial.run_checked(10, 5).unwrap();

        let mut elastic = spec()
            .build_with_width(pool, Recorder::disabled(), 2)
            .unwrap();
        assert_eq!(elastic.width(), 2);
        elastic.run_checked(10, 5).unwrap();
        assert_eq!(elastic.step_count(), 10);

        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        let (rs, re) = (serial.rho(), elastic.rho());
        for i in 0..rs.len() {
            assert!(
                (rs[i] - re[i]).abs() <= tol,
                "serial vs elastic rho mismatch at {i}: {} vs {}",
                rs[i],
                re[i]
            );
        }
    }

    #[test]
    fn elastic_width_change_mid_run_reshards_transparently() {
        let pool = ThreadPool::new(1);
        let mut serial = spec().build(pool.clone(), Recorder::disabled()).unwrap();
        serial.run_checked(12, 6).unwrap();

        // Run 4 steps at width 3, re-shard to width 2 for 4 steps, then
        // finish serial (width 1): three partitions of the same trajectory.
        let mut elastic = spec()
            .build_with_width(pool, Recorder::disabled(), 3)
            .unwrap();
        elastic.run_checked(4, 4).unwrap();
        assert_eq!(elastic.set_width(2), 3);
        elastic.run_checked(4, 4).unwrap();
        assert_eq!(elastic.set_width(1), 2);
        elastic.run_checked(4, 4).unwrap();
        assert_eq!(elastic.step_count(), 12);

        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        let (rs, re) = (serial.rho(), elastic.rho());
        for i in 0..rs.len() {
            assert!(
                (rs[i] - re[i]).abs() <= tol,
                "width-elastic rho mismatch at {i}: {} vs {}",
                rs[i],
                re[i]
            );
        }
    }

    #[test]
    fn elastic_capture_is_multi_chunk_and_restores_into_serial() {
        let pool = ThreadPool::new(1);
        let mut elastic = spec()
            .build_with_width(pool.clone(), Recorder::disabled(), 4)
            .unwrap();
        elastic.run_checked(6, 6).unwrap();
        let ck = elastic.capture_chunked();
        assert_eq!(ck.step, 6);
        assert_eq!(ck.chunks.len(), 4, "one chunk per slice rank");

        let mut serial = spec().build(pool, Recorder::disabled()).unwrap();
        serial.restore_chunked_state(&ck).unwrap();
        assert_eq!(serial.step_count(), 6);
        serial.run_checked(4, 4).unwrap();
        elastic.run_checked(4, 4).unwrap();

        let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
        let (rs, re) = (serial.rho(), elastic.rho());
        for i in 0..rs.len() {
            assert!((rs[i] - re[i]).abs() <= tol, "rho mismatch at {i}");
        }
    }

    #[test]
    fn elastic_poison_trips_divergence_at_slice_boundary() {
        let mut elastic = spec()
            .build_with_width(ThreadPool::new(1), Recorder::disabled(), 2)
            .unwrap();
        elastic.run_checked(2, 2).unwrap();
        elastic.poison_with_nan();
        assert!(elastic.has_non_finite());
        assert!(matches!(
            elastic.run_checked(2, 1),
            Err(SwlbError::Diverged { .. })
        ));
    }

    #[test]
    fn poison_trips_divergence_check() {
        let mut solver = spec()
            .build(ThreadPool::new(1), Recorder::disabled())
            .unwrap();
        solver.run_checked(2, 2).unwrap();
        solver.poison_with_nan();
        assert!(solver.has_non_finite());
        assert!(matches!(
            solver.run_checked(2, 1),
            Err(SwlbError::Diverged { .. })
        ));
    }
}
