//! 2-D domain partitioning with full-z pencils (paper §IV-C.1).
//!
//! The paper rejects 1-D decomposition (not enough parallelism for 160,000
//! processes when x/y are ~10³) and 3-D decomposition (more complex
//! communication), settling on 2-D over (x, y) with each subdomain keeping the
//! whole z axis. [`Partition2d`] maps ranks to subdomains and builds each
//! rank's local flag field (interior + one halo ring) from the global one.

use swlb_comm::Cart2d;
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;

/// A 2-D block partition of a global grid over a cartesian rank layout.
#[derive(Debug, Clone, Copy)]
pub struct Partition2d {
    /// Rank topology (always periodic: the global domain edge uses the same
    /// wrap convention as the single-domain reference kernel).
    pub cart: Cart2d,
    /// Global grid.
    pub global: GridDims,
}

impl Partition2d {
    /// Partition `global` over `nranks` ranks in a balanced near-square layout.
    ///
    /// # Panics
    /// Panics if any rank would receive an empty subdomain.
    pub fn new(global: GridDims, nranks: usize) -> Self {
        let cart = Cart2d::balanced(nranks, true);
        assert!(
            cart.px <= global.nx && cart.py <= global.ny,
            "{} ranks ({}x{}) cannot tile a {}x{} xy footprint",
            nranks,
            cart.px,
            cart.py,
            global.nx,
            global.ny
        );
        Self { cart, global }
    }

    /// Global (offset, extent) of `rank`'s interior along x and y:
    /// `((x0, lnx), (y0, lny))`.
    pub fn owned(&self, rank: usize) -> ((usize, usize), (usize, usize)) {
        let (cx, cy) = self.cart.coords(rank);
        (
            Cart2d::block_range(self.global.nx, self.cart.px, cx),
            Cart2d::block_range(self.global.ny, self.cart.py, cy),
        )
    }

    /// Local grid dims of `rank` *including* the one-cell xy halo ring.
    pub fn local_dims(&self, rank: usize) -> GridDims {
        self.local_dims_h(rank, 1)
    }

    /// Local grid dims of `rank` with an `h`-cell-deep xy ghost ring, as used
    /// by depth-`h` temporal blocking.
    pub fn local_dims_h(&self, rank: usize, h: usize) -> GridDims {
        let ((_, lnx), (_, lny)) = self.owned(rank);
        GridDims::new(lnx + 2 * h, lny + 2 * h, self.global.nz)
    }

    /// Build `rank`'s local flag field: interior cells copy the global flags;
    /// the halo ring copies the (periodically wrapped) global neighbors' flags,
    /// so boundary rules at subdomain edges match the single-domain reference
    /// exactly.
    pub fn local_flags(&self, rank: usize, global_flags: &FlagField) -> FlagField {
        self.local_flags_h(rank, global_flags, 1)
    }

    /// [`Self::local_flags`] for an `h`-deep ghost ring: local interior cell
    /// `(h, h)` corresponds to global `(x0, y0)`.
    pub fn local_flags_h(&self, rank: usize, global_flags: &FlagField, h: usize) -> FlagField {
        assert_eq!(global_flags.dims(), self.global);
        let ((x0, _), (y0, _)) = self.owned(rank);
        let local = self.local_dims_h(rank, h);
        let mut flags = FlagField::new(local);
        for ly in 0..local.ny {
            let gy = (y0 as isize + ly as isize - h as isize).rem_euclid(self.global.ny as isize)
                as usize;
            for lx in 0..local.nx {
                let gx = (x0 as isize + lx as isize - h as isize)
                    .rem_euclid(self.global.nx as isize) as usize;
                for z in 0..local.nz {
                    flags.set(lx, ly, z, global_flags.kind_at(gx, gy, z));
                }
            }
        }
        flags
    }

    /// Translate a local interior coordinate to the global coordinate.
    pub fn to_global(&self, rank: usize, lx: usize, ly: usize) -> (usize, usize) {
        let ((x0, lnx), (y0, lny)) = self.owned(rank);
        debug_assert!((1..=lnx).contains(&lx) && (1..=lny).contains(&ly));
        (x0 + lx - 1, y0 + ly - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swlb_core::boundary::NodeKind;

    #[test]
    fn owned_ranges_tile_the_domain() {
        let p = Partition2d::new(GridDims::new(10, 9, 4), 6); // 3x2 layout
        let mut covered = [false; 10 * 9];
        for rank in 0..6 {
            let ((x0, lnx), (y0, lny)) = p.owned(rank);
            for y in y0..y0 + lny {
                for x in x0..x0 + lnx {
                    assert!(!covered[y * 10 + x], "cell ({x},{y}) covered twice");
                    covered[y * 10 + x] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn local_dims_add_halo_ring() {
        let p = Partition2d::new(GridDims::new(8, 8, 5), 4);
        let d = p.local_dims(0);
        assert_eq!((d.nx, d.ny, d.nz), (6, 6, 5));
    }

    #[test]
    #[should_panic(expected = "cannot tile")]
    fn too_many_ranks_panics() {
        Partition2d::new(GridDims::new(2, 2, 4), 16);
    }

    #[test]
    fn local_flags_sample_global_with_wrap() {
        let global = GridDims::new(6, 6, 2);
        let mut gf = FlagField::new(global);
        gf.set(0, 0, 0, NodeKind::Wall);
        gf.set(5, 5, 1, NodeKind::Wall);
        let p = Partition2d::new(global, 4); // 2x2, each 3x3
                                             // Rank 0 owns x 0..3, y 0..3; its west halo column wraps to gx = 5.
        let lf = p.local_flags(0, &gf);
        assert!(lf.kind_at(1, 1, 0).is_solid()); // global (0,0,0)
        assert!(lf.kind_at(0, 0, 1).is_solid()); // halo corner wraps to (5,5,1)
        assert!(lf.kind_at(2, 2, 0).is_fluid());
    }

    #[test]
    fn deep_halo_flags_wrap_like_shallow_ones() {
        let global = GridDims::new(6, 6, 2);
        let mut gf = FlagField::new(global);
        gf.set(0, 0, 0, NodeKind::Wall);
        gf.set(4, 5, 1, NodeKind::Wall);
        let p = Partition2d::new(global, 4); // 2x2, each 3x3
        assert_eq!(
            p.local_dims_h(0, 2),
            GridDims::new(7, 7, 2),
            "3x3 owned + 2-deep ring"
        );
        let lf = p.local_flags_h(0, &gf, 2);
        assert!(lf.kind_at(2, 2, 0).is_solid()); // interior origin = global (0,0,0)
        assert!(lf.kind_at(0, 1, 1).is_solid()); // ghost (-2,-1) wraps to (4,5,1)
        assert!(lf.kind_at(3, 3, 0).is_fluid());
    }

    #[test]
    fn to_global_roundtrip() {
        let p = Partition2d::new(GridDims::new(10, 10, 1), 4);
        for rank in 0..4 {
            let ((x0, lnx), (y0, lny)) = p.owned(rank);
            assert_eq!(p.to_global(rank, 1, 1), (x0, y0));
            assert_eq!(p.to_global(rank, lnx, lny), (x0 + lnx - 1, y0 + lny - 1));
        }
    }
}
