//! # swlb-sim — the distributed simulation engine
//!
//! This crate assembles the substrates into the paper's solver architecture
//! (§IV-C.1): a 2-D (x, y) domain decomposition with **full-z pencils**, one
//! rank per core group, halo exchange with up to 8 neighbors, and two execution
//! schedules —
//!
//! * [`engine::ExchangeMode::Sequential`]: exchange all halos, then compute
//!   (the paper's original implementation, Fig. 6(1));
//! * [`engine::ExchangeMode::OnTheFly`]: post the exchanges, compute the inner
//!   domain while messages fly, then finish the boundary ring (the paper's
//!   on-the-fly scheme, Fig. 6(2) / Fig. 9(2)).
//!
//! Both schedules are verified bit-identical to each other and to the
//! single-domain reference solver, for any rank count.
//!
//! The crate also provides momentum-exchange force evaluation ([`forces`]) for
//! drag/lift observables and case configuration ([`config`]).

// Indexed loops mirror the stencil mathematics throughout this workspace and
// are kept deliberately as the clearer idiom for this domain.
#![allow(clippy::needless_range_loop)]

pub mod cases;
pub mod config;
pub mod engine;
pub mod forces;
pub mod group_io;
pub mod partition;
pub mod resilience;

pub use cases::{CaseKind, CaseSolver, CaseSpec, ElasticSolver, LatticeKind};
pub use config::CaseConfig;
pub use engine::{
    chunked_from_legacy, DistributedSolver, DistributedSolverBuilder, ExchangeMode, HaloRetry,
};
pub use forces::momentum_exchange_force;
pub use group_io::aggregate_group;
pub use partition::Partition2d;
pub use resilience::{
    run_with_recovery, run_with_recovery_instrumented, RecoveryPolicy, RecoveryReport,
};

/// Convenient re-exports for driving a distributed run: both solver builders
/// (shared-memory [`swlb_core::solver::SolverBuilder`] and distributed
/// [`DistributedSolverBuilder`]), the recovery layer, and the observability
/// facade.
pub mod prelude {
    pub use crate::engine::{DistributedSolver, DistributedSolverBuilder, ExchangeMode, HaloRetry};
    pub use crate::partition::Partition2d;
    pub use crate::resilience::{
        run_with_recovery, run_with_recovery_instrumented, RecoveryPolicy, RecoveryReport,
    };
    pub use swlb_core::solver::{Solver, SolverBuilder};
    pub use swlb_obs::{JsonlSink, Phase, Recorder, SummarySink, SwlbError, SwlbResult};
}
