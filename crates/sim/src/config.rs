//! Simulation case configuration.
//!
//! A small `key = value` configuration format (comments with `#`) so the
//! example binaries and the bench harness can be driven without recompiling —
//! the role the paper's pre-processing input deck plays.

use swlb_core::collision::BgkParams;
use swlb_core::error::{CoreError, Result};
use swlb_core::geometry::GridDims;
use swlb_core::Scalar;

/// A complete case description.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Case name (used in output file names).
    pub name: String,
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Grid cells along z (1 for 2-D).
    pub nz: usize,
    /// Relaxation time τ.
    pub tau: Scalar,
    /// Characteristic lattice velocity (inlet / lid).
    pub u_lattice: Scalar,
    /// Time steps to run.
    pub steps: u64,
    /// Emit output every this many steps (0 = only at the end).
    pub output_every: u64,
    /// Number of ranks for distributed runs.
    pub ranks: usize,
}

impl Default for CaseConfig {
    fn default() -> Self {
        Self {
            name: "case".into(),
            nx: 64,
            ny: 64,
            nz: 1,
            tau: 0.8,
            u_lattice: 0.05,
            steps: 1000,
            output_every: 0,
            ranks: 1,
        }
    }
}

impl CaseConfig {
    /// Grid dims.
    pub fn dims(&self) -> GridDims {
        GridDims::new(self.nx, self.ny, self.nz)
    }

    /// BGK parameters; errors if τ is unstable.
    pub fn bgk(&self) -> Result<BgkParams> {
        BgkParams::try_from_tau(self.tau)
    }

    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<()> {
        GridDims::try_new(self.nx, self.ny, self.nz)?;
        self.bgk()?;
        if !(self.u_lattice > 0.0 && self.u_lattice < 0.3) {
            return Err(CoreError::InvalidConfig(format!(
                "u_lattice {} outside the low-Mach range (0, 0.3)",
                self.u_lattice
            )));
        }
        if self.ranks == 0 {
            return Err(CoreError::InvalidConfig("ranks must be ≥ 1".into()));
        }
        Ok(())
    }

    /// Parse `key = value` lines over the defaults. Unknown keys error (they
    /// are almost always typos).
    pub fn parse(text: &str) -> Result<Self> {
        let mut cfg = Self::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                CoreError::InvalidConfig(format!("line {}: expected key = value", lineno + 1))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| {
                CoreError::InvalidConfig(format!("line {}: {key}: {e}", lineno + 1))
            };
            match key {
                "name" => cfg.name = value.to_string(),
                "nx" => cfg.nx = value.parse().map_err(|e| bad(&e))?,
                "ny" => cfg.ny = value.parse().map_err(|e| bad(&e))?,
                "nz" => cfg.nz = value.parse().map_err(|e| bad(&e))?,
                "tau" => cfg.tau = value.parse().map_err(|e| bad(&e))?,
                "u_lattice" => cfg.u_lattice = value.parse().map_err(|e| bad(&e))?,
                "steps" => cfg.steps = value.parse().map_err(|e| bad(&e))?,
                "output_every" => cfg.output_every = value.parse().map_err(|e| bad(&e))?,
                "ranks" => cfg.ranks = value.parse().map_err(|e| bad(&e))?,
                other => {
                    return Err(CoreError::InvalidConfig(format!(
                        "line {}: unknown key '{other}'",
                        lineno + 1
                    )))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CaseConfig::default().validate().unwrap();
    }

    #[test]
    fn parse_overrides_defaults() {
        let cfg = CaseConfig::parse(
            "# demo case\nname = cavity\nnx = 128\nny=96\ntau = 0.9 # stable\nsteps = 50\n",
        )
        .unwrap();
        assert_eq!(cfg.name, "cavity");
        assert_eq!(cfg.nx, 128);
        assert_eq!(cfg.ny, 96);
        assert_eq!(cfg.nz, 1);
        assert!((cfg.tau - 0.9).abs() < 1e-15);
        assert_eq!(cfg.steps, 50);
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = CaseConfig::parse("nxx = 12\n").unwrap_err();
        assert!(err.to_string().contains("unknown key"));
    }

    #[test]
    fn invalid_physics_is_rejected() {
        assert!(CaseConfig::parse("tau = 0.4\n").is_err());
        assert!(CaseConfig::parse("u_lattice = 0.9\n").is_err());
        assert!(CaseConfig::parse("nx = 0\n").is_err());
        assert!(CaseConfig::parse("ranks = 0\n").is_err());
    }

    #[test]
    fn missing_equals_is_reported_with_line() {
        let err = CaseConfig::parse("nx = 4\nbogus line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
