//! STL triangle-mesh reading and writing (ASCII and binary).
//!
//! The paper's mesh generator "supports … geometries from CAD tools with stl
//! format" (§IV-B). STL is a triangle soup: no topology, just facets with a
//! normal — both the `solid …` ASCII dialect and the 80-byte-header binary
//! dialect are implemented, with auto-detection on read.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// One triangle: three vertices (the normal is recomputed on write).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// Vertices in counter-clockwise order (outward normal by right-hand rule).
    pub v: [[f32; 3]; 3],
}

impl Triangle {
    /// Construct from three vertices.
    pub fn new(a: [f32; 3], b: [f32; 3], c: [f32; 3]) -> Self {
        Self { v: [a, b, c] }
    }

    /// Geometric (unnormalized) normal via the cross product.
    pub fn normal(&self) -> [f32; 3] {
        let [a, b, c] = self.v;
        let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let w = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
        [
            u[1] * w[2] - u[2] * w[1],
            u[2] * w[0] - u[0] * w[2],
            u[0] * w[1] - u[1] * w[0],
        ]
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn aabb(&self) -> ([f32; 3], [f32; 3]) {
        let mut lo = self.v[0];
        let mut hi = self.v[0];
        for p in &self.v[1..] {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        (lo, hi)
    }
}

/// STL parsing errors.
#[derive(Debug)]
pub enum StlError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file.
    Malformed(String),
}

impl fmt::Display for StlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StlError::Io(e) => write!(f, "STL I/O error: {e}"),
            StlError::Malformed(m) => write!(f, "malformed STL: {m}"),
        }
    }
}

impl std::error::Error for StlError {}

impl From<io::Error> for StlError {
    fn from(e: io::Error) -> Self {
        StlError::Io(e)
    }
}

/// Read an STL file, auto-detecting ASCII vs binary.
pub fn read_stl(path: &Path) -> Result<Vec<Triangle>, StlError> {
    let bytes = std::fs::read(path)?;
    read_stl_bytes(&bytes)
}

/// Read STL content from a byte buffer, auto-detecting the dialect.
pub fn read_stl_bytes(bytes: &[u8]) -> Result<Vec<Triangle>, StlError> {
    // ASCII files start with "solid" AND parse as text; binary files may also
    // start with "solid" in the comment header, so verify with the facet count.
    let looks_ascii = bytes.starts_with(b"solid")
        && std::str::from_utf8(bytes)
            .map(|s| s.contains("facet"))
            .unwrap_or(false);
    if looks_ascii {
        read_ascii(bytes)
    } else {
        read_binary(bytes)
    }
}

fn read_ascii(bytes: &[u8]) -> Result<Vec<Triangle>, StlError> {
    let reader = BufReader::new(bytes);
    let mut tris = Vec::new();
    let mut verts: Vec<[f32; 3]> = Vec::with_capacity(3);
    for line in reader.lines() {
        let line = line?;
        let mut it = line.split_whitespace();
        match it.next() {
            Some("vertex") => {
                let mut p = [0f32; 3];
                for c in &mut p {
                    *c = it
                        .next()
                        .ok_or_else(|| StlError::Malformed("short vertex line".into()))?
                        .parse()
                        .map_err(|e| StlError::Malformed(format!("bad float: {e}")))?;
                }
                verts.push(p);
                if verts.len() == 3 {
                    tris.push(Triangle { v: [verts[0], verts[1], verts[2]] });
                    verts.clear();
                }
            }
            Some("endfacet") if !verts.is_empty() => {
                return Err(StlError::Malformed(format!(
                    "facet closed with {} vertices",
                    verts.len()
                )));
            }
            _ => {}
        }
    }
    if !verts.is_empty() {
        return Err(StlError::Malformed("dangling vertices at EOF".into()));
    }
    Ok(tris)
}

fn read_binary(bytes: &[u8]) -> Result<Vec<Triangle>, StlError> {
    if bytes.len() < 84 {
        return Err(StlError::Malformed(format!(
            "binary STL needs ≥ 84 bytes, got {}",
            bytes.len()
        )));
    }
    let mut cur = &bytes[80..];
    let mut count_bytes = [0u8; 4];
    cur.read_exact(&mut count_bytes)?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let expect = 84 + count * 50;
    if bytes.len() < expect {
        return Err(StlError::Malformed(format!(
            "binary STL truncated: header promises {count} facets ({expect} B), file has {} B",
            bytes.len()
        )));
    }
    let mut tris = Vec::with_capacity(count);
    for _ in 0..count {
        let mut rec = [0u8; 50];
        cur.read_exact(&mut rec)?;
        let f32_at = |o: usize| {
            f32::from_le_bytes([rec[o], rec[o + 1], rec[o + 2], rec[o + 3]])
        };
        // Skip the 12-byte normal; read the three vertices.
        let mut v = [[0f32; 3]; 3];
        for (i, vert) in v.iter_mut().enumerate() {
            for a in 0..3 {
                vert[a] = f32_at(12 + i * 12 + a * 4);
            }
        }
        tris.push(Triangle { v });
    }
    Ok(tris)
}

/// Write triangles as ASCII STL.
pub fn write_stl_ascii(w: &mut impl Write, name: &str, tris: &[Triangle]) -> io::Result<()> {
    writeln!(w, "solid {name}")?;
    for t in tris {
        let n = t.normal();
        let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt().max(1e-30);
        writeln!(w, "  facet normal {} {} {}", n[0] / len, n[1] / len, n[2] / len)?;
        writeln!(w, "    outer loop")?;
        for p in &t.v {
            writeln!(w, "      vertex {} {} {}", p[0], p[1], p[2])?;
        }
        writeln!(w, "    endloop")?;
        writeln!(w, "  endfacet")?;
    }
    writeln!(w, "endsolid {name}")
}

/// Write triangles as binary STL.
pub fn write_stl_binary(w: &mut impl Write, tris: &[Triangle]) -> io::Result<()> {
    let mut header = [0u8; 80];
    let tag = b"swlb-mesh binary stl";
    header[..tag.len()].copy_from_slice(tag);
    w.write_all(&header)?;
    w.write_all(&(tris.len() as u32).to_le_bytes())?;
    for t in tris {
        let n = t.normal();
        for c in n {
            w.write_all(&c.to_le_bytes())?;
        }
        for p in &t.v {
            for c in p {
                w.write_all(&c.to_le_bytes())?;
            }
        }
        w.write_all(&0u16.to_le_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tetra() -> Vec<Triangle> {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0, 0.0];
        let d = [0.0, 0.0, 1.0];
        vec![
            Triangle::new(a, c, b),
            Triangle::new(a, b, d),
            Triangle::new(a, d, c),
            Triangle::new(b, c, d),
        ]
    }

    #[test]
    fn ascii_roundtrip() {
        let tris = unit_tetra();
        let mut buf = Vec::new();
        write_stl_ascii(&mut buf, "tetra", &tris).unwrap();
        let back = read_stl_bytes(&buf).unwrap();
        assert_eq!(back.len(), 4);
        for (t, u) in tris.iter().zip(back.iter()) {
            for i in 0..3 {
                for a in 0..3 {
                    assert!((t.v[i][a] - u.v[i][a]).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn binary_roundtrip() {
        let tris = unit_tetra();
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &tris).unwrap();
        let back = read_stl_bytes(&buf).unwrap();
        assert_eq!(back.len(), 4);
        for (t, u) in tris.iter().zip(back.iter()) {
            assert_eq!(t.v, u.v);
        }
    }

    #[test]
    fn binary_with_solid_prefix_in_header_is_detected() {
        // Some exporters put "solid" into the binary header; detection must not
        // be fooled because the body is not parseable ASCII.
        let tris = unit_tetra();
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &tris).unwrap();
        buf[..5].copy_from_slice(b"solid");
        let back = read_stl_bytes(&buf).unwrap();
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let tris = unit_tetra();
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &tris).unwrap();
        buf.truncate(100);
        assert!(matches!(read_stl_bytes(&buf), Err(StlError::Malformed(_))));
    }

    #[test]
    fn malformed_ascii_is_rejected() {
        let text = b"solid x\n facet normal 0 0 1\n outer loop\n vertex 0 0\n".to_vec();
        assert!(read_stl_bytes(&text).is_err());
    }

    #[test]
    fn normals_point_outward_for_ccw_winding() {
        let t = Triangle::new([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let n = t.normal();
        assert!(n[2] > 0.0);
    }

    #[test]
    fn aabb_covers_vertices() {
        let t = Triangle::new([0.0, -1.0, 2.0], [3.0, 0.5, -1.0], [1.0, 2.0, 0.0]);
        let (lo, hi) = t.aabb();
        assert_eq!(lo, [0.0, -1.0, -1.0]);
        assert_eq!(hi, [3.0, 2.0, 2.0]);
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join("swlb_stl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tetra.stl");
        let tris = unit_tetra();
        let mut f = std::fs::File::create(&path).unwrap();
        write_stl_binary(&mut f, &tris).unwrap();
        drop(f);
        let back = read_stl(&path).unwrap();
        assert_eq!(back.len(), 4);
        std::fs::remove_file(&path).ok();
    }
}
