//! Procedural urban-area generator.
//!
//! The paper's flagship application (§V-C, Fig. 19) is wind flow over 1 km² of
//! northern Shanghai at 0.1 m resolution — geometry from GIS data we do not
//! have. This module synthesizes a statistically similar city: a street grid of
//! rectangular blocks, each filled with a building of random footprint inset
//! and random height drawn from a configured range (the paper's tallest
//! building is ~80 m under an 8 m/s inlet). The generator is deterministic in
//! its seed so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swlb_core::geometry::GridDims;

/// Parameters of the synthetic city.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UrbanParams {
    /// Street-grid pitch in cells (block + street).
    pub block_pitch: usize,
    /// Street width in cells.
    pub street_width: usize,
    /// Minimum building height in cells.
    pub min_height: usize,
    /// Maximum building height in cells.
    pub max_height: usize,
    /// Probability a block actually carries a building (parks otherwise).
    pub occupancy: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UrbanParams {
    fn default() -> Self {
        Self {
            block_pitch: 16,
            street_width: 4,
            min_height: 4,
            max_height: 24,
            occupancy: 0.85,
            seed: 0x5EED,
        }
    }
}

/// One generated building (axis-aligned box on the ground).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Building {
    /// Footprint lower corner (cells).
    pub lo: [usize; 2],
    /// Footprint upper corner (inclusive, cells).
    pub hi: [usize; 2],
    /// Height (cells above ground).
    pub height: usize,
}

/// A generated city: buildings plus derived statistics.
#[derive(Debug, Clone)]
pub struct UrbanScene {
    /// Generated buildings.
    pub buildings: Vec<Building>,
    params: UrbanParams,
}

impl UrbanScene {
    /// Generate a city covering the `(nx, ny)` footprint of `dims`.
    pub fn generate(dims: GridDims, params: UrbanParams) -> Self {
        assert!(params.block_pitch > params.street_width, "streets eat the blocks");
        assert!(params.max_height >= params.min_height);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut buildings = Vec::new();
        let pitch = params.block_pitch;
        let usable = pitch - params.street_width;
        let mut by = 0;
        while by + pitch <= dims.ny {
            let mut bx = 0;
            while bx + pitch <= dims.nx {
                if rng.gen_bool(params.occupancy) {
                    // Random inset footprint within the usable block area.
                    let w = rng.gen_range(usable / 2..=usable.max(1));
                    let d = rng.gen_range(usable / 2..=usable.max(1));
                    let ox = bx + rng.gen_range(0..=(usable - w));
                    let oy = by + rng.gen_range(0..=(usable - d));
                    let h = rng.gen_range(params.min_height..=params.max_height);
                    buildings.push(Building {
                        lo: [ox, oy],
                        hi: [ox + w - 1, oy + d - 1],
                        height: h.min(dims.nz.saturating_sub(1)),
                    });
                }
                bx += pitch;
            }
            by += pitch;
        }
        Self { buildings, params }
    }

    /// Parameters the scene was generated with.
    pub fn params(&self) -> UrbanParams {
        self.params
    }

    /// Tallest building height (cells).
    pub fn max_height(&self) -> usize {
        self.buildings.iter().map(|b| b.height).max().unwrap_or(0)
    }

    /// Rasterize to a lattice mask (`true` = inside a building). The ground
    /// plane itself is painted separately (`FlagField::paint_ground_z`).
    pub fn to_mask(&self, dims: GridDims) -> Vec<bool> {
        let mut mask = vec![false; dims.cells()];
        for b in &self.buildings {
            for y in b.lo[1]..=b.hi[1].min(dims.ny - 1) {
                for x in b.lo[0]..=b.hi[0].min(dims.nx - 1) {
                    for z in 0..b.height.min(dims.nz) {
                        mask[dims.idx(x, y, z)] = true;
                    }
                }
            }
        }
        mask
    }

    /// Plan-area density: fraction of the footprint covered by buildings —
    /// the λ_p parameter of urban-canopy aerodynamics.
    pub fn plan_density(&self, dims: GridDims) -> f64 {
        let covered: usize = self
            .buildings
            .iter()
            .map(|b| (b.hi[0] - b.lo[0] + 1) * (b.hi[1] - b.lo[1] + 1))
            .sum();
        covered as f64 / (dims.nx * dims.ny) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> GridDims {
        GridDims::new(64, 64, 32)
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = UrbanParams::default();
        let a = UrbanScene::generate(dims(), p);
        let b = UrbanScene::generate(dims(), p);
        assert_eq!(a.buildings, b.buildings);
        let c = UrbanScene::generate(dims(), UrbanParams { seed: 99, ..p });
        assert_ne!(a.buildings, c.buildings);
    }

    #[test]
    fn buildings_respect_height_range_and_grid() {
        let p = UrbanParams {
            min_height: 3,
            max_height: 10,
            ..UrbanParams::default()
        };
        let scene = UrbanScene::generate(dims(), p);
        assert!(!scene.buildings.is_empty());
        for b in &scene.buildings {
            assert!(b.height >= 3 && b.height <= 10);
            assert!(b.hi[0] < 64 && b.hi[1] < 64);
            assert!(b.lo[0] <= b.hi[0] && b.lo[1] <= b.hi[1]);
        }
    }

    #[test]
    fn mask_is_solid_inside_buildings_and_open_above() {
        let scene = UrbanScene::generate(dims(), UrbanParams::default());
        let mask = scene.to_mask(dims());
        let d = dims();
        let b = scene.buildings[0];
        assert!(mask[d.idx(b.lo[0], b.lo[1], 0)]);
        assert!(mask[d.idx(b.hi[0], b.hi[1], b.height - 1)]);
        assert!(!mask[d.idx(b.lo[0], b.lo[1], b.height)]);
    }

    #[test]
    fn streets_remain_open_at_ground_level() {
        // The street rows between blocks must be fluid at z = 0.
        let p = UrbanParams::default();
        let scene = UrbanScene::generate(dims(), p);
        let mask = scene.to_mask(dims());
        let d = dims();
        // The last `street_width` cells of every pitch are street.
        let street_x = p.block_pitch - 1;
        let mut open = 0;
        for y in 0..d.ny {
            if !mask[d.idx(street_x, y, 0)] {
                open += 1;
            }
        }
        assert_eq!(open, d.ny, "street column is blocked somewhere");
    }

    #[test]
    fn occupancy_zero_gives_empty_city() {
        let p = UrbanParams {
            occupancy: 0.0,
            ..UrbanParams::default()
        };
        let scene = UrbanScene::generate(dims(), p);
        assert!(scene.buildings.is_empty());
        assert_eq!(scene.max_height(), 0);
        assert_eq!(scene.plan_density(dims()), 0.0);
    }

    #[test]
    fn plan_density_is_plausible() {
        let scene = UrbanScene::generate(dims(), UrbanParams::default());
        let lambda = scene.plan_density(dims());
        // Dense city blocks: λ_p in a sane urban band.
        assert!(lambda > 0.1 && lambda < 0.7, "λ_p = {lambda}");
    }
}
