//! # swlb-mesh — pre-processing: geometry → lattice masks
//!
//! SunwayLB's pre-processing module (paper §IV-B, Fig. 4) accepts three kinds of
//! geometry input — CAD geometries as STL, terrain files from GIS software, and
//! outlines described directly in the framework — and turns them into boundary
//! flags on the Cartesian lattice. This crate reproduces that pipeline:
//!
//! * [`stl`] — ASCII and binary STL reading and writing;
//! * [`voxel`] — watertight-mesh voxelization by z-column parity counting;
//! * [`primitives`] — analytic shapes (sphere, cylinder, box) and the
//!   DARPA Suboff hull profile used by the paper's §V-B experiment;
//! * [`terrain`] — heightmap (GIS-style) terrain masks;
//! * [`urban`] — the procedural urban-block generator standing in for the
//!   paper's Shanghai GIS data (§V-C).
//!
//! All generators produce a `Vec<bool>` obstacle mask in the memory order of
//! `swlb_core::geometry::GridDims`, consumed by `FlagField::apply_mask`.

// Indexed loops mirror the stencil mathematics throughout this workspace and
// are kept deliberately as the clearer idiom for this domain.
#![allow(clippy::needless_range_loop)]

pub mod primitives;
pub mod stl;
pub mod terrain;
pub mod urban;
pub mod voxel;

pub use primitives::{box_mask, cylinder_z_mask, sphere_mask, suboff_mask, SuboffHull};
pub use stl::{read_stl, read_stl_bytes, write_stl_ascii, write_stl_binary, StlError, Triangle};
pub use terrain::Heightmap;
pub use urban::{UrbanParams, UrbanScene};
pub use voxel::{voxelize, voxelize_instrumented};
