//! Analytic geometry: the "outline described directly inside SunwayLB" input
//! path of the paper's mesh generator, plus the DARPA Suboff hull.
//!
//! Shapes are produced directly as lattice masks via signed tests on cell
//! centers — no triangulation round trip — which is both exact and fast for the
//! canonical benchmark geometries (the flow-past-cylinder of Figs. 12–14, the
//! Suboff of Fig. 18).

use crate::stl::Triangle;
use swlb_core::geometry::GridDims;

/// Mask from an arbitrary inside-test on cell coordinates.
pub fn mask_from(dims: GridDims, mut inside: impl FnMut(usize, usize, usize) -> bool) -> Vec<bool> {
    let mut mask = vec![false; dims.cells()];
    for [x, y, z] in dims.iter() {
        if inside(x, y, z) {
            mask[dims.idx(x, y, z)] = true;
        }
    }
    mask
}

/// Solid sphere centered at `c` (cell coordinates) with radius `r` (cells).
pub fn sphere_mask(dims: GridDims, c: [f64; 3], r: f64) -> Vec<bool> {
    mask_from(dims, |x, y, z| {
        let dx = x as f64 - c[0];
        let dy = y as f64 - c[1];
        let dz = z as f64 - c[2];
        dx * dx + dy * dy + dz * dz <= r * r
    })
}

/// Infinite circular cylinder along z, centered at `(cx, cy)`, radius `r` —
/// the paper's flow-past-cylinder benchmark geometry (the 2-D decomposition
/// keeps the full z axis, so the cylinder spans it).
pub fn cylinder_z_mask(dims: GridDims, cx: f64, cy: f64, r: f64) -> Vec<bool> {
    mask_from(dims, |x, y, _| {
        let dx = x as f64 - cx;
        let dy = y as f64 - cy;
        dx * dx + dy * dy <= r * r
    })
}

/// Axis-aligned solid box spanning `[lo, hi]` (inclusive cell coordinates).
pub fn box_mask(dims: GridDims, lo: [usize; 3], hi: [usize; 3]) -> Vec<bool> {
    mask_from(dims, |x, y, z| {
        x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2]
    })
}

/// Triangulated axis-aligned cube (12 facets) for STL/voxelizer tests.
pub fn cube_triangles(lo: [f32; 3], hi: [f32; 3]) -> Vec<Triangle> {
    let p = |i: usize| {
        [
            if i & 1 == 0 { lo[0] } else { hi[0] },
            if i & 2 == 0 { lo[1] } else { hi[1] },
            if i & 4 == 0 { lo[2] } else { hi[2] },
        ]
    };
    // Each face as two triangles, outward winding.
    let faces: [[usize; 4]; 6] = [
        [0, 2, 3, 1], // z = lo
        [4, 5, 7, 6], // z = hi
        [0, 1, 5, 4], // y = lo
        [2, 6, 7, 3], // y = hi
        [0, 4, 6, 2], // x = lo
        [1, 3, 7, 5], // x = hi
    ];
    let mut tris = Vec::with_capacity(12);
    for f in faces {
        tris.push(Triangle::new(p(f[0]), p(f[1]), p(f[2])));
        tris.push(Triangle::new(p(f[0]), p(f[2]), p(f[3])));
    }
    tris
}

/// Parameters of the axisymmetric DARPA Suboff hull (paper §V-B).
///
/// The real Suboff body (Groves et al., DTRC 1989) is 4.356 m long with a
/// 0.508 m max diameter: a 1.016 m elliptical bow, a parallel mid-body and a
/// 1.141 m tapered stern. We implement that three-segment axisymmetric profile
/// analytically — an accepted stand-in for the CAD file, preserving the
/// geometric character (blunt bow, long mid-body, fine stern) that drives the
/// wake physics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuboffHull {
    /// Hull length in lattice cells.
    pub length: f64,
    /// Maximum hull radius in lattice cells.
    pub radius: f64,
}

impl SuboffHull {
    /// Proportions of the published hull: bow 23.3 %, stern 26.2 % of length.
    const BOW_FRAC: f64 = 1.016 / 4.356;
    const STERN_FRAC: f64 = 1.141 / 4.356;

    /// Hull with the published length:diameter ratio (≈ 8.575) for a given
    /// length in cells.
    pub fn with_length(length: f64) -> Self {
        Self {
            length,
            radius: length * (0.254 / 4.356),
        }
    }

    /// Hull radius at axial position `s ∈ [0, length]` (0 at the bow tip).
    pub fn radius_at(&self, s: f64) -> f64 {
        if s < 0.0 || s > self.length {
            return 0.0;
        }
        let bow = Self::BOW_FRAC * self.length;
        let stern_start = self.length * (1.0 - Self::STERN_FRAC);
        if s < bow {
            // Elliptical bow: r = R √(1 − ((s−b)/b)²).
            let t = (s - bow) / bow;
            self.radius * (1.0 - t * t).max(0.0).sqrt()
        } else if s <= stern_start {
            self.radius
        } else {
            // Cubic taper to a pointed stern with zero slope at the junction.
            let t = (s - stern_start) / (self.length - stern_start);
            self.radius * (1.0 - t * t * (3.0 - 2.0 * t)).max(0.0)
        }
    }
}

/// Lattice mask of a Suboff hull with its axis along +x, nose at cell `nose_x`,
/// axis passing through `(cy, cz)`.
pub fn suboff_mask(dims: GridDims, hull: SuboffHull, nose_x: f64, cy: f64, cz: f64) -> Vec<bool> {
    mask_from(dims, |x, y, z| {
        let s = x as f64 - nose_x;
        let r = hull.radius_at(s);
        if r <= 0.0 {
            return false;
        }
        let dy = y as f64 - cy;
        let dz = z as f64 - cz;
        dy * dy + dz * dz <= r * r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_mask_center_and_surface() {
        let dims = GridDims::new(9, 9, 9);
        let mask = sphere_mask(dims, [4.0, 4.0, 4.0], 2.0);
        assert!(mask[dims.idx(4, 4, 4)]);
        assert!(mask[dims.idx(6, 4, 4)]); // exactly r away (inclusive)
        assert!(!mask[dims.idx(7, 4, 4)]);
        assert!(!mask[dims.idx(0, 0, 0)]);
    }

    #[test]
    fn cylinder_spans_full_z() {
        let dims = GridDims::new(9, 9, 4);
        let mask = cylinder_z_mask(dims, 4.0, 4.0, 1.5);
        for z in 0..4 {
            assert!(mask[dims.idx(4, 4, z)]);
            assert!(!mask[dims.idx(0, 4, z)]);
        }
    }

    #[test]
    fn box_mask_is_inclusive() {
        let dims = GridDims::new(5, 5, 5);
        let mask = box_mask(dims, [1, 1, 1], [3, 3, 3]);
        assert!(mask[dims.idx(1, 1, 1)]);
        assert!(mask[dims.idx(3, 3, 3)]);
        assert!(!mask[dims.idx(0, 1, 1)]);
        assert!(!mask[dims.idx(4, 4, 4)]);
        let solid = mask.iter().filter(|&&s| s).count();
        assert_eq!(solid, 27);
    }

    #[test]
    fn cube_triangulation_has_12_consistent_facets() {
        let tris = cube_triangles([0.0; 3], [1.0; 3]);
        assert_eq!(tris.len(), 12);
        // Total surface area = 6 (two triangles of area 1/2 per face).
        let area: f32 = tris
            .iter()
            .map(|t| {
                let n = t.normal();
                0.5 * (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt()
            })
            .sum();
        assert!((area - 6.0).abs() < 1e-5);
    }

    #[test]
    fn suboff_profile_shape() {
        let hull = SuboffHull::with_length(100.0);
        // Nose and tail are points.
        assert_eq!(hull.radius_at(0.0), 0.0);
        assert!(hull.radius_at(100.0) < 1e-9);
        assert_eq!(hull.radius_at(-1.0), 0.0);
        assert_eq!(hull.radius_at(101.0), 0.0);
        // Mid-body is at max radius.
        let mid = hull.radius_at(50.0);
        assert!((mid - hull.radius).abs() < 1e-12);
        // Published slenderness ratio L/D ≈ 8.575.
        assert!((hull.length / (2.0 * hull.radius) - 4.356 / 0.508).abs() < 1e-9);
        // Monotone rise along the bow.
        assert!(hull.radius_at(5.0) < hull.radius_at(15.0));
        // Monotone fall along the stern.
        assert!(hull.radius_at(80.0) > hull.radius_at(95.0));
    }

    #[test]
    fn suboff_mask_occupies_axis() {
        let dims = GridDims::new(60, 17, 17);
        let hull = SuboffHull::with_length(40.0);
        let mask = suboff_mask(dims, hull, 10.0, 8.0, 8.0);
        // Mid-body axis cell is solid.
        assert!(mask[dims.idx(30, 8, 8)]);
        // Ahead of the nose is fluid.
        assert!(!mask[dims.idx(5, 8, 8)]);
        // Radially far is fluid.
        assert!(!mask[dims.idx(30, 0, 8)]);
        // The hull is slender: solid fraction small but nonzero.
        let f = crate::voxel::solid_fraction(&mask);
        assert!(f > 0.01 && f < 0.2, "fraction {f}");
    }
}
