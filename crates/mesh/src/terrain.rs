//! GIS-style terrain heightmaps.
//!
//! The paper's mesh generator ingests "terrain files from GIS software"
//! (§IV-B). We implement the equivalent: a rectangular grid of ground heights,
//! loadable from a simple ASCII grid format (`ncols`, `nrows`, then row-major
//! values — the core of the ESRI ASCII-grid dialect) or synthesized
//! procedurally, and rasterized to a lattice mask (`true` below ground).

use swlb_core::geometry::GridDims;

/// A rectangular ground-height field (heights in lattice cells).
#[derive(Debug, Clone, PartialEq)]
pub struct Heightmap {
    ncols: usize,
    nrows: usize,
    /// Row-major heights: `h[row * ncols + col]`.
    h: Vec<f64>,
}

impl Heightmap {
    /// Build from explicit data. `h.len()` must be `ncols · nrows`.
    pub fn new(ncols: usize, nrows: usize, h: Vec<f64>) -> Self {
        assert!(ncols > 0 && nrows > 0, "heightmap extents must be nonzero");
        assert_eq!(h.len(), ncols * nrows, "heightmap data length mismatch");
        Self { ncols, nrows, h }
    }

    /// Grid extents `(ncols, nrows)`.
    pub fn extents(&self) -> (usize, usize) {
        (self.ncols, self.nrows)
    }

    /// Parse the ASCII grid dialect:
    ///
    /// ```text
    /// ncols 4
    /// nrows 2
    /// 1.0 2.0 3.0 4.0
    /// 2.0 3.0 4.0 5.0
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut ncols = None;
        let mut nrows = None;
        let mut values = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace().peekable();
            match it.peek().copied() {
                Some("ncols") => {
                    it.next();
                    ncols = Some(
                        it.next()
                            .ok_or("ncols missing value")?
                            .parse::<usize>()
                            .map_err(|e| format!("bad ncols: {e}"))?,
                    );
                }
                Some("nrows") => {
                    it.next();
                    nrows = Some(
                        it.next()
                            .ok_or("nrows missing value")?
                            .parse::<usize>()
                            .map_err(|e| format!("bad nrows: {e}"))?,
                    );
                }
                _ => {
                    for tok in it {
                        values.push(tok.parse::<f64>().map_err(|e| format!("bad value: {e}"))?);
                    }
                }
            }
        }
        let (nc, nr) = (
            ncols.ok_or("missing ncols header")?,
            nrows.ok_or("missing nrows header")?,
        );
        if values.len() != nc * nr {
            return Err(format!(
                "expected {} values ({nc}×{nr}), got {}",
                nc * nr,
                values.len()
            ));
        }
        Ok(Self::new(nc, nr, values))
    }

    /// Synthetic rolling terrain: superposed sinusoidal ridges — a stand-in for
    /// real GIS data that exercises exactly the same code path.
    pub fn rolling(ncols: usize, nrows: usize, base: f64, amplitude: f64) -> Self {
        let mut h = Vec::with_capacity(ncols * nrows);
        for r in 0..nrows {
            for c in 0..ncols {
                let u = c as f64 / ncols.max(1) as f64 * std::f64::consts::TAU;
                let v = r as f64 / nrows.max(1) as f64 * std::f64::consts::TAU;
                h.push(base + amplitude * (0.6 * (2.0 * u).sin() + 0.4 * (3.0 * v).cos()).abs());
            }
        }
        Self::new(ncols, nrows, h)
    }

    /// Ground height under lattice column `(x, y)` (nearest-sample lookup,
    /// clamped at the edges).
    pub fn height_at(&self, x: usize, y: usize, dims: GridDims) -> f64 {
        let c = x * self.ncols / dims.nx.max(1);
        let r = y * self.nrows / dims.ny.max(1);
        self.h[r.min(self.nrows - 1) * self.ncols + c.min(self.ncols - 1)]
    }

    /// Rasterize to a lattice mask: cell `(x, y, z)` is solid iff
    /// `z < height(x, y)`.
    pub fn to_mask(&self, dims: GridDims) -> Vec<bool> {
        let mut mask = vec![false; dims.cells()];
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let h = self.height_at(x, y, dims);
                let top = h.max(0.0).min(dims.nz as f64) as usize;
                for z in 0..top {
                    mask[dims.idx(x, y, z)] = true;
                }
            }
        }
        mask
    }

    /// Highest point of the terrain.
    pub fn max_height(&self) -> f64 {
        self.h.iter().fold(0.0f64, |a, &b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ascii_grid() {
        let text = "# demo\nncols 3\nnrows 2\n1 2 3\n4 5 6\n";
        let hm = Heightmap::parse(text).unwrap();
        assert_eq!(hm.extents(), (3, 2));
        assert_eq!(hm.max_height(), 6.0);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Heightmap::parse("nrows 2\n1 2\n").is_err()); // missing ncols
        assert!(Heightmap::parse("ncols 2\nnrows 2\n1 2 3\n").is_err()); // short data
        assert!(Heightmap::parse("ncols 2\nnrows 1\n1 x\n").is_err()); // bad float
    }

    #[test]
    fn mask_fills_below_ground() {
        let hm = Heightmap::new(2, 2, vec![1.0, 3.0, 0.0, 2.0]);
        let dims = GridDims::new(2, 2, 4);
        let mask = hm.to_mask(dims);
        // Column (0,0): height 1 → z=0 solid only.
        assert!(mask[dims.idx(0, 0, 0)]);
        assert!(!mask[dims.idx(0, 0, 1)]);
        // Column (1,0): height 3 → z=0..2 solid.
        assert!(mask[dims.idx(1, 0, 2)]);
        assert!(!mask[dims.idx(1, 0, 3)]);
        // Column (0,1): height 0 → nothing solid.
        assert!(!mask[dims.idx(0, 1, 0)]);
    }

    #[test]
    fn heights_clamp_at_grid_top() {
        let hm = Heightmap::new(1, 1, vec![99.0]);
        let dims = GridDims::new(2, 2, 3);
        let mask = hm.to_mask(dims);
        assert!(mask.iter().all(|&s| s));
    }

    #[test]
    fn rolling_terrain_is_bounded_and_varied() {
        let hm = Heightmap::rolling(32, 32, 2.0, 5.0);
        assert!(hm.max_height() >= 2.0);
        assert!(hm.max_height() <= 7.0 + 1e-9);
        // Not flat.
        let (nc, nr) = hm.extents();
        let dims = GridDims::new(nc, nr, 10);
        let a = hm.height_at(0, 0, dims);
        let different = (0..nc).any(|x| (hm.height_at(x, 7, dims) - a).abs() > 1e-6);
        assert!(different);
    }

    #[test]
    fn nearest_sample_scales_to_lattice() {
        let hm = Heightmap::new(2, 1, vec![1.0, 4.0]);
        let dims = GridDims::new(8, 1, 6);
        // Left half of the lattice maps to sample 0, right half to sample 1.
        assert_eq!(hm.height_at(1, 0, dims), 1.0);
        assert_eq!(hm.height_at(6, 0, dims), 4.0);
    }
}
