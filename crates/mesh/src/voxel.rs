//! Triangle-mesh voxelization by z-column **winding-number** counting.
//!
//! For every lattice column `(x, y)` we cast a ray along +z through the triangle
//! soup and record each crossing with the *orientation* of the pierced facet
//! (±1 from the sign of its projected area). A cell is inside when the summed
//! orientation of the crossings below it is nonzero. Compared with plain parity
//! counting this cancels tangential grazings — e.g. where a slanted face meets
//! a base plane at the same height, the +1/−1 pair annihilates instead of
//! flooding the column — while duplicate hits on shared edges of coplanar
//! facets (same sign, same height) are deduplicated. `O(columns · triangles)`
//! with an AABB pre-filter; the standard scan-conversion of LBM pre-processors.

use crate::stl::Triangle;
use swlb_core::geometry::GridDims;
use swlb_obs::Recorder;

/// Map a triangle mesh onto a lattice mask (`true` = solid).
///
/// `origin` is the physical position of cell `(0,0,0)`'s center and `dx` the
/// cell pitch; the mesh is in the same physical units.
pub fn voxelize(dims: GridDims, origin: [f32; 3], dx: f32, tris: &[Triangle]) -> Vec<bool> {
    voxelize_instrumented(dims, origin, dx, tris, &Recorder::disabled())
}

/// [`voxelize`] with pre-processing metrics reported through `recorder`:
/// `voxelize.ns` (wall time), `voxelize.columns_hit` (columns with at least
/// one crossing), `voxelize.ray_tests` (AABB-surviving ray/triangle tests)
/// and `voxelize.solid_cells`. Statistics accumulate in locals and post once
/// at the end, so the inner loops carry no atomics even when enabled.
pub fn voxelize_instrumented(
    dims: GridDims,
    origin: [f32; 3],
    dx: f32,
    tris: &[Triangle],
    recorder: &Recorder,
) -> Vec<bool> {
    assert!(dx > 0.0, "cell pitch must be positive");
    let t0 = recorder.now();
    let mut mask = vec![false; dims.cells()];
    let mut columns_hit = 0u64;
    let mut ray_tests = 0u64;
    let mut solid_cells = 0u64;

    // Per-column signed crossings (z, facet orientation).
    for y in 0..dims.ny {
        if tris.is_empty() {
            break;
        }
        let py = origin[1] + y as f32 * dx;
        for x in 0..dims.nx {
            let px = origin[0] + x as f32 * dx;
            let mut crossings: Vec<(f32, i32)> = Vec::new();
            for t in tris {
                let (lo, hi) = t.aabb();
                if px < lo[0] || px > hi[0] || py < lo[1] || py > hi[1] {
                    continue;
                }
                ray_tests += 1;
                if let Some(hit) = ray_z_intersection(t, px, py) {
                    crossings.push(hit);
                }
            }
            if crossings.is_empty() {
                continue;
            }
            columns_hit += 1;
            crossings.sort_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
            });
            // Deduplicate same-orientation hits on shared edges of coplanar
            // facets; opposite orientations at the same height must survive so
            // they cancel in the winding sum.
            crossings.dedup_by(|a, b| (a.0 - b.0).abs() < dx * 1e-4 && a.1 == b.1);
            for z in 0..dims.nz {
                let pz = origin[2] + z as f32 * dx;
                let winding: i32 = crossings
                    .iter()
                    .filter(|&&(c, _)| c <= pz)
                    .map(|&(_, s)| s)
                    .sum();
                if winding != 0 {
                    mask[dims.idx(x, y, z)] = true;
                    solid_cells += 1;
                }
            }
        }
    }
    if let Some(t0) = t0 {
        recorder.counter("voxelize.ns").add(t0.elapsed().as_nanos() as u64);
        recorder.counter("voxelize.columns_hit").add(columns_hit);
        recorder.counter("voxelize.ray_tests").add(ray_tests);
        recorder.counter("voxelize.solid_cells").add(solid_cells);
    }
    mask
}

/// Intersection of the vertical line `(px, py)` with the triangle, if the
/// point lies inside the triangle's xy projection: returns `(z, orientation)`
/// where orientation is the sign of the facet's projected (signed) area —
/// +1 for upward-facing facets, −1 for downward-facing ones.
fn ray_z_intersection(t: &Triangle, px: f32, py: f32) -> Option<(f32, i32)> {
    let [a, b, c] = t.v;
    // 2-D barycentric coordinates in the xy plane.
    let v0 = [b[0] - a[0], b[1] - a[1]];
    let v1 = [c[0] - a[0], c[1] - a[1]];
    let v2 = [px - a[0], py - a[1]];
    let den = v0[0] * v1[1] - v1[0] * v0[1];
    if den.abs() < 1e-12 {
        return None; // degenerate in projection (vertical facet)
    }
    let inv = 1.0 / den;
    let u = (v2[0] * v1[1] - v1[0] * v2[1]) * inv;
    let v = (v0[0] * v2[1] - v2[0] * v0[1]) * inv;
    // Half-open edge rule to avoid double counting on shared edges.
    if u < 0.0 || v < 0.0 || u + v > 1.0 {
        return None;
    }
    let z = a[2] + u * (b[2] - a[2]) + v * (c[2] - a[2]);
    Some((z, if den > 0.0 { 1 } else { -1 }))
}

/// Fraction of `mask` cells that are solid.
pub fn solid_fraction(mask: &[bool]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|&&s| s).count() as f64 / mask.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::cube_triangles;

    #[test]
    fn empty_mesh_gives_empty_mask() {
        let dims = GridDims::new(4, 4, 4);
        let mask = voxelize(dims, [0.0; 3], 1.0, &[]);
        assert!(mask.iter().all(|&s| !s));
    }

    #[test]
    fn unit_cube_fills_expected_cells() {
        // Cube spanning [2, 6) in all axes on a 8³ grid with dx = 1: cell
        // centers 2..6 are inside (x=2,3,4,5), outside elsewhere.
        let tris = cube_triangles([2.0, 2.0, 2.0], [6.0, 6.0, 6.0]);
        let dims = GridDims::new(8, 8, 8);
        let mask = voxelize(dims, [0.5; 3], 1.0, &tris);
        // Center of cell i is 0.5 + i.
        let inside = |i: usize| (2.0..6.0).contains(&(0.5 + i as f32));
        for [x, y, z] in dims.iter() {
            let expect = inside(x) && inside(y) && inside(z);
            assert_eq!(
                mask[dims.idx(x, y, z)],
                expect,
                "cell ({x},{y},{z}) center {}",
                0.5 + z as f32
            );
        }
    }

    #[test]
    fn solid_fraction_matches_volume_ratio() {
        let tris = cube_triangles([0.0, 0.0, 0.0], [5.0, 5.0, 5.0]);
        let dims = GridDims::new(10, 10, 10);
        let mask = voxelize(dims, [0.5; 3], 1.0, &tris);
        let f = solid_fraction(&mask);
        // 5³/10³ = 0.125 exactly at these alignments.
        assert!((f - 0.125).abs() < 0.02, "fraction = {f}");
    }

    #[test]
    fn column_outside_mesh_stays_fluid() {
        let tris = cube_triangles([10.0, 10.0, 0.0], [12.0, 12.0, 2.0]);
        let dims = GridDims::new(4, 4, 4);
        let mask = voxelize(dims, [0.0; 3], 1.0, &tris);
        assert!(mask.iter().all(|&s| !s));
    }

    #[test]
    fn instrumented_voxelize_reports_counters_and_matches_plain() {
        let tris = cube_triangles([2.0, 2.0, 2.0], [6.0, 6.0, 6.0]);
        let dims = GridDims::new(8, 8, 8);
        let plain = voxelize(dims, [0.5; 3], 1.0, &tris);

        let rec = Recorder::enabled();
        let instrumented = voxelize_instrumented(dims, [0.5; 3], 1.0, &tris, &rec);
        assert_eq!(plain, instrumented, "instrumentation must not change the mask");

        let snap = rec.snapshot(0).unwrap();
        let solid = plain.iter().filter(|&&s| s).count() as u64;
        assert_eq!(snap.counter("voxelize.solid_cells"), Some(solid));
        // The cube covers a 4×4 block of columns.
        assert_eq!(snap.counter("voxelize.columns_hit"), Some(16));
        assert!(snap.counter("voxelize.ray_tests").unwrap() >= 16);
        assert!(snap.counter("voxelize.ns").unwrap() > 0);
    }

    #[test]
    fn voxelized_tetrahedron_is_nonempty_and_bounded() {
        let a = [1.0, 1.0, 1.0];
        let b = [7.0, 1.0, 1.0];
        let c = [1.0, 7.0, 1.0];
        let d = [1.0, 1.0, 7.0];
        let tris = vec![
            Triangle::new(a, c, b),
            Triangle::new(a, b, d),
            Triangle::new(a, d, c),
            Triangle::new(b, c, d),
        ];
        let dims = GridDims::new(8, 8, 8);
        let mask = voxelize(dims, [0.5; 3], 1.0, &tris);
        let f = solid_fraction(&mask);
        // Tetra volume = 36; grid volume 512 → ~7 %.
        assert!(f > 0.02 && f < 0.15, "fraction = {f}");
        // The centroid cell is inside.
        assert!(mask[dims.idx(2, 2, 2)]);
        // A far corner is outside.
        assert!(!mask[dims.idx(7, 7, 7)]);
    }
}
