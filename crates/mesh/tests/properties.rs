//! Property-based tests of the pre-processing pipeline: voxelization must
//! agree with analytic inside-tests, STL must round-trip, masks must respect
//! their defining geometry for arbitrary parameters.

use proptest::prelude::*;
use swlb_core::geometry::GridDims;
use swlb_mesh::primitives::cube_triangles;
use swlb_mesh::{
    box_mask, cylinder_z_mask, read_stl_bytes, sphere_mask, suboff_mask, voxelize,
    write_stl_ascii, write_stl_binary, Heightmap, SuboffHull, Triangle,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn voxelized_cube_matches_analytic_box(
        lo in 0.5f32..3.0,
        size in 1.0f32..5.0,
    ) {
        let hi = lo + size;
        let tris = cube_triangles([lo; 3], [hi; 3]);
        let dims = GridDims::new(10, 10, 10);
        let mask = voxelize(dims, [0.5; 3], 1.0, &tris);
        for [x, y, z] in dims.iter() {
            let p = |i: usize| 0.5 + i as f32;
            let inside =
                p(x) > lo && p(x) < hi && p(y) > lo && p(y) < hi && p(z) > lo && p(z) < hi;
            // Cells whose center is strictly inside must be solid; strictly
            // outside (by over half a cell) must be fluid. Surface cells may
            // go either way.
            let margin = 0.51;
            let well_inside = p(x) > lo + margin && p(x) < hi - margin
                && p(y) > lo + margin && p(y) < hi - margin
                && p(z) > lo + margin && p(z) < hi - margin;
            let well_outside = p(x) < lo - margin || p(x) > hi + margin
                || p(y) < lo - margin || p(y) > hi + margin
                || p(z) < lo - margin || p(z) > hi + margin;
            if well_inside {
                prop_assert!(mask[dims.idx(x, y, z)], "({x},{y},{z}) should be solid");
            }
            if well_outside {
                prop_assert!(!mask[dims.idx(x, y, z)], "({x},{y},{z}) should be fluid");
            }
            let _ = inside;
        }
    }

    #[test]
    fn stl_binary_roundtrip_arbitrary_triangles(
        coords in prop::collection::vec(-100.0f32..100.0, 9..90),
    ) {
        let tris: Vec<Triangle> = coords
            .chunks_exact(9)
            .map(|c| Triangle::new(
                [c[0], c[1], c[2]],
                [c[3], c[4], c[5]],
                [c[6], c[7], c[8]],
            ))
            .collect();
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &tris).unwrap();
        let back = read_stl_bytes(&buf).unwrap();
        prop_assert_eq!(back.len(), tris.len());
        for (a, b) in tris.iter().zip(back.iter()) {
            prop_assert_eq!(a.v, b.v);
        }
    }

    #[test]
    fn stl_ascii_roundtrip_within_f32_print_precision(
        coords in prop::collection::vec(-10.0f32..10.0, 9..45),
    ) {
        let tris: Vec<Triangle> = coords
            .chunks_exact(9)
            .map(|c| Triangle::new(
                [c[0], c[1], c[2]],
                [c[3], c[4], c[5]],
                [c[6], c[7], c[8]],
            ))
            .collect();
        let mut buf = Vec::new();
        write_stl_ascii(&mut buf, "prop", &tris).unwrap();
        let back = read_stl_bytes(&buf).unwrap();
        prop_assert_eq!(back.len(), tris.len());
        for (a, b) in tris.iter().zip(back.iter()) {
            for i in 0..3 {
                for k in 0..3 {
                    prop_assert!((a.v[i][k] - b.v[i][k]).abs() <= 1e-4 * a.v[i][k].abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn sphere_mask_is_point_symmetric(r in 0.5f64..4.0) {
        let dims = GridDims::new(11, 11, 11);
        let mask = sphere_mask(dims, [5.0, 5.0, 5.0], r);
        for [x, y, z] in dims.iter() {
            let m = mask[dims.idx(x, y, z)];
            let m2 = mask[dims.idx(10 - x, 10 - y, 10 - z)];
            prop_assert_eq!(m, m2);
        }
    }

    #[test]
    fn cylinder_mask_is_z_invariant(cx in 2.0f64..8.0, cy in 2.0f64..8.0, r in 0.5f64..3.0) {
        let dims = GridDims::new(10, 10, 4);
        let mask = cylinder_z_mask(dims, cx, cy, r);
        for y in 0..10 {
            for x in 0..10 {
                let base = mask[dims.idx(x, y, 0)];
                for z in 1..4 {
                    prop_assert_eq!(mask[dims.idx(x, y, z)], base);
                }
            }
        }
    }

    #[test]
    fn box_mask_cell_count_is_exact(
        x0 in 0usize..4, y0 in 0usize..4, z0 in 0usize..4,
        w in 0usize..4, h in 0usize..4, d in 0usize..4,
    ) {
        let dims = GridDims::new(8, 8, 8);
        let hi = [(x0 + w).min(7), (y0 + h).min(7), (z0 + d).min(7)];
        let mask = box_mask(dims, [x0, y0, z0], hi);
        let count = mask.iter().filter(|&&s| s).count();
        let expect = (hi[0] - x0 + 1) * (hi[1] - y0 + 1) * (hi[2] - z0 + 1);
        prop_assert_eq!(count, expect);
    }

    #[test]
    fn suboff_radius_profile_is_bounded_and_continuous(len in 20.0f64..200.0) {
        let hull = SuboffHull::with_length(len);
        let n = 400;
        let mut prev = hull.radius_at(len * 0.02);
        for i in 9..=n {
            // Skip the first 2 % of the hull: the elliptical bow has a √-type
            // profile whose slope is unbounded at the very tip, so pointwise
            // continuity bounds only apply away from it.
            let s = len * i as f64 / n as f64;
            let r = hull.radius_at(s);
            prop_assert!(r >= 0.0 && r <= hull.radius + 1e-12);
            prop_assert!(
                (r - prev).abs() <= hull.radius * 0.08,
                "jump at s={s}: {prev} -> {r}"
            );
            prev = r;
        }
        // The bow rises monotonically from the tip.
        let bow = 1.016 / 4.356 * len;
        let mut last = 0.0;
        for i in 0..=50 {
            let r = hull.radius_at(bow * i as f64 / 50.0);
            prop_assert!(r >= last - 1e-12, "bow not monotone at sample {i}");
            last = r;
        }
    }

    #[test]
    fn suboff_mask_is_axisymmetric(len in 20.0f64..40.0) {
        let dims = GridDims::new(48, 13, 13);
        let hull = SuboffHull::with_length(len);
        let mask = suboff_mask(dims, hull, 4.0, 6.0, 6.0);
        for [x, y, z] in dims.iter() {
            // Reflect through the axis plane y -> 12-y, z -> 12-z.
            let m = mask[dims.idx(x, y, z)];
            prop_assert_eq!(m, mask[dims.idx(x, 12 - y, z)]);
            prop_assert_eq!(m, mask[dims.idx(x, y, 12 - z)]);
        }
    }

    #[test]
    fn heightmap_mask_is_monotone_in_z(
        heights in prop::collection::vec(0.0f64..8.0, 9),
    ) {
        let hm = Heightmap::new(3, 3, heights);
        let dims = GridDims::new(6, 6, 8);
        let mask = hm.to_mask(dims);
        // If (x, y, z) is fluid then everything above it must be fluid too.
        for y in 0..6 {
            for x in 0..6 {
                let mut seen_fluid = false;
                for z in 0..8 {
                    let solid = mask[dims.idx(x, y, z)];
                    if seen_fluid {
                        prop_assert!(!solid, "solid above fluid at ({x},{y},{z})");
                    }
                    if !solid {
                        seen_fluid = true;
                    }
                }
            }
        }
    }
}
