# Developer entry points. `just --list` to see them all.

# Build everything in release mode.
build:
    cargo build --release --workspace

# The full test suite.
test:
    cargo test --workspace -q

# Lints as CI runs them.
lint:
    cargo clippy --workspace --all-targets -- -D warnings

# The chaos/resilience suite: fault injection, retry healing, rollback
# recovery (deterministic seeds — failures reproduce exactly).
chaos:
    cargo test -q -p swlb-sim --release --test chaos_recovery

# Observability guarantees: zero-alloc disabled path, JSONL schema,
# counters-vs-report agreement; then measured vs modeled MLUPS side by side.
obs:
    cargo test -q -p swlb-obs
    cargo test -q -p swlb-sim --release --test obs_integration
    cargo run --release -p swlb-bench --bin obs_measured_vs_model

# The serving acceptance suite (docs/SERVING.md): clippy-clean serve crate,
# the loopback integration tests, and the heavier --ignored soak.
serve-check:
    cargo clippy -p swlb-serve --all-targets -- -D warnings
    cargo test -q -p swlb-serve
    cargo test -q -p swlb-serve --release --test serve_integration -- --ignored

# Crash-safety acceptance (docs/SERVING.md, "Durability & crash recovery"):
# SIGKILL the real server binary mid-workload, restart on the same state
# dir, and prove exactly-once job accounting — plus corrupt-journal replay,
# corrupt-checkpoint fallback and the chaos-injected failure domains. The
# second line is the heavier multi-cycle kill soak.
crash-check:
    cargo test -q -p swlb-serve --release --test serve_crash
    cargo test -q -p swlb-serve --release --test serve_crash -- --ignored

# Quick bench sanity: run the native scalar-vs-SIMD sweep in quick mode,
# validate the emitted JSON schema (host metadata included), and run the
# cross-layer equivalence suites for the unified dispatch pipeline.
bench-smoke:
    cargo run --release -p swlb-bench --bin native_scaling -- --quick --json /tmp/bench_pr4_smoke.json
    cargo run --release -p swlb-bench --bin native_scaling -- --validate /tmp/bench_pr4_smoke.json
    cargo test -q -p swlb-sim --release --test unified_dispatch
    cargo test -q -p swlb-sim --release --test simd_equivalence

# The SIMD correctness contract, both ways: native dispatch (tolerance-based
# under AVX2+FMA) and SWLB_NO_SIMD=1 (portable lane, bit-exact everywhere).
simd-check:
    cargo test -q -p swlb-sim --release --test simd_equivalence --test unified_dispatch
    cargo test -q -p swlb-core --release
    SWLB_NO_SIMD=1 cargo test -q -p swlb-sim --release --test simd_equivalence --test unified_dispatch
    SWLB_NO_SIMD=1 cargo test -q -p swlb-core --release

# The full sweep behind docs/PERFORMANCE.md: 128^3 cavity, scalar vs SIMD
# across 1/2/4 threads, rewrites BENCH_pr4.json in the repository root.
bench-sweep:
    cargo run --release -p swlb-bench --bin native_scaling -- --json BENCH_pr4.json

# AA-pattern acceptance (docs/PERFORMANCE.md, "Streaming patterns"): the
# storage-scheme smoke sweep + schema validation, the AA↔AB equivalence
# matrix (native lanes and the pinned AVX-512/portable-8 policies), the
# cross-scheme checkpoint roundtrip, and the same matrix under
# SWLB_NO_SIMD=1 where every lane falls back to scalar semantics.
aa-check:
    cargo run --release -p swlb-bench --bin native_scaling -- --pr6 --quick --json /tmp/bench_pr6_smoke.json
    cargo run --release -p swlb-bench --bin native_scaling -- --validate /tmp/bench_pr6_smoke.json
    cargo test -q -p swlb-sim --release --test unified_dispatch --test simd_equivalence --test checkpoint_roundtrip
    SWLB_NO_SIMD=1 cargo test -q -p swlb-sim --release --test unified_dispatch --test simd_equivalence

# Rank-elastic checkpoint acceptance (docs/SERVING.md, "Elastic resume"):
# the checkpoint-on-N / resume-on-M equivalence matrix (AB and mid-parity
# AA, including degenerate narrow source subdomains), rollback across a
# reshard, the service-level shrink-and-grow cycle, and the malformed
# checkpoint corpus — every truncated or hostile header must fail typed,
# never panic.
reshard-check:
    cargo test -q -p swlb-sim --release --test checkpoint_roundtrip
    cargo test -q -p swlb-sim --release --lib resilience
    cargo test -q -p swlb-io
    cargo test -q -p swlb-serve --release --test serve_integration elastic

# The full AB-vs-AA storage-scheme sweep: 128^3 and 256^3 cavities across
# 1/2/4 threads and the host's SIMD lanes, rewrites BENCH_pr6.json.
bench-pr6:
    cargo run --release -p swlb-bench --bin native_scaling -- --pr6 --json BENCH_pr6.json

# Temporal-blocking acceptance (docs/PERFORMANCE.md, "Temporal blocking"):
# the quick depth-k smoke sweep + schema validation (halo-message k-times
# reduction included), the depth-k vs depth-1 equivalence matrix, the
# depth-k conservation proptest, and the blocked checkpoint/reshard
# roundtrips.
tb-check:
    cargo run --release -p swlb-bench --bin native_scaling -- --pr9 --quick --json /tmp/bench_pr9_smoke.json
    cargo run --release -p swlb-bench --bin native_scaling -- --validate /tmp/bench_pr9_smoke.json
    cargo test -q -p swlb-sim --release --test unified_dispatch temporal_blocking
    cargo test -q -p swlb-core --release --test properties temporal_blocking
    cargo test -q -p swlb-sim --release --test checkpoint_roundtrip

# The full temporal-blocking sweep: depth 1/2/4 for both storage schemes on
# 128^3 and 256^3 cavities plus the distributed halo-message accounting,
# rewrites BENCH_pr9.json.
bench-pr9:
    cargo run --release -p swlb-bench --bin native_scaling -- --pr9 --json BENCH_pr9.json

# Regenerate every paper figure/table harness.
figures:
    for bin in fig08_kernel_speedup roofline_table fig13_weak_taihulight \
               fig14_strong_taihulight fig15_weak_newsunway fig16_strong_newsunway \
               fig11_gpu_opt fig17_gpu_strong fusion_dma_table ablation_blocking \
               ablation_schedule related_work_table; do \
        cargo run --release -p swlb-bench --bin $bin; done

# The fleet acceptance suite (docs/SERVING.md, "Fleet"): clippy-clean fleet
# crate, the unit + integration tests (quota enforcement, aging starvation
# regression, bit-exact cross-width migration), the kill -9 pair (worker
# death resumed on a survivor, controller death replayed exactly-once), and
# a scaled 1000-job churn soak. The 100k soak stays behind --ignored.
fleet-check:
    cargo clippy -p swlb-fleet --all-targets -- -D warnings
    cargo test -q -p swlb-fleet
    cargo test -q -p swlb-fleet --release --test fleet_crash
    cargo run --release -p swlb-fleet --bin fleet_soak -- --jobs 1000 --workers 4 --churn-every 250 --out /tmp/fleet_soak.jsonl
