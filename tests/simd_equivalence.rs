//! SIMD vs scalar vs generic kernel equivalence — the correctness contract of
//! the vectorized D3Q19 dispatch (paper Fig. 8's vectorization rung).
//!
//! Three kernel classes serve interior BGK cells: the generic per-cell
//! reference, the hand-optimized mask-scalar kernel, and the lane kernel
//! (portable `[f64; 4]` or AVX2+FMA). The contract:
//!
//! * portable lane ↔ scalar ↔ generic: **bit-exact** (the portable lane uses
//!   unfused multiply-add, so its expression tree rounds identically), for
//!   every tile size, obstacle layout, and rank topology;
//! * AVX2+FMA lane ↔ scalar: within `1e-12` per step (fused multiply-adds
//!   round once where the scalar kernel rounds twice).
//!
//! The lane policy is a process-global knob, so every test that touches it
//! serializes on a mutex and restores `Auto` before releasing it.

use std::sync::Mutex;

use swlb_comm::World;
use swlb_core::collision::{BgkParams, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::kernels::{fused_step, fused_step_optimized, InteriorIndex};
use swlb_core::lattice::{Lattice, D3Q19};
use swlb_core::layout::{PopField, SoaField};
use swlb_core::parallel::ThreadPool;
use swlb_core::simd::{
    selected_kernel_class, set_lane_policy, simd_available, KernelClass, LanePolicy,
};
use swlb_core::Scalar;
use swlb_sim::engine::{DistributedSolver, ExchangeMode};

/// Serializes lane-policy mutation across this binary's test threads.
static POLICY_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the process-global lane policy pinned, restoring `Auto`.
fn with_policy<T>(policy: LanePolicy, f: impl FnOnce() -> T) -> T {
    let _guard = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lane_policy(policy);
    let out = f();
    set_lane_policy(LanePolicy::Auto);
    out
}

fn init_state(x: usize, y: usize, z: usize) -> (Scalar, [Scalar; 3]) {
    let v = 0.01 * ((x * 7 + y * 3 + z) % 11) as Scalar;
    (1.0 + v, [v * 0.1, -v * 0.05, 0.02 * v])
}

/// A cavity with an off-center obstacle: interior runs of full lane width,
/// sub-lane tails, and a split pencil.
fn obstacle_flags(dims: GridDims) -> FlagField {
    let mut flags = FlagField::new(dims);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    flags.set(
        dims.nx / 2,
        dims.ny / 2,
        dims.nz / 2,
        swlb_core::boundary::NodeKind::Wall,
    );
    flags
}

fn serial_step(flags: &FlagField, src: &SoaField<D3Q19>, coll: &CollisionKind) -> SoaField<D3Q19> {
    let mut dst = SoaField::<D3Q19>::new(src.dims());
    fused_step(flags, src, &mut dst, coll);
    dst
}

fn optimized_step(
    flags: &FlagField,
    src: &SoaField<D3Q19>,
    coll: &CollisionKind,
    interior: &InteriorIndex,
    tile_z: usize,
) -> (SoaField<D3Q19>, KernelClass) {
    let dims = src.dims();
    let mut dst = SoaField::<D3Q19>::new(dims);
    let class = fused_step_optimized(flags, src, &mut dst, coll, interior, 0..dims.ny, tile_z);
    (dst, class)
}

fn assert_fields_close(a: &SoaField<D3Q19>, b: &SoaField<D3Q19>, tol: f64, what: &str) {
    for cell in 0..a.dims().cells() {
        for q in 0..D3Q19::Q {
            let (x, y) = (a.get(cell, q), b.get(cell, q));
            assert!(
                (x - y).abs() <= tol,
                "{what}: cell {cell} q {q}: {x} vs {y}"
            );
        }
    }
}

/// Portable lane, mask-scalar kernel, and generic reference agree bit-for-bit
/// for every tile size exercised elsewhere in the suite.
#[test]
fn portable_lane_is_bit_exact_against_scalar_and_generic() {
    let dims = GridDims::new(10, 8, 14);
    let flags = obstacle_flags(dims);
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, init_state);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let interior = InteriorIndex::build::<D3Q19>(&flags);
    let reference = serial_step(&flags, &src, &coll);

    for tile_z in [0usize, 1, 2, 70] {
        let (scalar, sc) = with_policy(LanePolicy::ForceScalar, || {
            optimized_step(&flags, &src, &coll, &interior, tile_z)
        });
        let (portable, pc) = with_policy(LanePolicy::ForcePortable, || {
            optimized_step(&flags, &src, &coll, &interior, tile_z)
        });
        assert_eq!(sc, KernelClass::Scalar);
        assert_eq!(pc, KernelClass::Scalar);
        assert_fields_close(&reference, &scalar, 0.0, &format!("scalar tile_z={tile_z}"));
        assert_fields_close(
            &reference,
            &portable,
            0.0,
            &format!("portable tile_z={tile_z}"),
        );
    }
}

/// The auto-selected native lane stays within the dispatch tolerance of the
/// generic reference — and is bit-exact whenever the host (or `SWLB_NO_SIMD`)
/// leaves it on scalar semantics.
#[test]
fn native_lane_stays_within_dispatch_tolerance() {
    let dims = GridDims::new(9, 9, 16);
    let flags = obstacle_flags(dims);
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, init_state);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.7));
    let interior = InteriorIndex::build::<D3Q19>(&flags);
    let reference = serial_step(&flags, &src, &coll);

    let (native, class) = with_policy(LanePolicy::Auto, || {
        optimized_step(&flags, &src, &coll, &interior, 0)
    });
    let tol = match class {
        KernelClass::Simd => 1e-12,
        _ => 0.0,
    };
    assert_fields_close(&reference, &native, tol, "auto lane vs generic");
    // The reported class must be consistent with what the host offers.
    if class == KernelClass::Simd {
        assert!(simd_available());
    }
}

/// `SWLB_NO_SIMD=1` (how CI pins the fallback) must never select the SIMD
/// class, and in that environment the whole suite runs bit-exact.
#[test]
fn no_simd_env_never_selects_simd_class() {
    if std::env::var("SWLB_NO_SIMD").as_deref() == Ok("1") {
        let _guard = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert_ne!(selected_kernel_class(), KernelClass::Simd);
    }
}

/// AA-pattern storage must agree with AB under every pinned lane policy —
/// the portable lanes (4- and 8-wide), the mask-scalar kernel, the AVX2+FMA
/// lane, and the 8-wide AVX-512F lane where the host detects `avx512f`
/// (`ForceAvx512` falls back to the bit-identical portable 8-wide lane
/// elsewhere, so the matrix is runnable on any host). Odd step counts end at
/// Streamed parity, even ones Reversed; both are canonicalized for the
/// comparison, fluid cells only (AA wall slots are scatter mailboxes).
#[test]
fn aa_matches_ab_under_every_lane_policy() {
    use swlb_core::layout::StorageScheme;
    use swlb_core::solver::Solver;

    let dims = GridDims::new(12, 10, 14);
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
    let flags = obstacle_flags(dims);

    let run = |scheme: StorageScheme, steps: u64| {
        let mut s = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(0.8))
            .storage(scheme)
            .build();
        s.flags_mut().set_box_walls();
        s.flags_mut().paint_lid([0.05, 0.0, 0.0]);
        s.flags_mut().set(
            dims.nx / 2,
            dims.ny / 2,
            dims.nz / 2,
            swlb_core::boundary::NodeKind::Wall,
        );
        s.initialize_field(init_state);
        s.run(steps);
        s.canonical_populations().into_owned()
    };

    for policy in [
        LanePolicy::ForcePortable,
        LanePolicy::ForceScalar,
        LanePolicy::ForceAvx2,
        LanePolicy::ForceAvx512,
        LanePolicy::Auto,
    ] {
        with_policy(policy, || {
            for steps in [4u64, 5] {
                let ab = run(StorageScheme::Ab, steps);
                let aa = run(StorageScheme::Aa, steps);
                for cell in 0..dims.cells() {
                    if flags.kind(cell) != swlb_core::boundary::NodeKind::Fluid {
                        continue;
                    }
                    for q in 0..D3Q19::Q {
                        let (x, y) = (ab.get(cell, q), aa.get(cell, q));
                        assert!(
                            (x - y).abs() <= tol,
                            "{policy:?} steps={steps}: cell {cell} q {q}: {x} vs {y}"
                        );
                    }
                }
            }
        });
    }
}

/// Distributed matrix on the portable lane: bit-exact against the serial
/// generic reference across ranks, schedules, and degenerate subdomains.
#[test]
fn distributed_portable_lane_matches_reference_exactly() {
    with_policy(LanePolicy::ForcePortable, || {
        // Deep z so interior runs reach full lane width; 6 ranks on the small
        // grid produce degenerate subdomains whose inner rectangle is empty.
        for (global, ranks) in [
            (GridDims::new(12, 10, 12), 4usize),
            (GridDims::new(5, 4, 8), 6),
        ] {
            let flags = obstacle_flags(global);
            let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
            let steps = 4u64;
            let mut src = SoaField::<D3Q19>::new(global);
            swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, init_state);
            let mut dst = SoaField::<D3Q19>::new(global);
            for _ in 0..steps {
                fused_step(&flags, &src, &mut dst, &coll);
                std::mem::swap(&mut src, &mut dst);
            }
            let reference = src;

            for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
                let flags_ref = &flags;
                let out = World::new(ranks).run(|comm| {
                    let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
                        .exchange(mode)
                        .pool(ThreadPool::new(2).with_tile_z(3))
                        .build();
                    s.initialize_with(init_state);
                    s.run(steps).unwrap();
                    s.gather_populations().unwrap()
                });
                let got = out.into_iter().next().unwrap().expect("rank 0 gathers");
                assert_fields_close(
                    &reference,
                    &got,
                    0.0,
                    &format!("portable distributed {mode:?} ranks={ranks}"),
                );
            }
        }
    });
}
