//! Fleet-tier acceptance suite — the controller + worker-pool behaviours
//! that the `swlb-fleet` crate promises, exercised over real sockets with
//! in-process controller and worker instances:
//!
//! * a mixed multi-tenant workload placed across two workers runs every job
//!   to completion with fleet ids stable and stats breakdowns consistent;
//! * per-tenant quotas cap *concurrent placements* at the fleet level, and
//!   priority aging lets a waiting Batch job overtake Interactive work
//!   submitted after it (the starvation-bound regression);
//! * the migration envelope round-trips a v3 chunked checkpoint bit-exact
//!   between stores at different execution widths, both at the API level
//!   and over the real worker handoff → push HTTP path;
//! * `submit_with_retry` rides through a journal-full degraded window;
//! * the worker-side `/v1/stats` exposes per-priority queue depth and
//!   per-tenant running/queued counts.
//!
//! The 100k-job soak stays `--ignored`; `just fleet-check` runs the 1k CI
//! variant of the same binary.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use swlb_fleet::{Controller, FleetConfig, PolicyConfig};
use swlb_serve::json::Json;
use swlb_serve::{
    http, CaseKind, CaseSpec, JobSpec, LatticeKind, Priority, PushEnvelope, ServeClient,
    ServeConfig, Server, StorageScheme,
};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swlb-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cavity(nx: usize, ny: usize) -> CaseSpec {
    CaseSpec {
        case: CaseKind::Cavity,
        lattice: LatticeKind::D2Q9,
        nx,
        ny,
        nz: 1,
        tau: 0.8,
        u_lattice: 0.05,
        storage: StorageScheme::Ab,
        time_block: 1,
    }
}

fn job(name: &str, steps: u64, priority: Priority, tenant: &str) -> JobSpec {
    JobSpec {
        name: name.into(),
        case: cavity(10, 10),
        steps,
        priority,
        deadline_ms: None,
        outputs: vec![],
        chaos_nan_at_step: None,
        width: 1,
        tenant: tenant.into(),
    }
}

/// Spawn an in-process worker-mode serve instance and register it with the
/// controller at `controller_addr`.
fn spawn_worker(dir: &Path, name: &str, controller_addr: &str, slice_steps: u64) -> Server {
    let worker_dir = dir.join(name);
    let mut cfg = ServeConfig::new(&worker_dir);
    cfg.worker_routes = true;
    cfg.slice_steps = slice_steps;
    cfg.threads = 2;
    cfg.capacity = 16;
    let server = Server::spawn(cfg).expect("spawn worker");
    let body = Json::obj([
        ("name", Json::str(name)),
        ("addr", Json::str(server.addr().to_string())),
        (
            "dir",
            Json::str(
                worker_dir
                    .canonicalize()
                    .unwrap_or(worker_dir)
                    .display()
                    .to_string(),
            ),
        ),
    ])
    .to_text();
    let (status, _) = http::roundtrip(
        controller_addr,
        "POST",
        "/v1/fleet/register",
        body.as_bytes(),
    )
    .expect("register worker");
    assert_eq!(status, 200, "worker registration refused");
    server
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn field_str<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or("")
}

/// Poll the fleet job list until `pred` holds; panic with state on timeout.
fn wait_fleet(
    client: &ServeClient,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&[Json]) -> bool,
) -> Vec<Json> {
    let start = Instant::now();
    loop {
        if let Ok(items) = client.list() {
            if pred(&items) {
                return items;
            }
            if start.elapsed() > timeout {
                let states: Vec<String> = items
                    .iter()
                    .map(|j| {
                        format!(
                            "#{} {} {}",
                            field_u64(j, "id"),
                            field_str(j, "state"),
                            field_str(j, "tenant"),
                        )
                    })
                    .collect();
                panic!("timed out waiting for {what}; fleet jobs: {states:?}");
            }
        } else if start.elapsed() > timeout {
            panic!("timed out waiting for {what}; controller unreachable");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn fleet_places_and_completes_a_mixed_workload() {
    let dir = unique_dir("mixed");
    let mut cfg = FleetConfig::new(dir.join("controller"));
    cfg.heartbeat = Duration::from_millis(40);
    let controller = Controller::spawn(cfg).unwrap();
    let caddr = controller.addr().to_string();
    let w1 = spawn_worker(&dir, "w1", &caddr, 16);
    let w2 = spawn_worker(&dir, "w2", &caddr, 16);

    let client = ServeClient::new(caddr);
    let mut ids = Vec::new();
    for (i, (tenant, priority)) in [
        ("alpha", Priority::Interactive),
        ("alpha", Priority::Batch),
        ("beta", Priority::Batch),
        ("beta", Priority::Interactive),
        ("alpha", Priority::Batch),
        ("beta", Priority::Batch),
    ]
    .iter()
    .enumerate()
    {
        ids.push(
            client
                .submit(&job(&format!("mix-{i}"), 32, *priority, tenant))
                .unwrap(),
        );
    }
    // Fleet ids are controller-assigned and dense from 1.
    assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);

    let finished = wait_fleet(&client, Duration::from_secs(60), "mixed workload", |jobs| {
        jobs.len() == 6 && jobs.iter().all(|j| field_str(j, "state") == "completed")
    });
    // Both workers took part (the placer spreads by load).
    let stats = client.stats().unwrap();
    assert_eq!(field_u64(&stats, "completed"), 6);
    assert_eq!(field_u64(&stats, "pending"), 0);
    let workers = stats.get("workers").and_then(Json::as_arr).unwrap();
    assert_eq!(workers.len(), 2);
    assert!(workers
        .iter()
        .all(|w| w.get("alive") == Some(&Json::Bool(true))));
    // Tenant breakdown drops tenants once their jobs are all terminal.
    for j in &finished {
        assert!(["alpha", "beta"].contains(&field_str(j, "tenant")));
    }
    w1.shutdown();
    w2.shutdown();
    controller.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_quota_caps_concurrent_placements() {
    let dir = unique_dir("quota");
    let mut cfg = FleetConfig::new(dir.join("controller"));
    cfg.heartbeat = Duration::from_millis(30);
    cfg.policy = PolicyConfig {
        quotas: vec![("capped".into(), 1)],
        ..PolicyConfig::default()
    };
    let controller = Controller::spawn(cfg).unwrap();
    let caddr = controller.addr().to_string();
    let worker = spawn_worker(&dir, "w1", &caddr, 8);

    let client = ServeClient::new(caddr);
    for i in 0..3 {
        client
            .submit(&job(&format!("capped-{i}"), 64, Priority::Batch, "capped"))
            .unwrap();
    }
    // While any job is still pending, the tenant must never have more than
    // its quota of placements.
    let start = Instant::now();
    loop {
        let jobs = client.list().unwrap();
        let placed = jobs
            .iter()
            .filter(|j| field_str(j, "state") == "placed")
            .count();
        let done = jobs
            .iter()
            .filter(|j| field_str(j, "state") == "completed")
            .count();
        assert!(placed <= 1, "quota violated: {placed} concurrent placements");
        if done == 3 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "quota workload never finished"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    worker.shutdown();
    controller.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_aging_lets_batch_overtake_later_interactive() {
    let dir = unique_dir("aging");
    let mut cfg = FleetConfig::new(dir.join("controller"));
    cfg.heartbeat = Duration::from_millis(30);
    cfg.per_worker_cap = 1; // one placement at a time: ordering is visible
    cfg.policy.aging_ticks = 3;
    cfg.rebalance = false;
    let controller = Controller::spawn(cfg).unwrap();
    let caddr = controller.addr().to_string();
    let worker = spawn_worker(&dir, "w1", &caddr, 8);

    let client = ServeClient::new(caddr);
    // The runner occupies the single slot long enough for aging to act; the
    // batch job waits behind it.
    let mut runner_spec = job("runner", 3000, Priority::Interactive, "t");
    runner_spec.case = cavity(40, 40);
    let runner = client.submit(&runner_spec).unwrap();
    let batch = client.submit(&job("batch", 16, Priority::Batch, "t")).unwrap();
    // Let the batch job age past the Interactive base weight (4): with
    // aging_ticks = 3 that is 9 ticks ≈ 270 ms of heartbeats.
    std::thread::sleep(Duration::from_millis(600));
    let late = client
        .submit(&job("late", 16, Priority::Interactive, "t"))
        .unwrap();

    wait_fleet(&client, Duration::from_secs(60), "aging workload", |jobs| {
        jobs.iter().all(|j| field_str(j, "state") == "completed")
    });
    // The aged batch job must have been placed before the younger
    // interactive one — otherwise a steady interactive stream starves Batch
    // forever. Placement order is observable in the journal: Placed records
    // appear in decision order.
    let (lines, _) = swlb_io::Journal::replay(&dir.join("controller").join("journal")).unwrap();
    let placed_order: Vec<u64> = lines
        .iter()
        .filter_map(|l| swlb_serve::json::parse(l).ok())
        .filter(|v| field_str(v, "rec") == "placed")
        .map(|v| field_u64(&v, "id"))
        .collect();
    let pos = |id: u64| {
        placed_order
            .iter()
            .position(|x| *x == id)
            .unwrap_or_else(|| panic!("job {id} never placed; order {placed_order:?}"))
    };
    assert!(pos(runner) < pos(batch));
    assert!(
        pos(batch) < pos(late),
        "aged batch job was starved: placement order {placed_order:?}"
    );
    worker.shutdown();
    controller.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn migration_envelope_roundtrips_bit_exact_across_widths() {
    use swlb_core::parallel::ThreadPool;
    use swlb_io::{read_any_checkpoint, AnyCheckpoint, CheckpointStore};
    use swlb_obs::Recorder;

    let dir = unique_dir("bitexact");
    // Source: an elastic solver at width 2, advanced far enough that the
    // state is nontrivial, captured in the v3 chunked format.
    let spec = cavity(14, 12);
    let mut src = spec
        .build_with_width(ThreadPool::new(1), Recorder::disabled(), 2)
        .unwrap();
    src.run_checked(24, 8).unwrap();
    let ck = src.capture_chunked();
    let reference = ck.assemble_global().unwrap();

    // Sender half: persist through the store, then lift the exact on-disk
    // bytes into an envelope — the controller's migration path.
    let store_a = CheckpointStore::new(dir.join("a"), 2).unwrap();
    store_a.save_chunked(&ck).unwrap();
    let (step, bytes) = store_a.latest_valid_bytes().unwrap().unwrap();
    assert_eq!(step, 24);
    let env = PushEnvelope {
        spec: job("mig", 96, Priority::Batch, "acme"),
        fleet_id: 7,
        step,
        width: 2,
        ckpt: bytes.clone(),
    };
    let env2 = PushEnvelope::decode(&env.encode()).unwrap();
    assert_eq!(env, env2, "envelope encode/decode must be lossless");

    // Receiver half: seed the wire bytes into a fresh store. The installed
    // file is byte-identical to the source store's newest checkpoint.
    let store_b = CheckpointStore::new(dir.join("b"), 2).unwrap();
    store_b.seed_bytes(env2.step, &env2.ckpt).unwrap();
    let (step_b, bytes_b) = store_b.latest_valid_bytes().unwrap().unwrap();
    assert_eq!(step_b, 24);
    assert_eq!(bytes_b, bytes, "migration altered the checkpoint bytes");

    // Restore at a *different* width (3) and at width 1 (serial): the
    // assembled global state matches the width-2 capture exactly.
    let restored = match store_b.load_latest_valid_any().unwrap().unwrap() {
        (AnyCheckpoint::Chunked(ck), _) => ck,
        other => panic!("expected a chunked checkpoint, got {other:?}"),
    };
    assert_eq!(restored.assemble_global().unwrap(), reference);
    for width in [1u32, 3] {
        let mut dst = spec
            .build_with_width(ThreadPool::new(1), Recorder::disabled(), width)
            .unwrap();
        dst.restore_chunked_state(&restored).unwrap();
        assert_eq!(dst.step_count(), 24);
        assert_eq!(
            dst.capture_chunked().assemble_global().unwrap(),
            reference,
            "width-2 → width-{width} restore is not bit-exact"
        );
    }
    // Sanity on the raw parse path the receiver uses to verify transit.
    assert!(matches!(
        read_any_checkpoint(&mut bytes.as_slice()).unwrap(),
        AnyCheckpoint::Chunked(_)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn handoff_then_push_migrates_between_workers_at_new_width() {
    let dir = unique_dir("handoff");
    // Two bare workers, no controller: this drives the worker-side HTTP
    // surface (handoff → envelope → push) directly.
    let mut cfg_a = ServeConfig::new(dir.join("a"));
    cfg_a.worker_routes = true;
    cfg_a.slice_steps = 8;
    let a = Server::spawn(cfg_a).unwrap();
    let mut cfg_b = ServeConfig::new(dir.join("b"));
    cfg_b.worker_routes = true;
    cfg_b.slice_steps = 8;
    let b = Server::spawn(cfg_b).unwrap();
    let client_a = ServeClient::new(a.addr().to_string());
    let client_b = ServeClient::new(b.addr().to_string());

    // A width-2 job on worker A; wait until it has checkpointed progress.
    let mut spec = job("mover", 512, Priority::Batch, "acme");
    spec.width = 2;
    let local_a = client_a.submit(&spec).unwrap();
    let start = Instant::now();
    loop {
        let st = client_a.status(local_a).unwrap();
        if field_u64(&st, "steps_done") >= 24 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "job never progressed on worker A"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Handoff: worker A parks the job at a slice boundary and ships the
    // envelope with its newest checkpoint.
    let (status, body) = http::roundtrip(
        &a.addr().to_string(),
        "POST",
        &format!("/v1/jobs/{local_a}/handoff"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200, "handoff refused");
    let mut env = PushEnvelope::decode(&body).unwrap();
    assert!(env.step >= 8, "envelope carries no progress: step {}", env.step);
    assert!(!env.ckpt.is_empty(), "envelope carries no checkpoint");
    let st = client_a.status(local_a).unwrap();
    assert_eq!(field_str(&st, "state"), "checkpointed");

    // The controller would stamp the fleet id and may re-shard: resume on
    // worker B at width 3. Width lives in the spec (the scheduler derives
    // each slice's effective width from it); `env.width` seeds the
    // last-ran-at bookkeeping.
    env.fleet_id = 42;
    env.spec.width = 3;
    env.width = 3;
    let (status, body) = http::roundtrip(
        &b.addr().to_string(),
        "POST",
        "/v1/fleet/push",
        &env.encode(),
    )
    .unwrap();
    assert_eq!(status, 202, "push refused");
    let resp = swlb_serve::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let local_b = field_u64(&resp, "id");
    assert_eq!(field_u64(&resp, "fleet_id"), 42);

    // Worker B runs it to completion from the migrated checkpoint — never
    // from step 0 — at the new width.
    let start = Instant::now();
    loop {
        let st = client_b.status(local_b).unwrap();
        if field_str(&st, "state") == "completed" {
            assert_eq!(field_u64(&st, "steps_done"), 512);
            assert_eq!(field_u64(&st, "width"), 3);
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "migrated job never completed on worker B"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let events = client_b.watch(local_b, 0).unwrap();
    let resumed_at = events
        .iter()
        .filter_map(|e| swlb_serve::json::parse(e).ok())
        .find(|e| field_str(e, "event") == "resumed")
        .map(|e| field_u64(&e, "at_step"))
        .expect("pushed job should resume from the migrated checkpoint");
    assert_eq!(
        resumed_at, env.step,
        "worker B resumed at {resumed_at}, envelope carried step {}",
        env.step
    );
    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_with_retry_rides_through_degraded_admission() {
    let dir = unique_dir("retry");
    let mut cfg = ServeConfig::new(&dir);
    cfg.chaos_routes = true;
    let server = Server::spawn(cfg).unwrap();
    let addr = server.addr().to_string();
    let client = ServeClient::new(addr.clone());

    // Journal disk "full": plain submit gets 503/Unavailable.
    let (status, _) =
        http::roundtrip(&addr, "POST", "/v1/chaos/journal-full?mode=on", b"").unwrap();
    assert_eq!(status, 200);
    assert!(matches!(
        client.submit(&job("plain", 16, Priority::Batch, "acme")),
        Err(swlb_obs::SwlbError::Unavailable(_))
    ));

    // Recovery lands mid-retry-loop; the retrying submit succeeds and
    // reports how many attempts the degraded window cost.
    let flipper = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            let (status, _) =
                http::roundtrip(&addr, "POST", "/v1/chaos/journal-full?mode=off", b"").unwrap();
            assert_eq!(status, 200);
        })
    };
    let (id, retries) = client
        .submit_with_retry(
            &job("retried", 16, Priority::Batch, "acme"),
            8,
            Duration::from_millis(50),
        )
        .expect("retry loop should outlast the degraded window");
    flipper.join().unwrap();
    assert!(retries > 0, "admission succeeded without retrying");
    let events = client.watch(id, 0).unwrap();
    assert!(events.iter().any(|e| e.contains("completed")));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_stats_break_down_queue_and_tenants() {
    let dir = unique_dir("stats");
    let mut cfg = ServeConfig::new(&dir);
    cfg.threads = 1; // one runner at a time; everything else queues
    cfg.slice_steps = 8;
    let server = Server::spawn(cfg).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    // Three long jobs on one scheduler thread: always 1 running + 2 queued
    // (modulo slice boundaries), with the runner rotating under fair share.
    let slow = |name: &str, priority, tenant: &str| {
        let mut s = job(name, 30_000, priority, tenant);
        s.case = cavity(32, 32);
        s
    };
    let ids = vec![
        client.submit(&slow("a-batch-1", Priority::Batch, "acme")).unwrap(),
        client.submit(&slow("a-batch-2", Priority::Batch, "acme")).unwrap(),
        client
            .submit(&slow("g-inter", Priority::Interactive, "globex"))
            .unwrap(),
    ];

    // Poll for the snapshot where an acme batch job holds the slot: the
    // breakdown must then show the interactive job and the other batch job
    // waiting, attributed to the right tenants.
    let start = Instant::now();
    let stats = loop {
        let s = client.stats().unwrap();
        let acme_running = s
            .get("tenants")
            .and_then(|t| t.get("acme"))
            .map(|a| field_u64(a, "running"))
            .unwrap_or(0);
        // live = running + waiting; 3 live with 2 waiting = exactly 1 slice
        // in flight.
        if field_u64(&s, "live") == 3 && field_u64(&s, "queue_depth") == 2 && acme_running == 1 {
            break s;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "never observed an acme job running with 2 queued: {}",
            s.to_text()
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(field_u64(&stats, "queue_depth_interactive"), 1);
    assert_eq!(field_u64(&stats, "queue_depth_batch"), 1);
    let tenants = stats.get("tenants").expect("tenants breakdown");
    let acme = tenants.get("acme").expect("acme tenant entry");
    assert_eq!(field_u64(acme, "running"), 1);
    assert_eq!(field_u64(acme, "queued"), 1);
    let globex = tenants.get("globex").expect("globex tenant entry");
    assert_eq!(field_u64(globex, "running"), 0);
    assert_eq!(field_u64(globex, "queued"), 1);

    for id in ids {
        client.cancel(id).unwrap();
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full-scale soak from the issue: 100k jobs through admit / preempt /
/// migrate / worker-kill cycles. CI runs the 1k variant via `just
/// fleet-check`; this stays opt-in.
#[test]
#[ignore = "100k-job soak; run explicitly with --ignored"]
fn fleet_soak_100k_jobs() {
    let dir = unique_dir("soak-100k");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_fleet_soak"))
        .args([
            "--jobs",
            "100000",
            "--workers",
            "4",
            "--churn-every",
            "5000",
            "--dir",
            dir.to_str().unwrap(),
            "--out",
            dir.join("soak.jsonl").to_str().unwrap(),
        ])
        .status()
        .expect("run fleet_soak");
    assert!(status.success(), "soak reported lost or failed jobs");
    let _ = std::fs::remove_dir_all(&dir);
}
