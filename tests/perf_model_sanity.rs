//! Cross-checks between the performance model, the functional emulator and the
//! paper's published numbers — the glue that makes the scaling figures
//! (Figs. 8, 11, 13–17) trustworthy reproductions rather than curve fits.

use swlb_arch::cpe::{CoreGroupExecutor, FusionMode};
use swlb_arch::gpu::{GpuModel, GpuStage};
use swlb_arch::machine::MachineSpec;
use swlb_arch::perf::{OptStage, PerfModel, Workload, BYTES_PER_LUP};
use swlb_comm::netmodel::NetworkModel;
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::D3Q19;
use swlb_core::layout::{PopField, SoaField};

/// The emulator's *measured* fusion saving must agree with the model's
/// traffic accounting: split mode adds exactly one read+write sweep.
#[test]
fn emulator_fusion_saving_matches_model_accounting() {
    let dims = GridDims::new(10, 12, 12);
    let flags = FlagField::new(dims);
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, |_, _, _| {
        (1.0, [0.01, 0.0, 0.0])
    });

    let fused = CoreGroupExecutor::new(MachineSpec::taihulight()).with_cpes(6);
    let split = CoreGroupExecutor::new(MachineSpec::taihulight())
        .with_cpes(6)
        .with_fusion(FusionMode::Split);

    let mut d1 = SoaField::<D3Q19>::new(dims);
    let c_fused = fused.step(&flags, &src, &mut d1, 1.25).unwrap();
    let mut d2 = SoaField::<D3Q19>::new(dims);
    let c_split = split.step(&flags, &src, &mut d2, 1.25).unwrap();

    let extra = (c_split.dma.bytes() - c_fused.dma.bytes()) as f64;
    let model_extra = dims.cells() as f64 * 19.0 * 8.0 * 2.0;
    assert!(
        (extra - model_extra).abs() < 1e-9,
        "measured extra {extra} vs model {model_extra}"
    );
}

/// The model's roofline bound equals the paper's formula exactly:
/// `32 GiB/s ÷ 380 B = 90.4 MLUPS`, and scaled by 160,000 CGs ≈ 14,464 GLUPS.
#[test]
fn roofline_aggregates_match_paper() {
    let m = PerfModel::taihulight();
    let per_cg = m.roofline_mlups();
    assert!((per_cg - 90.4).abs() < 0.5);
    let total_glups = per_cg * 160_000.0 / 1000.0;
    assert!((total_glups - 14_464.0).abs() / 14_464.0 < 0.01, "{total_glups}");
}

/// The paper's bandwidth-utilization arithmetic (§V-A.2): 11245 GLUPS at
/// 380 B/LUP over 160,000 CGs of 32 GiB/s = 77 %.
#[test]
fn papers_utilization_formula_reproduces_77_percent() {
    let numer = 11_245e9 * BYTES_PER_LUP;
    let denom = 32.0 * (1u64 << 30) as f64 * 160_000.0;
    let util = numer / denom;
    assert!((util - 0.77).abs() < 0.01, "util = {util}");
}

/// And the Pro's (§V-A.3, decimal GB): 6583 GLUPS × 380 B / (51.2 GB/s × 60,000)
/// = 81.4 %.
#[test]
fn papers_pro_utilization_formula_reproduces_81_percent() {
    let util = 6_583e9 * BYTES_PER_LUP / (51.2e9 * 60_000.0);
    assert!((util - 0.814).abs() < 0.01, "util = {util}");
}

/// Weak-scaling GLUPS grows ~linearly in P; strong-scaling step time shrinks
/// with P but efficiency decays — the qualitative shapes of Figs. 13/14.
#[test]
fn scaling_series_shapes() {
    let m = PerfModel::taihulight();
    let w = Workload::taihulight_weak_block();
    let weak = m.weak_scaling(&w, &[1, 16, 256, 4096, 65536]);
    for pair in weak.windows(2) {
        assert!(pair[1].glups > pair[0].glups * 10.0); // 16x procs, ≥10x GLUPS
    }
    let strong = m.strong_scaling((10000, 10000, 5000), &[16384, 65536, 160000]);
    for pair in strong.windows(2) {
        assert!(pair[1].step_time < pair[0].step_time);
        assert!(pair[1].efficiency <= pair[0].efficiency + 1e-12);
    }
}

/// The Fig. 8 ladder and the Fig. 11 GPU ladder both end within the paper's
/// headline speedups.
#[test]
fn headline_speedups() {
    let m = PerfModel::taihulight();
    let w = Workload::taihulight_weak_block();
    let sunway = m.stage_time(OptStage::MpeOnly, &w, 1)
        / m.stage_time(OptStage::AssemblyOpt, &w, 1);
    assert!((sunway - 172.0).abs() / 172.0 < 0.12, "Sunway ladder: {sunway}x");

    let g = GpuModel::rtx3090_cluster();
    let wind = (1400, 2800, 100);
    let cells = 392_000_000;
    let gpu = g.stage_time(GpuStage::CpuBaseline, cells, wind)
        / g.stage_time(GpuStage::CommunicationOpt, cells, wind);
    assert!(gpu > 150.0 && gpu < 230.0, "GPU ladder: {gpu}x (paper 191x)");
}

/// Network model consistency: the halo exchange of the weak-scaling block is
/// well under the optimized step time (the premise of the on-the-fly scheme),
/// while at extreme strong scaling it no longer is negligible.
#[test]
fn halo_exchange_is_hidden_at_weak_scaling() {
    let m = PerfModel::taihulight();
    let w = Workload::taihulight_weak_block();
    let t_comm = m.comm_time(&w, 160_000);
    let t_step = m.step_time(&w, 1);
    assert!(
        t_comm < 0.1 * t_step,
        "weak-scaling halo {t_comm} vs step {t_step}"
    );

    // Strong-scaled pencil: 25×25×5000 per rank — comm fraction grows.
    let w_small = Workload::new(25, 25, 5000);
    let t_comm_small = m.comm_time(&w_small, 160_000);
    let t_dma_small = m.dma_time(&w_small, BYTES_PER_LUP);
    assert!(t_comm_small / t_dma_small > t_comm / t_step);
}

/// Jitter model: monotone in P and in the right order of magnitude to explain
/// the paper's ~94 % weak-scaling efficiency at 160,000 processes.
#[test]
fn jitter_scale_matches_efficiency_loss() {
    let net = NetworkModel::taihulight();
    let m = PerfModel::taihulight();
    let w = Workload::taihulight_weak_block();
    let t_step1 = m.step_time(&w, 1);
    let j = net.jitter(160_000);
    let implied_eff = t_step1 / (t_step1 + j);
    assert!(
        implied_eff > 0.88 && implied_eff < 0.99,
        "implied weak efficiency {implied_eff} (paper: ~94 %)"
    );
}

/// GPU utilization bookkeeping: the final stage is pinned to the paper's
/// measured 83.8 % HBM efficiency.
#[test]
fn gpu_final_stage_uses_papers_utilization() {
    let g = GpuModel::rtx3090_cluster();
    assert!((g.hbm_eff_final - 0.838).abs() < 1e-12);
    // Memory-bound throughput per GPU at that efficiency:
    let mlups = g.machine.cg.dma_bw * g.hbm_eff_final / BYTES_PER_LUP / 1e6;
    // RTX 3090: 936 GB/s × 0.838 / 380 B ≈ 2064 MLUPS.
    assert!((mlups - 2064.0).abs() / 2064.0 < 0.02, "{mlups}");
}
