//! Cross-layer equivalence of the unified execution pipeline.
//!
//! Every dispatch level must reproduce the serial generic reference: the
//! pooled + z-blocked shared-memory dispatch and the distributed solver's
//! inner-rectangle/boundary-ring split under both exchange schedules — for
//! every combination of thread count, tile size, and rank count, including
//! degenerate subdomains whose inner rectangle is empty. Parallelism and
//! blocking only re-schedule independent per-cell updates, so paths with
//! scalar semantics (generic fallback, `SWLB_NO_SIMD=1`, the portable lane)
//! are compared with `assert_eq!`; when the host auto-selects the AVX2+FMA
//! lane its fused multiply-adds legitimately differ from the scalar reference
//! by rounding, and those comparisons use
//! `swlb_core::simd::dispatch_tolerance()` instead.

use swlb_comm::World;
use swlb_core::collision::{BgkParams, CollisionKind, SmagorinskyParams};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::kernels::fused_step;
use swlb_core::lattice::{Lattice, D2Q9, D3Q19};
use swlb_core::layout::{PopField, SoaField, StorageScheme};
use swlb_core::parallel::ThreadPool;
use swlb_core::Scalar;
use swlb_sim::engine::{DistributedSolver, ExchangeMode};

fn init_state(x: usize, y: usize, z: usize) -> (Scalar, [Scalar; 3]) {
    let v = 0.01 * ((x * 7 + y * 3 + z) % 11) as Scalar;
    (1.0 + v, [v * 0.1, -v * 0.05, 0.02 * v])
}

fn reference_run<L: Lattice>(
    global: GridDims,
    flags: &FlagField,
    coll: &CollisionKind,
    steps: u64,
) -> SoaField<L> {
    let mut src = SoaField::<L>::new(global);
    swlb_core::kernels::initialize_with::<L, _>(flags, &mut src, init_state);
    let mut dst = SoaField::<L>::new(global);
    for _ in 0..steps {
        fused_step(flags, &src, &mut dst, coll);
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[allow(clippy::too_many_arguments)]
fn distributed_run<L: Lattice>(
    global: GridDims,
    flags: &FlagField,
    coll: CollisionKind,
    steps: u64,
    ranks: usize,
    mode: ExchangeMode,
    pool_threads: usize,
    tile_z: usize,
) -> SoaField<L> {
    let out = World::new(ranks).run(|comm| {
        let mut s = DistributedSolver::<L>::builder(&comm, global, flags, coll)
            .exchange(mode)
            .pool(ThreadPool::new(pool_threads).with_tile_z(tile_z))
            .build();
        s.initialize_with(init_state);
        s.run(steps).unwrap();
        s.gather_populations().unwrap()
    });
    out.into_iter().next().unwrap().expect("rank 0 gathers")
}

/// Like [`distributed_run`], but under single-grid AA-pattern storage. The
/// gather canonicalizes, so the result compares directly against the AB
/// ping-pong reference.
#[allow(clippy::too_many_arguments)]
fn distributed_run_aa<L: Lattice>(
    global: GridDims,
    flags: &FlagField,
    coll: CollisionKind,
    steps: u64,
    ranks: usize,
    mode: ExchangeMode,
    pool_threads: usize,
    tile_z: usize,
) -> SoaField<L> {
    let out = World::new(ranks).run(|comm| {
        let mut s = DistributedSolver::<L>::builder(&comm, global, flags, coll)
            .exchange(mode)
            .pool(ThreadPool::new(pool_threads).with_tile_z(tile_z))
            .storage(StorageScheme::Aa)
            .build();
        s.initialize_with(init_state);
        s.run(steps).unwrap();
        s.gather_populations().unwrap()
    });
    out.into_iter().next().unwrap().expect("rank 0 gathers")
}

/// The fully parameterized runner: storage scheme and temporal-blocking
/// depth on top of [`distributed_run`]'s axes.
#[allow(clippy::too_many_arguments)]
fn distributed_run_k<L: Lattice>(
    global: GridDims,
    flags: &FlagField,
    coll: CollisionKind,
    steps: u64,
    ranks: usize,
    mode: ExchangeMode,
    pool_threads: usize,
    tile_z: usize,
    scheme: StorageScheme,
    time_block: usize,
) -> SoaField<L> {
    let out = World::new(ranks).run(|comm| {
        let mut s = DistributedSolver::<L>::builder(&comm, global, flags, coll)
            .exchange(mode)
            .pool(ThreadPool::new(pool_threads).with_tile_z(tile_z))
            .storage(scheme)
            .time_block(time_block)
            .build();
        s.initialize_with(init_state);
        s.run(steps).unwrap();
        s.gather_populations().unwrap()
    });
    out.into_iter().next().unwrap().expect("rank 0 gathers")
}

fn assert_fields_equal<L: Lattice>(a: &SoaField<L>, b: &SoaField<L>, what: &str) {
    assert_fields_close(a, b, 0.0, what);
}

/// Fluid-cells-only comparison: AA wall slots are in-place scatter mailboxes,
/// so solid cells of a canonicalized AA field are not comparable to AB.
fn assert_fluid_cells_close<L: Lattice>(
    flags: &FlagField,
    a: &SoaField<L>,
    b: &SoaField<L>,
    tol: f64,
    what: &str,
) {
    for cell in 0..a.dims().cells() {
        if flags.kind(cell) != swlb_core::boundary::NodeKind::Fluid {
            continue;
        }
        for q in 0..L::Q {
            let (x, y) = (a.get(cell, q), b.get(cell, q));
            assert!(
                (x - y).abs() <= tol,
                "{what}: cell {cell} q {q}: {x} vs {y}"
            );
        }
    }
}

fn assert_fields_close<L: Lattice>(a: &SoaField<L>, b: &SoaField<L>, tol: f64, what: &str) {
    let cells = a.dims().cells();
    for cell in 0..cells {
        for q in 0..L::Q {
            let (x, y) = (a.get(cell, q), b.get(cell, q));
            assert!(
                (x - y).abs() <= tol,
                "{what}: cell {cell} q {q}: {x} vs {y}"
            );
        }
    }
}

/// The full matrix: (exchange mode × threads × tile_z × rank count) against
/// the serial generic reference. The z extent is deep enough (nz = 12) that
/// interior z-runs reach full lane width, so on AVX2 hosts this matrix runs
/// the vectorized kernel, not just its scalar tail.
#[test]
fn distributed_unified_dispatch_matches_serial_reference() {
    let global = GridDims::new(12, 10, 12);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    flags.set(6, 5, 6, swlb_core::boundary::NodeKind::Wall);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let steps = 4;
    let reference = reference_run::<D3Q19>(global, &flags, &coll, steps);
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;

    for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
        for ranks in [1usize, 4] {
            for (threads, tile_z) in [(1, 0), (2, 2), (4, 70)] {
                let got = distributed_run::<D3Q19>(
                    global, &flags, coll, steps, ranks, mode, threads, tile_z,
                );
                assert_fields_close(
                    &reference,
                    &got,
                    tol,
                    &format!("{mode:?} ranks={ranks} threads={threads} tile_z={tile_z}"),
                );
            }
        }
    }
}

/// Degenerate subdomains: enough ranks that some own `lnx ≤ 2` or `lny ≤ 2`
/// columns/rows, so the inner rectangle is empty and the boundary ring is the
/// whole subdomain. Sequential and OnTheFly must still agree bit-for-bit with
/// the serial reference (the ring strips cover every owned cell exactly once).
#[test]
fn degenerate_subdomains_stay_bit_identical() {
    // 5 × 4 interior split 6 ways: subdomain widths of 1–2 cells.
    let global = GridDims::new(5, 4, 3);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.7));
    let steps = 5;
    let reference = reference_run::<D3Q19>(global, &flags, &coll, steps);

    for ranks in [2usize, 6] {
        let seq = distributed_run::<D3Q19>(
            global,
            &flags,
            coll,
            steps,
            ranks,
            ExchangeMode::Sequential,
            2,
            0,
        );
        let otf = distributed_run::<D3Q19>(
            global,
            &flags,
            coll,
            steps,
            ranks,
            ExchangeMode::OnTheFly,
            2,
            0,
        );
        assert_fields_equal(&reference, &seq, &format!("Sequential ranks={ranks}"));
        assert_fields_equal(&reference, &otf, &format!("OnTheFly ranks={ranks}"));
    }
}

/// The AA-pattern storage matrix: (exchange mode × ranks × threads/tile_z ×
/// odd/even step counts) against the serial AB reference. An odd step count
/// ends at Streamed parity, so the gather exercises canonicalization of the
/// "hard" half of the AA cycle; even counts end Reversed. Compared on fluid
/// cells within the dispatch tolerance (the AA kernels take the fused SIMD
/// path where the host offers it).
#[test]
fn aa_storage_matrix_matches_serial_reference() {
    let global = GridDims::new(12, 10, 12);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    flags.set(6, 5, 6, swlb_core::boundary::NodeKind::Wall);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;

    for steps in [4u64, 5] {
        let reference = reference_run::<D3Q19>(global, &flags, &coll, steps);
        for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
            for ranks in [1usize, 4] {
                for (threads, tile_z) in [(1, 0), (2, 2), (4, 70)] {
                    let got = distributed_run_aa::<D3Q19>(
                        global, &flags, coll, steps, ranks, mode, threads, tile_z,
                    );
                    assert_fluid_cells_close(
                        &flags,
                        &reference,
                        &got,
                        tol,
                        &format!(
                            "AA {mode:?} steps={steps} ranks={ranks} threads={threads} tile_z={tile_z}"
                        ),
                    );
                }
            }
        }
    }
}

/// AA-pattern storage on degenerate subdomains (inner rectangle empty, the
/// boundary ring is the whole subdomain) — including the ring-only odd-step
/// path and self-neighbor wraparound merges.
#[test]
fn aa_degenerate_subdomains_match_reference() {
    let global = GridDims::new(5, 4, 8);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.7));
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;

    for steps in [4u64, 5] {
        let reference = reference_run::<D3Q19>(global, &flags, &coll, steps);
        for ranks in [2usize, 6] {
            for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
                let got =
                    distributed_run_aa::<D3Q19>(global, &flags, coll, steps, ranks, mode, 2, 0);
                assert_fluid_cells_close(
                    &flags,
                    &reference,
                    &got,
                    tol,
                    &format!("AA degenerate {mode:?} steps={steps} ranks={ranks}"),
                );
            }
        }
    }
}

/// Temporal-blocking equivalence matrix: depth k ∈ {2, 4} against the same
/// configuration at k = 1, for both storage schemes (AA depths are even by
/// construction), both exchange schedules, rank counts including degenerate
/// subdomains (`lny ≤ 2`, where deep halos force multi-round exchange), and
/// two z-tile sizes. A blocked sweep performs the identical per-cell updates
/// in a different order, so this is exact on scalar-semantics lanes; the
/// dispatch tolerance absorbs fast/generic path differences at the
/// redundantly recomputed ghost fringe (same rationale as the engine's
/// `check_blocked_matches_reference`).
#[test]
fn temporal_blocking_matrix_matches_unblocked() {
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let steps = 8u64;
    let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
    for (global, lid) in [
        (GridDims::new(12, 10, 12), true),
        // 5 × 4 interior over 4 ranks: lny = 2 subdomains, so depth 4 needs
        // two exchange rounds per block to fill its 4-deep ghost rings.
        (GridDims::new(5, 4, 3), false),
    ] {
        let mut flags = FlagField::new(global);
        flags.set_box_walls();
        if lid {
            flags.paint_lid([0.05, 0.0, 0.0]);
            flags.set(6, 5, 6, swlb_core::boundary::NodeKind::Wall);
        }
        let tile_zs: &[usize] = if lid { &[0, 5] } else { &[0] };
        for scheme in [StorageScheme::Ab, StorageScheme::Aa] {
            for mode in [ExchangeMode::Sequential, ExchangeMode::OnTheFly] {
                for ranks in [1usize, 2, 4] {
                    for &tile_z in tile_zs {
                        let base = distributed_run_k::<D3Q19>(
                            global, &flags, coll, steps, ranks, mode, 2, tile_z, scheme, 1,
                        );
                        for k in [2usize, 4] {
                            let got = distributed_run_k::<D3Q19>(
                                global, &flags, coll, steps, ranks, mode, 2, tile_z, scheme, k,
                            );
                            let what =
                                format!("{scheme:?} {mode:?} ranks={ranks} tile_z={tile_z} k={k}");
                            match scheme {
                                StorageScheme::Ab => assert_fields_close(&base, &got, tol, &what),
                                StorageScheme::Aa => {
                                    assert_fluid_cells_close(&flags, &base, &got, tol, &what)
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// 2-D lattice: the pooled dispatch has no D3Q19 fast path to take, so this
/// pins the generic pooled path through the distributed engine.
#[test]
fn d2q9_distributed_pooled_matches_reference() {
    let global = GridDims::new2d(9, 7);
    let flags = FlagField::new(global);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));
    let steps = 6;
    let reference = reference_run::<D2Q9>(global, &flags, &coll, steps);
    for ranks in [1usize, 4] {
        let got = distributed_run::<D2Q9>(
            global,
            &flags,
            coll,
            steps,
            ranks,
            ExchangeMode::OnTheFly,
            3,
            0,
        );
        assert_fields_equal(&reference, &got, &format!("D2Q9 ranks={ranks}"));
    }
}

/// Non-BGK operators fall back to the generic kernel at every level and still
/// agree exactly across the pooled distributed pipeline.
#[test]
fn smagorinsky_distributed_pooled_matches_reference() {
    let global = GridDims::new(8, 8, 4);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    let coll = CollisionKind::SmagorinskyLes(
        SmagorinskyParams::new(BgkParams::from_tau(0.8), 0.16).unwrap(),
    );
    let steps = 3;
    let reference = reference_run::<D3Q19>(global, &flags, &coll, steps);
    let got = distributed_run::<D3Q19>(
        global,
        &flags,
        coll,
        steps,
        4,
        ExchangeMode::OnTheFly,
        4,
        16,
    );
    assert_fields_equal(&reference, &got, "SmagorinskyLes 4 ranks pooled");
}
