//! Crash-safety acceptance suite for `swlb-serve` — the write-ahead job
//! journal proven against a real `kill -9`:
//!
//! * the kill-restart harness spawns the `swlb serve` binary as a child
//!   process, kills it with SIGKILL mid-workload, restarts it on the same
//!   data directory, and asserts exactly-once semantics: zero lost jobs,
//!   zero duplicated jobs, original ids preserved, completed jobs never
//!   re-run, and interrupted jobs resumed from their latest valid checkpoint;
//! * journal replay tolerates a CRC-corrupted record and a truncated tail —
//!   the damaged records are skipped and counted (`journal.corrupt`), the
//!   rest of the jobs recover;
//! * a corrupted newest checkpoint in a job's namespaced store makes resume
//!   fall back one generation (the serve-layer version of the raw
//!   corrupt-skip path covered in tests/chaos_recovery.rs);
//! * an injected handler panic (while holding the state lock) and a
//!   simulated full journal disk both degrade the service — 503 admission,
//!   typed `SwlbError::Unavailable`, counters — without process exit.
//!
//! The multi-cycle soak stays `--ignored`; CI runs the smoke variants.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use swlb_obs::{Recorder, SwlbError};
use swlb_serve::json::{self, Json};
use swlb_serve::{
    CaseKind, CaseSpec, JobSpec, LatticeKind, Priority, ServeClient, ServeConfig, Server,
    StorageScheme,
};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swlb-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cavity(nx: usize, ny: usize) -> CaseSpec {
    CaseSpec {
        case: CaseKind::Cavity,
        lattice: LatticeKind::D2Q9,
        nx,
        ny,
        nz: 1,
        tau: 0.8,
        u_lattice: 0.05,
        storage: StorageScheme::Ab,
        time_block: 1,
    }
}

fn job(name: &str, case: CaseSpec, steps: u64, priority: Priority) -> JobSpec {
    JobSpec {
        name: name.into(),
        case,
        steps,
        priority,
        deadline_ms: None,
        outputs: vec![],
        chaos_nan_at_step: None,
        width: 1,
        tenant: swlb_serve::DEFAULT_TENANT.to_string(),
    }
}

/// Spawn `swlb serve` as a real child process on an ephemeral port and parse
/// the bound address from its banner line.
fn spawn_server_process(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swlb"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--dir",
            dir.to_str().unwrap(),
            "--slice-steps",
            "8",
            "--threads",
            "2",
            "--capacity",
            "16",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn swlb serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read banner");
    // "swlb-serve listening on ADDR (state in DIR)"
    let addr = banner
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();
    // Keep the pipe drained so the child can never block on stdout.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn field_str<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or("")
}

/// Poll `client.list()` until `pred` holds on the statuses; panic on timeout.
fn wait_list(
    client: &ServeClient,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&[Json]) -> bool,
) -> Vec<Json> {
    let start = Instant::now();
    loop {
        if let Ok(items) = client.list() {
            if pred(&items) {
                return items;
            }
            if start.elapsed() > timeout {
                let states: Vec<String> = items
                    .iter()
                    .map(|j| {
                        format!(
                            "#{} {} {}/{}",
                            field_u64(j, "id"),
                            field_str(j, "state"),
                            field_u64(j, "steps_done"),
                            field_u64(j, "steps"),
                        )
                    })
                    .collect();
                panic!("timed out waiting for {what}; jobs: {states:?}");
            }
        } else if start.elapsed() > timeout {
            panic!("timed out waiting for {what}; service unreachable");
        }
        std::thread::sleep(Duration::from_millis(40));
    }
}

const SHORT_STEPS: u64 = 64;
const LONG_STEPS: u64 = 3000;

/// One kill-restart cycle on `dir`. The dir may already hold completed jobs
/// from an earlier cycle (the soak reuses it); those must replay as terminal
/// alongside this cycle's fresh jobs.
fn kill_restart_cycle(dir: &Path) {
    let (mut child, addr) = spawn_server_process(dir);
    let client = ServeClient::new(addr);
    let baseline = client.list().expect("list at cycle start").len();

    // Mixed workload: shorts that finish before the kill, longs that do not.
    let mut ids = Vec::new();
    for i in 0..2 {
        ids.push(
            client
                .submit(&job(
                    &format!("short-{i}"),
                    cavity(12, 12),
                    SHORT_STEPS,
                    Priority::Interactive,
                ))
                .unwrap(),
        );
    }
    for i in 0..2 {
        ids.push(
            client
                .submit(&job(
                    &format!("long-{i}"),
                    cavity(40, 40),
                    LONG_STEPS,
                    Priority::Batch,
                ))
                .unwrap(),
        );
    }
    // One job faults mid-run (injected NaN) so the kill lands on a workload
    // that is also exercising rollback-retry supervision.
    let mut chaotic = job("chaos-long", cavity(40, 40), LONG_STEPS, Priority::Batch);
    chaotic.chaos_nan_at_step = Some(100);
    ids.push(client.submit(&chaotic).unwrap());
    assert_eq!(ids.len(), 5);

    // Let the workload reach the interesting shape: at least one short done
    // (exactly-once target) and at least one long past two checkpoint
    // generations (resume-from-checkpoint target, checkpoint_every = 50).
    let mine = |j: &Json| ids.contains(&field_u64(j, "id"));
    let pre_kill = wait_list(
        &client,
        Duration::from_secs(60),
        "pre-kill workload shape",
        |jobs| {
            let short_done = jobs
                .iter()
                .any(|j| mine(j) && field_str(j, "state") == "completed");
            let long_progressed = jobs.iter().any(|j| {
                mine(j) && field_u64(j, "steps") == LONG_STEPS && field_u64(j, "steps_done") >= 120
            });
            short_done && long_progressed
        },
    );
    let completed_before: Vec<u64> = pre_kill
        .iter()
        .filter(|j| field_str(j, "state") == "completed")
        .map(|j| field_u64(j, "id"))
        .collect();
    assert!(!completed_before.is_empty());

    // SIGKILL: no drain, no flush, no destructors.
    child.kill().expect("kill -9 the server");
    let _ = child.wait();

    // Restart on the same data dir; the journal replays before the banner.
    let (mut child2, addr2) = spawn_server_process(dir);
    let client2 = ServeClient::new(addr2);

    // Zero lost, zero duplicated: every submitted id back exactly once,
    // alongside whatever terminal jobs earlier cycles left behind.
    let after = client2.list().expect("list after restart");
    assert_eq!(
        after.len(),
        baseline + ids.len(),
        "job count changed across the kill"
    );
    for id in &ids {
        let matches = after.iter().filter(|j| field_u64(j, "id") == *id).count();
        assert_eq!(matches, 1, "job {id} lost or duplicated across the kill");
    }

    // Exactly-once completion: pre-kill completions are terminal immediately
    // after replay — never re-queued, never re-run.
    for id in &completed_before {
        let j = after.iter().find(|j| field_u64(j, "id") == *id).unwrap();
        assert_eq!(
            field_str(j, "state"),
            "completed",
            "job {id} re-ran after the kill"
        );
        assert_eq!(field_u64(j, "steps_done"), field_u64(j, "steps"));
        assert_eq!(j.get("recovered"), Some(&Json::Bool(true)));
    }

    // Every job reaches completed exactly once; the interrupted long resumed
    // from a checkpoint instead of restarting at step 0.
    let finished = wait_list(
        &client2,
        Duration::from_secs(120),
        "post-restart completion",
        |jobs| jobs.iter().all(|j| field_str(j, "state") == "completed"),
    );
    for j in &finished {
        assert_eq!(field_u64(j, "steps_done"), field_u64(j, "steps"));
    }
    let resumed_long = finished
        .iter()
        .find(|j| mine(j) && field_u64(j, "steps") == LONG_STEPS && field_u64(j, "resumes") >= 1)
        .expect("an interrupted long job should resume from its checkpoint");
    let resumed_id = field_u64(resumed_long, "id");
    let events = client2.watch(resumed_id, 0).unwrap();
    let resumed_at = events
        .iter()
        .filter_map(|e| json::parse(e).ok())
        .find(|e| field_str(e, "event") == "resumed")
        .map(|e| field_u64(&e, "at_step"))
        .expect("resumed event in the recovered job's stream");
    assert!(
        resumed_at >= 50,
        "long job restarted from step {resumed_at}, not its checkpoint"
    );

    child2.kill().expect("stop the restarted server");
    let _ = child2.wait();
}

#[test]
fn kill_restart_preserves_exactly_once_jobs() {
    let dir = unique_dir("kill-restart");
    kill_restart_cycle(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[ignore = "crash soak; run explicitly with --ignored"]
fn kill_restart_soak_across_cycles() {
    // Repeated kill cycles on one data dir: ids keep growing, nothing is
    // lost or duplicated, the journal compacts on every restart.
    let dir = unique_dir("kill-soak");
    for _ in 0..3 {
        kill_restart_cycle(&dir);
        // Each cycle finishes with every job completed; the next cycle's
        // restart must replay them as terminal alongside its fresh jobs.
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_tolerates_corrupt_record_and_truncated_tail() {
    use swlb_io::{Journal, JournalConfig};
    use swlb_serve::JobEvent;

    let dir = unique_dir("corrupt-replay");
    let journal_dir = dir.join("journal");
    {
        let mut j = Journal::open(&journal_dir, JournalConfig::default()).unwrap();
        for id in 1..=3u64 {
            let ev = JobEvent::Admitted {
                id,
                seq: id - 1,
                spec: job(&format!("j{id}"), cavity(8, 8), 32, Priority::Batch),
            };
            j.append(&ev.to_line(), true).unwrap();
        }
        j.append(&JobEvent::Completed { id: 1 }.to_line(), true)
            .unwrap();
        j.sync().unwrap();
    }
    // Damage the log: flip a byte inside job 2's admission record (CRC
    // mismatch mid-log) and tear the final record mid-line (torn tail).
    let seg = std::fs::read_dir(&journal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("journal-") && n.ends_with(".log"))
                .unwrap_or(false)
        })
        .expect("one journal segment on disk");
    let mut bytes = std::fs::read(&seg).unwrap();
    let line_lens: Vec<usize> = bytes.split(|b| *b == b'\n').map(<[u8]>::len).collect();
    let second_start = line_lens[0] + 1;
    bytes[second_start + 20] ^= 0x55;
    let torn = bytes.len() - line_lens[3] / 2 - 1;
    bytes.truncate(torn);
    std::fs::write(&seg, &bytes).unwrap();

    let recorder = Recorder::enabled();
    let mut cfg = ServeConfig::new(&dir);
    cfg.recorder = recorder.clone();
    let server = Server::spawn(cfg).unwrap();
    let client = ServeClient::new(server.addr().to_string());
    let jobs = client.list().unwrap();
    // Job 2's admission was destroyed; jobs 1 and 3 recover. Job 1's
    // terminal record was torn off, so it replays as queued and re-runs —
    // write-ahead semantics: an un-durable completion is allowed to repeat,
    // an acknowledged admission is never lost.
    let ids: Vec<u64> = jobs.iter().map(|j| field_u64(j, "id")).collect();
    assert_eq!(ids, vec![1, 3]);
    assert!(
        recorder.counter("journal.corrupt").get() >= 2,
        "both damaged records should be counted"
    );
    // The survivors still run to completion on the recovered table.
    wait_list(
        &client,
        Duration::from_secs(60),
        "recovered jobs to finish",
        |jobs| jobs.iter().all(|j| field_str(j, "state") == "completed"),
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_checkpoint_falls_back_one_generation() {
    let dir = unique_dir("ckpt-fallback");
    let long_id;
    {
        let mut cfg = ServeConfig::new(&dir);
        cfg.slice_steps = 8;
        let server = Server::spawn(cfg).unwrap();
        let client = ServeClient::new(server.addr().to_string());
        long_id = client
            .submit(&job("long", cavity(24, 24), 4000, Priority::Batch))
            .unwrap();
        wait_list(
            &client,
            Duration::from_secs(60),
            "two checkpoint generations",
            |jobs| jobs.iter().any(|j| field_u64(j, "steps_done") >= 120),
        );
        client.drain().unwrap();
        server.shutdown();
    }
    // Corrupt the newest generation in the job's namespaced store.
    let store_dir = dir.join("checkpoints").join(format!("job-{long_id}"));
    let mut cks: Vec<PathBuf> = std::fs::read_dir(&store_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().map(|e| e == "swlb").unwrap_or(false))
        .collect();
    cks.sort();
    assert!(cks.len() >= 2, "need two generations, have {}", cks.len());
    let newest = cks.last().unwrap();
    // File names are ckpt-{step:012}.swlb; remember which step we destroyed.
    let corrupt_step: u64 = newest
        .file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.strip_prefix("ckpt-"))
        .and_then(|s| s.parse().ok())
        .expect("checkpoint file name encodes its step");
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(newest, &bytes).unwrap();

    // Restart: replay re-queues the drained job; resume skips the corrupt
    // newest generation and restores the previous one.
    let server = Server::spawn(ServeConfig::new(&dir)).unwrap();
    let client = ServeClient::new(server.addr().to_string());
    wait_list(
        &client,
        Duration::from_secs(120),
        "fallback resume to finish",
        |jobs| jobs.iter().all(|j| field_str(j, "state") == "completed"),
    );
    let events = client.watch(long_id, 0).unwrap();
    let resumed_at = events
        .iter()
        .filter_map(|e| json::parse(e).ok())
        .find(|e| field_str(e, "event") == "resumed")
        .map(|e| field_u64(&e, "at_step"))
        .expect("resumed event");
    assert!(resumed_at >= 1, "resume fell all the way back to step 0");
    assert!(
        resumed_at < corrupt_step,
        "resumed at {resumed_at}, but step-{corrupt_step} checkpoint was corrupt"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_and_full_journal_degrade_without_exit() {
    let dir = unique_dir("chaos-degrade");
    let mut cfg = ServeConfig::new(&dir);
    cfg.chaos_routes = true;
    let server = Server::spawn(cfg).unwrap();
    let addr = server.addr().to_string();
    let client = ServeClient::new(addr.clone());

    // A handler that panics while holding the state lock costs one
    // connection; the next lock taker recovers and the service keeps going.
    let (status, _) = swlb_serve::http::roundtrip(&addr, "POST", "/v1/chaos/panic", b"").unwrap();
    assert_eq!(status, 200);
    let start = Instant::now();
    loop {
        let stats = client.stats().unwrap(); // the server still answers
        if field_u64(&stats, "lock_recoveries") >= 1 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "poisoned lock was never recovered"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Full journal disk: admission flips to 503/Unavailable, already-running
    // work is unaffected, and recovery restores normal admission.
    let (status, _) =
        swlb_serve::http::roundtrip(&addr, "POST", "/v1/chaos/journal-full?mode=on", b"").unwrap();
    assert_eq!(status, 200);
    match client.submit(&job("blocked", cavity(8, 8), 16, Priority::Batch)) {
        Err(SwlbError::Unavailable(msg)) => assert!(msg.contains("journal")),
        other => panic!("expected Unavailable while degraded, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("journal_degraded"), Some(&Json::Bool(true)));

    let (status, _) =
        swlb_serve::http::roundtrip(&addr, "POST", "/v1/chaos/journal-full?mode=off", b"").unwrap();
    assert_eq!(status, 200);
    let id = client
        .submit(&job(
            "after-recovery",
            cavity(8, 8),
            16,
            Priority::Interactive,
        ))
        .unwrap();
    let events = client.watch(id, 0).unwrap();
    assert!(events.iter().any(|e| e.contains("completed")));
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("journal_degraded"), Some(&Json::Bool(false)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
