//! Observability acceptance suite: the three end-to-end guarantees the
//! `swlb-obs` facade makes.
//!
//! 1. **Disabled is free**: a solver built without a recorder performs zero
//!    heap allocations per step (asserted with a counting global allocator).
//! 2. **Exports are well-formed**: an instrumented run emits structurally
//!    valid JSONL with the documented keys (`docs/OBSERVABILITY.md`).
//! 3. **Counters tell the truth**: after a chaos run with injected faults,
//!    the recovery counters agree with the [`RecoveryReport`] the recovery
//!    driver returns, and the halo retry counter reflects the healed fault.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use swlb_comm::{ChaosComm, Communicator, FaultPlan, World};
use swlb_core::collision::{BgkParams, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::D2Q9;
use swlb_core::layout::PopField;
use swlb_core::prelude::Solver;
use swlb_io::CheckpointStore;
use swlb_sim::prelude::{JsonlSink, Recorder};
use swlb_sim::{
    run_with_recovery_instrumented, DistributedSolver, ExchangeMode, HaloRetry, RecoveryPolicy,
};

// ---------------------------------------------------------------------------
// Counting allocator. Per-thread counters keep the zero-allocation assertion
// immune to the other tests in this binary running on sibling threads. The
// `const` initializer matters: it makes the TLS slot allocation-free, so the
// hook cannot recurse into itself.
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Guarantee 1: with the default (disabled) recorder, the instrumented
/// `Solver::step` allocates nothing — observability off costs nothing.
#[test]
fn disabled_recorder_step_makes_no_allocations() {
    let dims = GridDims::new2d(24, 24);
    let mut s = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.8)).build();
    s.flags_mut().set_box_walls();
    s.flags_mut().paint_lid([0.05, 0.0, 0.0]);
    s.initialize_uniform(1.0, [0.0; 3]);
    assert!(!s.recorder().is_enabled());

    // Warm up: the first step builds the cached row mask and active-cell count.
    s.run(3);

    let before = thread_allocs();
    s.run(32);
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state step with a disabled recorder must not allocate"
    );
    assert_eq!(s.step_count(), 35);
}

/// Guarantee 1, distributed: with metrics off, the steady-state
/// `DistributedSolver::step` — halo pack, framing, buffered send/receive,
/// pooled inner-rectangle dispatch, boundary ring — performs zero heap
/// allocations on the rank thread. The warm-up steps let every reusable
/// buffer (frame buffers, the world's payload freelist, channel queues, the
/// unexpected-message stash) reach its steady capacity.
#[test]
fn distributed_steady_state_step_makes_no_allocations() {
    use swlb_core::lattice::D3Q19;
    use swlb_core::parallel::ThreadPool;

    let global = GridDims::new(8, 4, 4);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.04, 0.0, 0.0]);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));

    let flags_ref = &flags;
    let out = World::new(2).run(|comm| {
        let mut s = DistributedSolver::<D3Q19>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::OnTheFly)
            .pool(ThreadPool::new(2).with_tile_z(2))
            .build();
        assert!(!s.recorder().is_enabled());
        s.initialize_uniform(1.0, [0.0; 3]);
        s.run(30).unwrap();

        // Every remaining allocation is a one-time capacity growth (a freelist
        // or queue hitting a new concurrency high-water mark), monotone toward
        // a finite ceiling — so keep warming until a full window is clean on
        // EVERY rank. The break must be collective (allreduce over the window
        // counts): a rank that stopped stepping alone would starve its
        // neighbor's halo receives. The reduction itself allocates, but sits
        // outside the measured window.
        let mut allocs = u64::MAX;
        for _ in 0..10 {
            let before = thread_allocs();
            s.run(20).unwrap();
            allocs = thread_allocs() - before;
            let worst = comm.allreduce_max(&[allocs as f64]).unwrap()[0];
            if worst == 0.0 {
                break;
            }
        }
        allocs
    });
    for (rank, allocs) in out.iter().enumerate() {
        assert_eq!(
            *allocs, 0,
            "rank {rank}: distributed stepping with metrics off must reach a \
             zero-allocation steady state (20 consecutive allocation-free steps)"
        );
    }
}

// ---------------------------------------------------------------------------
// JSONL structural validation (no JSON parser in the dependency tree — a
// brace/bracket balance walk that honors string escapes is enough to reject
// any malformed line).
// ---------------------------------------------------------------------------

fn assert_structurally_valid_json(line: &str) {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(
            depth_obj >= 0 && depth_arr >= 0,
            "unbalanced close in {line}"
        );
    }
    assert!(!in_str, "unterminated string in {line}");
    assert_eq!(depth_obj, 0, "unbalanced braces in {line}");
    assert_eq!(depth_arr, 0, "unbalanced brackets in {line}");
    assert!(line.starts_with('{') && line.ends_with('}'));
}

/// Guarantee 2: an instrumented shared-memory run exports one well-formed
/// JSONL record per flush period, carrying the documented keys.
#[test]
fn enabled_recorder_exports_valid_jsonl() {
    let path = std::env::temp_dir().join(format!("swlb-obs-int-{}.jsonl", std::process::id()));
    let rec = Recorder::enabled();
    rec.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
    rec.set_flush_every(8);

    let dims = GridDims::new2d(16, 16);
    let mut s = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.8))
        .recorder(rec.clone())
        .build();
    s.flags_mut().set_box_walls();
    s.flags_mut().paint_lid([0.05, 0.0, 0.0]);
    s.initialize_uniform(1.0, [0.0; 3]);
    s.run(24);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "24 steps / flush_every 8");
    for line in &lines {
        assert_structurally_valid_json(line);
        assert!(line.contains("\"phases\""), "{line}");
        assert!(line.contains("\"collide_stream\""), "{line}");
        assert!(line.contains("\"counters\""), "{line}");
        assert!(line.contains("\"gauges\""), "{line}");
        assert!(line.contains("\"mlups\""), "{line}");
    }
    assert!(lines[0].starts_with("{\"step\":8,"));
    assert!(lines[2].starts_with("{\"step\":24,"));
    assert!(
        lines[2].contains("\"steps\":24"),
        "step counter reaches the run length"
    );
    std::fs::remove_file(&path).unwrap();
}

/// Guarantee 3: after a 2-rank chaos run — one delayed halo message (healed
/// in place by the retry loop) plus one injected divergence (forces a
/// rollback) — every rank's counters agree with its `RecoveryReport`, and the
/// retry counter saw the delay.
#[test]
fn chaos_run_counters_match_recovery_report() {
    let global = GridDims::new2d(12, 12);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));

    let plan = Arc::new(FaultPlan::new(0xAB5).delay_message(0, 1, 3, Duration::from_millis(80)));
    let dir = std::env::temp_dir().join(format!("swlb-obs-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir, 3).unwrap();

    let (flags_ref, store_ref) = (&flags, &store);
    let out = World::new(2).run_chaos(&plan, |comm| {
        let rec = Recorder::enabled();
        let mut s = DistributedSolver::<D2Q9, ChaosComm>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::Sequential)
            .recorder(rec.clone())
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.set_halo_retry(HaloRetry::snappy());
        let policy = RecoveryPolicy {
            checkpoint_every: 4,
            backoff: Duration::from_millis(1),
            status_timeout: Duration::from_secs(10),
            ..Default::default()
        };
        let mut injected = false;
        let report = run_with_recovery_instrumented(&mut s, 12, &policy, store_ref, |s| {
            if !injected && s.rank() == 0 && s.step_count() == 6 {
                injected = true;
                let dims = s.local_flags().dims();
                let cell = dims.idx(2, 2, 0);
                s.local_populations_mut().set(cell, 0, f64::NAN);
            }
        })
        .unwrap();
        let snap = rec.snapshot(report.steps_completed).unwrap();
        (comm.rank(), report, snap)
    });

    let mut total_retries = 0u64;
    for (rank, report, snap) in &out {
        assert_eq!(report.steps_completed, 12, "rank {rank}");
        assert!(report.restarts >= 1, "the NaN injection forces a rollback");
        assert_eq!(
            snap.counter("recovery.rollbacks"),
            Some(report.restarts as u64),
            "rank {rank}"
        );
        assert_eq!(
            snap.counter("recovery.wasted_steps"),
            Some(report.wasted_steps),
            "rank {rank}"
        );
        if *rank == 0 {
            assert_eq!(
                snap.counter("recovery.checkpoints"),
                Some(report.checkpoints_written),
                "rank 0 writes the checkpoints"
            );
            assert!(report.checkpoints_written >= 1);
        }
        total_retries += snap.counter("halo.retries").unwrap_or(0);
    }
    assert!(
        total_retries >= 1,
        "the delayed halo message must show up in the retry counter"
    );
    std::fs::remove_dir_all(store.dir()).unwrap();
}
