//! Cross-crate equivalence: the distributed engine (swlb-sim over swlb-comm)
//! must reproduce the single-domain reference solver (swlb-core) bit-for-bit,
//! for any rank count, exchange schedule, and geometry — including meshes
//! produced by the pre-processing crate (swlb-mesh).

use swlb_comm::World;
use swlb_core::collision::{BgkParams, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::{D2Q9, D3Q19, Lattice};
use swlb_core::layout::{PopField, SoaField};
use swlb_core::prelude::Solver;
use swlb_core::Scalar;
use swlb_mesh::{cylinder_z_mask, sphere_mask};
use swlb_sim::{DistributedSolver, ExchangeMode};

fn reference<L: Lattice>(
    global: GridDims,
    flags: &FlagField,
    coll: CollisionKind,
    steps: u64,
    init: impl Fn(usize, usize, usize) -> (Scalar, [Scalar; 3]) + Copy,
) -> SoaField<L> {
    let mut s = Solver::<L>::builder(global, BgkParams::from_tau(0.8))
        .collision(coll)
        .build();
    *s.flags_mut() = flags.clone();
    s.initialize_field(init);
    s.run(steps);
    s.state().clone()
}

fn compare<L: Lattice>(
    global: GridDims,
    flags: FlagField,
    ranks: usize,
    mode: ExchangeMode,
    steps: u64,
) {
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let init = |x: usize, y: usize, z: usize| {
        let v = 0.008 * ((x * 5 + y * 11 + z * 3) % 13) as Scalar;
        (1.0 + v, [0.02 + v * 0.1, -v * 0.08, 0.01])
    };
    let want = reference::<L>(global, &flags, coll, steps, init);
    let flags_ref = &flags;
    let got = World::new(ranks).run(|comm| {
        let mut s = DistributedSolver::<L>::builder(&comm, global, flags_ref, coll)
            .exchange(mode)
            .build();
        s.initialize_with(init);
        s.run(steps).unwrap();
        s.gather_populations().unwrap()
    });
    let got = got[0].as_ref().expect("root gathers");
    for cell in 0..global.cells() {
        for q in 0..L::Q {
            let (w, g) = (want.get(cell, q), got.get(cell, q));
            assert!(
                (w - g).abs() < 1e-14,
                "{} ranks={ranks} {mode:?}: cell {cell} q {q}: {w} vs {g}",
                L::NAME
            );
        }
    }
}

#[test]
fn cylinder_mesh_distributed_over_4_ranks() {
    let global = GridDims::new(20, 12, 3);
    let mut flags = FlagField::new(global);
    flags.paint_channel_walls_y();
    flags.paint_inflow_outflow_x(1.0, [0.04, 0.0, 0.0]);
    let mask = cylinder_z_mask(global, 6.0, 6.0, 2.0);
    flags.apply_mask(&mask).unwrap();
    compare::<D3Q19>(global, flags, 4, ExchangeMode::OnTheFly, 6);
}

#[test]
fn sphere_mesh_distributed_over_6_ranks_sequential() {
    let global = GridDims::new(18, 12, 6);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    let mask = sphere_mask(global, [9.0, 6.0, 3.0], 2.5);
    flags.apply_mask(&mask).unwrap();
    compare::<D3Q19>(global, flags, 6, ExchangeMode::Sequential, 5);
}

#[test]
fn periodic_2d_many_rank_counts() {
    for ranks in [1usize, 2, 3, 4, 8] {
        let global = GridDims::new2d(16, 12);
        let flags = FlagField::new(global);
        compare::<D2Q9>(global, flags, ranks, ExchangeMode::OnTheFly, 5);
    }
}

#[test]
fn moving_lid_cavity_distributed() {
    let global = GridDims::new2d(14, 14);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.07, 0.0, 0.0]);
    compare::<D2Q9>(global, flags, 4, ExchangeMode::Sequential, 8);
}

#[test]
fn nebb_boundaries_distributed_match_reference() {
    // Sharp NEBB inlet/outlet across a 4-rank decomposition must stay
    // bit-identical to the single-domain run.
    let global = GridDims::new(16, 10, 3);
    let mut flags = FlagField::new(global);
    flags.paint_channel_walls_y();
    flags.paint_nebb_inflow_outflow_x([0.03, 0.0, 0.0], 1.0);
    compare::<D3Q19>(global, flags, 4, ExchangeMode::OnTheFly, 6);
}

#[test]
fn long_run_stays_in_lockstep() {
    // 30 steps across ranks: any off-by-one in the halo protocol would
    // desynchronize and show up as divergence.
    let global = GridDims::new(12, 10, 4);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    compare::<D3Q19>(global, flags, 4, ExchangeMode::OnTheFly, 30);
}

#[test]
fn macroscopic_gather_matches_local_sums() {
    // Global mass from allreduce must equal the mass of the gathered field.
    let global = GridDims::new2d(12, 8);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.9));
    let flags_ref = &flags;
    let out = World::new(4).run(|comm| {
        let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::Sequential)
            .build();
        s.initialize_uniform(1.0, [0.01, 0.0, 0.0]);
        s.run(5).unwrap();
        let mass = s.global_mass().unwrap();
        (mass, s.gather_populations().unwrap())
    });
    let (mass, field) = (&out[0].0, out[0].1.as_ref().unwrap());
    let m = swlb_core::macroscopic::MacroFields::compute::<D2Q9, _>(&flags, field);
    let gathered_mass = m.total_mass(&flags);
    assert!((mass - gathered_mass).abs() < 1e-9, "{mass} vs {gathered_mass}");
    // Every rank reports the same reduced value.
    for (other, _) in &out {
        assert!((other - mass).abs() < 1e-12);
    }
}
