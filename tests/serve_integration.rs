//! Integration suite for `swlb-serve` — the acceptance criteria of the
//! multi-tenant service, exercised over a real loopback socket:
//!
//! * a mixed workload (long batch + short interactive, one job with an
//!   injected chaos fault) completes with zero lost or duplicated jobs;
//! * every short interactive job's queue wait is bounded by one time slice
//!   while batch jobs are running (preemption proven by the longs'
//!   checkpoint/resume counters);
//! * graceful drain leaves every live job checkpointed and resumable —
//!   verified by restoring a drained job's checkpoint into a fresh solver;
//! * every job's `metrics.jsonl` parses and carries the snapshot schema.
//!
//! Plus admission backpressure (HTTP 429), cancellation, and an `--ignored`
//! loopback soak.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use swlb_core::parallel::ThreadPool;
use swlb_io::CheckpointStore;
use swlb_obs::{Recorder, SwlbError};
use swlb_serve::json::{self, Json};
use swlb_serve::{
    CaseKind, CaseSpec, JobSpec, LatticeKind, Priority, ServeClient, ServeConfig, Server,
    StorageScheme,
};
use swlb_sim::RecoveryPolicy;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swlb-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cavity(nx: usize, ny: usize) -> CaseSpec {
    CaseSpec {
        case: CaseKind::Cavity,
        lattice: LatticeKind::D2Q9,
        nx,
        ny,
        nz: 1,
        tau: 0.8,
        u_lattice: 0.05,
        storage: StorageScheme::Ab,
        time_block: 1,
    }
}

fn job(name: &str, case: CaseSpec, steps: u64, priority: Priority) -> JobSpec {
    JobSpec {
        name: name.into(),
        case,
        steps,
        priority,
        deadline_ms: None,
        outputs: vec![],
        chaos_nan_at_step: None,
        width: 1,
        tenant: swlb_serve::DEFAULT_TENANT.to_string(),
    }
}

fn config(dir: &std::path::Path, capacity: usize, slice_steps: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir);
    cfg.capacity = capacity;
    cfg.slice_steps = slice_steps;
    cfg.threads = 2;
    cfg.policy = RecoveryPolicy {
        checkpoint_every: 2 * slice_steps,
        max_restarts: 3,
        backoff: Duration::from_millis(1),
        ..RecoveryPolicy::default()
    };
    cfg
}

/// Poll a job's status until `pred` holds; panics after `timeout`.
fn wait_for(
    client: &ServeClient,
    id: u64,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&Json) -> bool,
) -> Json {
    let start = Instant::now();
    loop {
        let status = client.status(id).unwrap();
        if pred(&status) {
            return status;
        }
        assert!(
            start.elapsed() < timeout,
            "job {id}: timed out waiting for {what}; last status: {}",
            status.to_text()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn state_of(status: &Json) -> String {
    status
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string()
}

fn num_of(status: &Json, key: &str) -> u64 {
    status
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("status missing numeric {key:?}: {}", status.to_text()))
}

/// Acceptance (a), (b) and (d): mixed workload under chaos on one loopback
/// server — two long batch jobs (one faulted mid-run) plus six short
/// interactive jobs submitted while the longs grind. Everything completes,
/// nothing is lost or duplicated, and no short job waits more than one slice.
#[test]
fn mixed_workload_completes_with_bounded_interactive_wait() {
    let dir = unique_dir("mixed");
    let server = Server::spawn(config(&dir, 16, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    // Two long batch jobs; the second takes a NaN fault around step 100 and
    // must survive it via rollback-retry.
    let long_a = client
        .submit(&job("long-a", cavity(24, 24), 640, Priority::Batch))
        .unwrap();
    let mut faulted = job("long-chaos", cavity(24, 24), 640, Priority::Batch);
    faulted.chaos_nan_at_step = Some(100);
    let long_b = client.submit(&faulted).unwrap();
    assert_eq!((long_a, long_b), (1, 2), "ids are dense from 1");

    // Let the batch work actually occupy the pool before interactive traffic.
    wait_for(
        &client,
        long_a,
        Duration::from_secs(20),
        "first slice",
        |s| num_of(s, "steps_done") > 0,
    );

    // Six short interactive jobs, one at a time, each watched to completion
    // while the longs are (still) live.
    let mut short_ids = Vec::new();
    for i in 0..6 {
        let id = client
            .submit(&job(
                &format!("short-{i}"),
                cavity(16, 16),
                24,
                Priority::Interactive,
            ))
            .unwrap();
        let events = client.watch(id, 0).unwrap();
        assert!(
            events.iter().any(|e| e.contains("\"event\":\"completed\"")),
            "short job {id} did not complete: {events:?}"
        );
        short_ids.push(id);
    }

    // Wait out the longs.
    for id in [long_a, long_b] {
        let status = wait_for(
            &client,
            id,
            Duration::from_secs(60),
            "terminal state",
            |s| ["completed", "failed", "cancelled"].contains(&state_of(s).as_str()),
        );
        assert_eq!(state_of(&status), "completed", "{}", status.to_text());
    }

    // (a) Zero lost or duplicated jobs: exactly the 8 submissions, dense ids,
    // every one completed with every requested step done.
    let all = client.list().unwrap();
    assert_eq!(all.len(), 8);
    let mut ids: Vec<u64> = all.iter().map(|s| num_of(s, "id")).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=8).collect::<Vec<u64>>());
    for status in &all {
        assert_eq!(state_of(status), "completed", "{}", status.to_text());
        assert_eq!(
            num_of(status, "steps_done"),
            num_of(status, "steps"),
            "{}",
            status.to_text()
        );
    }

    // (b) Interactive latency bound: each short job waited at most one slice,
    // even though two 640-step batch jobs were in the system.
    for &id in &short_ids {
        let status = client.status(id).unwrap();
        let wait = num_of(&status, "wait_slices");
        assert!(
            wait <= 1,
            "short job {id} waited {wait} slices: {}",
            status.to_text()
        );
    }

    // Preemption proof: the long jobs were sliced off the pool via checkpoint
    // and later rebuilt from it — the counters that only move on a real
    // checkpoint write / checkpoint read.
    for id in [long_a, long_b] {
        let status = client.status(id).unwrap();
        assert!(
            num_of(&status, "preemptions") >= 1,
            "long job {id} was never preempted: {}",
            status.to_text()
        );
        assert!(
            num_of(&status, "resumes") >= 1,
            "long job {id} never resumed from checkpoint: {}",
            status.to_text()
        );
    }

    // (d) Chaos survival: the faulted job rolled back and retried, and the
    // service as a whole kept running (everything above already completed).
    let status = client.status(long_b).unwrap();
    assert!(num_of(&status, "rollbacks") >= 1, "{}", status.to_text());
    assert!(num_of(&status, "restarts") >= 1, "{}", status.to_text());

    // Per-job observability: every job has a metrics.jsonl whose lines parse
    // and carry the snapshot schema.
    for id in 1..=8u64 {
        assert_metrics_schema(&dir, id);
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every line of `jobs/job-<id>/metrics.jsonl` must parse as a snapshot
/// object: a `step`, non-negative `wall_s`, and the four sections. (`step`
/// is *not* monotone across lines — a rollback legitimately rewinds it.)
fn assert_metrics_schema(base: &std::path::Path, id: u64) {
    let path = base
        .join("jobs")
        .join(format!("job-{id}"))
        .join("metrics.jsonl");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("job {id}: no metrics at {}: {e}", path.display()));
    let mut lines = 0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line)
            .unwrap_or_else(|e| panic!("job {id}: bad metrics line {line:?}: {e:?}"));
        v.get("step")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("job {id}: snapshot missing step: {line}"));
        let wall = v.get("wall_s").and_then(Json::as_f64).unwrap();
        assert!(wall >= 0.0);
        for section in ["phases", "counters", "gauges", "histograms"] {
            assert!(
                matches!(v.get(section), Some(Json::Obj(_))),
                "job {id}: snapshot missing {section}: {line}"
            );
        }
        lines += 1;
    }
    assert!(lines > 0, "job {id}: metrics.jsonl is empty");
}

/// Acceptance (c): graceful drain checkpoints every live job, and the
/// checkpoints actually restore into a fresh solver at the recorded step.
#[test]
fn drain_leaves_resumable_checkpoints() {
    let dir = unique_dir("drain");
    let server = Server::spawn(config(&dir, 8, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    let ids: Vec<u64> = (0..2)
        .map(|i| {
            client
                .submit(&job(
                    &format!("drained-{i}"),
                    cavity(16, 16),
                    100_000,
                    Priority::Batch,
                ))
                .unwrap()
        })
        .collect();
    for &id in &ids {
        wait_for(&client, id, Duration::from_secs(20), "progress", |s| {
            num_of(s, "steps_done") > 0
        });
    }

    let resp = client.drain().unwrap();
    assert_eq!(resp.get("drained").and_then(Json::as_bool), Some(true));

    // Both jobs are terminal-but-resumable, and admission is now closed.
    for &id in &ids {
        let status = client.status(id).unwrap();
        assert_eq!(state_of(&status), "checkpointed", "{}", status.to_text());
        assert!(num_of(&status, "steps_done") > 0);
    }
    match client.submit(&job("late", cavity(16, 16), 10, Priority::Interactive)) {
        Err(SwlbError::Rejected { .. }) => {}
        other => panic!("draining server accepted work: {other:?}"),
    }

    // Restore each drained job's latest checkpoint into a fresh solver and
    // confirm it lands exactly where the service said it stopped. Service
    // checkpoints are written in the rank-elastic chunked (v3) format, so the
    // load goes through the format-agnostic reader.
    let store = CheckpointStore::new(dir.join("checkpoints"), 2).unwrap();
    for &id in &ids {
        let steps_done = num_of(&client.status(id).unwrap(), "steps_done");
        let (ck, _) = store
            .namespaced(&format!("job-{id}"))
            .unwrap()
            .load_latest_valid_any()
            .unwrap()
            .unwrap_or_else(|| panic!("job {id}: drain left no valid checkpoint"));
        assert_eq!(ck.step(), steps_done, "job {id}: checkpoint lags status");
        let mut solver = cavity(16, 16)
            .build(ThreadPool::new(1), Recorder::disabled())
            .unwrap();
        solver.restore_any(&ck).unwrap();
        assert_eq!(solver.step_count(), steps_done);
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An AA-storage job runs through submit → preempt → drain, and its canonical
/// checkpoint (scheme byte `SCHEME_AA`, parity 0) restores into a fresh
/// solver of EITHER storage scheme — the service can resume a drained AA job
/// as AA or migrate it to AB without any conversion tooling.
#[test]
fn aa_job_drains_to_cross_scheme_resumable_checkpoint() {
    let dir = unique_dir("aa-drain");
    let server = Server::spawn(config(&dir, 4, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    let mut case = cavity(16, 16);
    case.storage = StorageScheme::Aa;
    let id = client
        .submit(&job("aa-cavity", case.clone(), 100_000, Priority::Batch))
        .unwrap();
    wait_for(&client, id, Duration::from_secs(20), "progress", |s| {
        num_of(s, "steps_done") > 0
    });
    client.drain().unwrap();
    let steps_done = num_of(&client.status(id).unwrap(), "steps_done");

    let store = CheckpointStore::new(dir.join("checkpoints"), 2).unwrap();
    let (ck, _) = store
        .namespaced(&format!("job-{id}"))
        .unwrap()
        .load_latest_valid_any()
        .unwrap()
        .expect("AA job left no valid checkpoint");
    assert_eq!(ck.scheme(), swlb_io::checkpoint::SCHEME_AA);
    match &ck {
        swlb_io::chunked::AnyCheckpoint::Chunked(c) => {
            assert_eq!(c.parity, 0, "service checkpoints must be canonical");
        }
        other => panic!("service should write chunked (v3) checkpoints: {other:?}"),
    }
    assert_eq!(ck.step(), steps_done);

    let mut ab_case = case.clone();
    ab_case.storage = StorageScheme::Ab;
    for spec in [case, ab_case] {
        let mut solver = spec
            .build(ThreadPool::new(1), Recorder::disabled())
            .unwrap();
        solver.restore_any(&ck).unwrap();
        assert_eq!(solver.step_count(), steps_done);
        solver.run_checked(4, 2).unwrap();
        assert!(!solver.has_non_finite());
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic resume: a width-4 job shrinks to effective width 2 while a serial
/// competitor shares the machine, then grows back to 4 once the competitor
/// completes. The job is preempted at one width and resumed at another via
/// its rank-count-independent chunked checkpoint, and every width change is
/// visible in the status API, the event stream, the write-ahead journal, and
/// the server-wide stats counter.
#[test]
fn elastic_job_reshards_under_contention_and_grows_back() {
    let dir = unique_dir("elastic");
    let server = Server::spawn(config(&dir, 8, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    let mut wide = job("wide", cavity(16, 16), 480, Priority::Batch);
    wide.width = 4;
    let wide_id = client.submit(&wide).unwrap();
    // Let the wide job run at its full requested width first.
    wait_for(
        &client,
        wide_id,
        Duration::from_secs(20),
        "first slice",
        |s| num_of(s, "steps_done") > 0,
    );

    // A serial competitor halves the wide job's effective width (4 / 2 live).
    let rival_id = client
        .submit(&job("rival", cavity(16, 16), 120, Priority::Batch))
        .unwrap();
    wait_for(
        &client,
        rival_id,
        Duration::from_secs(60),
        "rival done",
        |s| state_of(s) == "completed",
    );
    let status = wait_for(
        &client,
        wide_id,
        Duration::from_secs(60),
        "wide done",
        |s| state_of(s) == "completed",
    );

    // Shrank (4 -> 2) and grew back (2 -> 4): at least two re-shards, ending
    // at the requested width, with no steps lost along the way.
    assert!(num_of(&status, "reshards") >= 2, "{}", status.to_text());
    assert_eq!(num_of(&status, "width"), 4, "{}", status.to_text());
    assert_eq!(num_of(&status, "steps_done"), 480, "{}", status.to_text());

    // Preempted at one width, resumed at another: the counters that only move
    // on a real checkpoint write / checkpoint read both advanced.
    assert!(num_of(&status, "preemptions") >= 1, "{}", status.to_text());
    assert!(num_of(&status, "resumes") >= 1, "{}", status.to_text());

    // The width changes are in the job's event stream...
    let events = client.watch(wide_id, 0).unwrap();
    assert!(
        events.iter().any(|e| e.contains("\"event\":\"resharded\"")),
        "no resharded event: {events:?}"
    );

    // ...in the write-ahead journal...
    let journal_text: String = std::fs::read_dir(dir.join("journal"))
        .unwrap()
        .filter_map(|e| std::fs::read_to_string(e.unwrap().path()).ok())
        .collect();
    assert!(
        journal_text.contains("\"rec\":\"resharded\""),
        "journal has no resharded record"
    );

    // ...and in the server-wide stats counter.
    let stats = client.stats().unwrap();
    assert!(
        stats.get("reshards").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "{}",
        stats.to_text()
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: live jobs beyond capacity bounce with 429/Rejected and
/// are counted, without disturbing the admitted jobs.
#[test]
fn admission_backpressure_rejects_beyond_capacity() {
    let dir = unique_dir("admission");
    let server = Server::spawn(config(&dir, 2, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    for i in 0..2 {
        client
            .submit(&job(
                &format!("occupant-{i}"),
                cavity(16, 16),
                100_000,
                Priority::Batch,
            ))
            .unwrap();
    }
    match client.submit(&job("excess", cavity(16, 16), 10, Priority::Interactive)) {
        Err(SwlbError::Rejected { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected Rejected, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("live").and_then(Json::as_u64), Some(2));

    // A slot frees once an occupant leaves.
    client.cancel(1).unwrap();
    wait_for(&client, 1, Duration::from_secs(20), "cancel", |s| {
        state_of(s) == "cancelled"
    });
    client
        .submit(&job(
            "after-free",
            cavity(16, 16),
            16,
            Priority::Interactive,
        ))
        .unwrap();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancellation is honoured at the next slice boundary for a running job.
#[test]
fn cancel_stops_a_running_job_at_a_slice_boundary() {
    let dir = unique_dir("cancel");
    let server = Server::spawn(config(&dir, 4, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    let id = client
        .submit(&job("doomed", cavity(16, 16), 100_000, Priority::Batch))
        .unwrap();
    wait_for(&client, id, Duration::from_secs(20), "progress", |s| {
        num_of(s, "steps_done") > 0
    });
    client.cancel(id).unwrap();
    let status = wait_for(&client, id, Duration::from_secs(20), "cancelled", |s| {
        state_of(s) == "cancelled"
    });
    let done = num_of(&status, "steps_done");
    assert!(done > 0 && done < 100_000);
    // The event stream ends with the cancellation.
    let events = client.watch(id, 0).unwrap();
    assert!(
        events.iter().any(|e| e.contains("\"event\":\"cancelled\"")),
        "{events:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Loopback soak: forty mixed jobs pushed through a capacity-8 table with
/// submit-retry on backpressure. Slow — run with `cargo test -- --ignored`.
#[test]
#[ignore = "soak test; run explicitly with --ignored"]
fn soak_forty_jobs_through_bounded_table() {
    let dir = unique_dir("soak");
    let server = Server::spawn(config(&dir, 8, 8)).unwrap();
    let client = ServeClient::new(server.addr().to_string());

    let mut ids = Vec::new();
    for i in 0..40u64 {
        let (priority, steps) = if i % 3 == 0 {
            (Priority::Batch, 160)
        } else {
            (Priority::Interactive, 24)
        };
        let mut spec = job(&format!("soak-{i}"), cavity(16, 16), steps, priority);
        if i % 10 == 7 {
            spec.chaos_nan_at_step = Some(steps / 2);
        }
        let id = loop {
            match client.submit(&spec) {
                Ok(id) => break id,
                Err(SwlbError::Rejected { .. }) => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("submit failed: {e:?}"),
            }
        };
        ids.push(id);
    }

    for &id in &ids {
        let status = wait_for(&client, id, Duration::from_secs(120), "completion", |s| {
            state_of(s) == "completed"
        });
        assert_eq!(num_of(&status, "steps_done"), num_of(&status, "steps"));
    }
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 40, "duplicated or lost job ids: {ids:?}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
