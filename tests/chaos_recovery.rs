//! Chaos acceptance suite: self-healing distributed runs under injected
//! faults.
//!
//! Every test drives the production [`DistributedSolver`] through a
//! [`ChaosComm`] wrapper — the solver code under test is byte-for-byte the
//! code production runs. Fault schedules are deterministic in their seed and
//! message identity, so any failure here reproduces exactly from the plan in
//! the test body.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use swlb_comm::{ChaosComm, Communicator, FaultAction, FaultPlan, World};
use swlb_core::collision::{BgkParams, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::D2Q9;
use swlb_core::layout::{PopField, SoaField};
use swlb_io::CheckpointStore;
use swlb_sim::prelude::SwlbError;
use swlb_sim::{
    run_with_recovery, run_with_recovery_instrumented, DistributedSolver, ExchangeMode,
    HaloRetry, RecoveryPolicy,
};

fn case() -> (GridDims, FlagField, CollisionKind) {
    let global = GridDims::new2d(12, 12);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    (global, flags, CollisionKind::Bgk(BgkParams::from_tau(0.8)))
}

fn temp_store(tag: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("swlb-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::new(dir, 3).unwrap()
}

/// Fault-free reference trajectory on `ranks` ranks.
fn reference(ranks: usize, steps: u64, mode: ExchangeMode) -> SoaField<D2Q9> {
    let (global, flags, coll) = case();
    let flags_ref = &flags;
    let out = World::new(ranks).run(|comm| {
        let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
            .exchange(mode)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.run(steps).unwrap();
        s.gather_populations().unwrap()
    });
    out.into_iter().next().unwrap().unwrap()
}

fn assert_fields_identical(a: &SoaField<D2Q9>, b: &SoaField<D2Q9>, cells: usize) {
    for cell in 0..cells {
        for q in 0..9 {
            assert_eq!(a.get(cell, q), b.get(cell, q), "cell {cell} q {q}");
        }
    }
}

/// The headline acceptance run: a dropped, a corrupted, a delayed and a
/// duplicated halo message plus one mid-run divergence, all in one 24-step
/// 4-rank run. Retry heals the delay and the duplicate in place; the drop,
/// the corruption and the divergence each force a checkpoint rollback. The
/// final populations must match the fault-free trajectory bit-for-bit.
#[test]
fn chaos_run_heals_and_matches_fault_free_trajectory() {
    let (global, flags, coll) = case();
    let clean = reference(4, 24, ExchangeMode::OnTheFly);

    // Halo tags send exactly once per step, so seq == step until a rollback
    // replays steps (each replayed send consumes a fresh seq). The schedule
    // below interleaves healable and rollback-forcing faults:
    //   seq 2 duplicate / seq 4 delay  — healed by the retry loop, no restart;
    //   seq 9 drop                     — restart #1, rollback to the step-6
    //                                    checkpoint (step ↦ seq + 4 afterward);
    //   seq 16 corrupt (= step 12)     — restart #2, rollback to step 12;
    //   NaN at step 15 (hook below)    — restart #3, rollback to step 12.
    let plan = Arc::new(
        FaultPlan::new(0xC0FFEE)
            .duplicate_message(0, 1, 2)
            .delay_message(3, 4, 4, Duration::from_millis(100))
            .drop_message(1, 0, 9)
            .corrupt_message(2, 2, 16),
    );
    let store = temp_store("acceptance");
    let (flags_ref, store_ref) = (&flags, &store);
    let out = World::new(4).run_chaos(&plan, |comm| {
        let mut s = DistributedSolver::<D2Q9, ChaosComm>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::OnTheFly)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.set_halo_retry(HaloRetry::snappy());
        let policy = RecoveryPolicy {
            checkpoint_every: 6,
            backoff: Duration::from_millis(1),
            status_timeout: Duration::from_secs(10),
            ..Default::default()
        };
        let mut injected = false;
        let report = run_with_recovery_instrumented(&mut s, 24, &policy, store_ref, |s| {
            if !injected && s.rank() == 0 && s.step_count() == 15 {
                injected = true;
                let dims = s.local_flags().dims();
                let cell = dims.idx(2, 2, 0);
                s.local_populations_mut().set(cell, 0, f64::NAN);
            }
        })
        .unwrap();
        assert_eq!(report.steps_completed, 24);
        assert_eq!(report.restarts, 3, "drop + corrupt + divergence each roll back");
        assert_eq!(report.faults_recovered.len(), 3, "{:?}", report.faults_recovered);
        s.gather_populations().unwrap()
    });

    // The plan actually fired every scheduled message fault.
    assert_eq!(plan.count_message_faults(|a| *a == FaultAction::Drop), 1);
    assert_eq!(plan.count_message_faults(|a| *a == FaultAction::Duplicate), 1);
    assert_eq!(plan.count_message_faults(|a| matches!(a, FaultAction::Delay(_))), 1);
    assert_eq!(plan.count_message_faults(|a| matches!(a, FaultAction::CorruptBit { .. })), 1);

    let healed = out.into_iter().next().unwrap().unwrap();
    assert_fields_identical(&clean, &healed, global.cells());
    std::fs::remove_dir_all(store.dir()).unwrap();
}

/// With `max_restarts = 0` the same kind of fault must fail fast with the
/// typed escalation on every rank — not hang, not panic.
#[test]
fn chaos_with_zero_restart_budget_fails_fast_typed() {
    let (global, flags, coll) = case();
    let plan = Arc::new(FaultPlan::new(7).drop_message(1, 0, 3));
    let store = temp_store("budget");
    let (flags_ref, store_ref) = (&flags, &store);
    let errs = World::new(2).run_chaos(&plan, |comm| {
        let mut s = DistributedSolver::<D2Q9, ChaosComm>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::Sequential)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.set_halo_retry(HaloRetry::snappy());
        let policy = RecoveryPolicy {
            checkpoint_every: 4,
            max_restarts: 0,
            status_timeout: Duration::from_secs(10),
            ..Default::default()
        };
        run_with_recovery(&mut s, 8, &policy, store_ref).unwrap_err()
    });
    for (rank, err) in errs.iter().enumerate() {
        assert!(
            matches!(err, SwlbError::RestartsExhausted { restarts: 0, .. }),
            "rank {rank}: expected RestartsExhausted, got {err}"
        );
    }
    std::fs::remove_dir_all(store.dir()).unwrap();
}

/// Regression: a rank killed mid-run surfaces `Disconnected` out of
/// `DistributedSolver::run`, and its peers escalate a typed halo failure
/// instead of blocking forever on the silent neighbor.
#[test]
fn killed_rank_surfaces_disconnected_instead_of_hanging() {
    let (global, flags, coll) = case();
    let plan = Arc::new(FaultPlan::new(3).kill_rank(1, 5));
    let flags_ref = &flags;
    let errs = World::new(2).run_chaos(&plan, |comm| {
        let mut s = DistributedSolver::<D2Q9, ChaosComm>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::Sequential)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.set_halo_retry(HaloRetry::snappy());
        (comm.rank(), s.run(20).unwrap_err())
    });
    for (rank, err) in &errs {
        match rank {
            1 => assert_eq!(*err, SwlbError::Disconnected, "killed rank"),
            // The survivor sees either an exhausted halo retry (peer silent)
            // or a dead channel (peer's endpoint already dropped), depending
            // on shutdown timing; both are typed and both arrive promptly.
            _ => assert!(
                matches!(err, SwlbError::CommTimeout { rank: 1, .. } | SwlbError::Disconnected),
                "survivor rank {rank}: {err}"
            ),
        }
    }
    assert!(plan.records().iter().any(|r| r.rank == 1), "kill was logged");
}

/// Same kill under the recovery loop: the dead rank's error passes straight
/// through (a dead transport cannot vote in the status reduction), and the
/// survivor's status reduction times out instead of wedging.
#[test]
fn killed_rank_under_recovery_fails_fast_on_every_rank() {
    let (global, flags, coll) = case();
    let plan = Arc::new(FaultPlan::new(3).kill_rank(1, 5));
    let store = temp_store("kill");
    let (flags_ref, store_ref) = (&flags, &store);
    let errs = World::new(2).run_chaos(&plan, |comm| {
        let mut s = DistributedSolver::<D2Q9, ChaosComm>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::Sequential)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.set_halo_retry(HaloRetry::snappy());
        let policy = RecoveryPolicy {
            checkpoint_every: 4,
            status_timeout: Duration::from_secs(1),
            ..Default::default()
        };
        (comm.rank(), run_with_recovery(&mut s, 20, &policy, store_ref).unwrap_err())
    });
    for (rank, err) in &errs {
        match rank {
            1 => assert!(
                matches!(err, SwlbError::Disconnected),
                "killed rank got {err}"
            ),
            _ => assert!(
                matches!(
                    err,
                    SwlbError::CommTimeout { .. } | SwlbError::CommCorrupt { .. } | SwlbError::Disconnected
                ),
                "survivor rank {rank} must get a typed comm error, got {err}"
            ),
        }
    }
    std::fs::remove_dir_all(store.dir()).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Any *single* injected message fault — whatever kind, sender, direction
    // or step — leaves the recovered trajectory bit-identical to the
    // fault-free one: healable faults heal in place, fatal ones roll back.
    #[test]
    fn any_single_fault_recovers_to_fault_free_fields(
        kind in 0usize..4,
        rank in 0usize..2,
        tag in 0u64..8,
        step in 1u64..10,
    ) {
        let (global, flags, coll) = case();
        let clean = reference(2, 12, ExchangeMode::Sequential);
        let plan = FaultPlan::new(0xFEED);
        // With a single fault there is no rollback before it fires, so the
        // per-(rank, tag) seq equals the step.
        let plan = Arc::new(match kind {
            0 => plan.drop_message(rank, tag, step),
            1 => plan.corrupt_message(rank, tag, step),
            2 => plan.delay_message(rank, tag, step, Duration::from_millis(60)),
            _ => plan.duplicate_message(rank, tag, step),
        });
        let store = temp_store(&format!("prop-{kind}-{rank}-{tag}-{step}"));
        let (flags_ref, store_ref) = (&flags, &store);
        let out = World::new(2).run_chaos(&plan, |comm| {
            let mut s = DistributedSolver::<D2Q9, ChaosComm>::builder(&comm, global, flags_ref, coll)
                .exchange(ExchangeMode::Sequential)
                .build();
            s.initialize_uniform(1.0, [0.0; 3]);
            s.set_halo_retry(HaloRetry::snappy());
            let policy = RecoveryPolicy {
                checkpoint_every: 4,
                backoff: Duration::from_millis(1),
                status_timeout: Duration::from_secs(10),
                ..Default::default()
            };
            let report = run_with_recovery(&mut s, 12, &policy, store_ref).unwrap();
            prop_assert_eq!(report.steps_completed, 12);
            s.gather_populations().unwrap()
        });
        prop_assert_eq!(plan.records().len(), 1, "the scheduled fault fired once");
        let healed = out.into_iter().next().unwrap().unwrap();
        assert_fields_identical(&clean, &healed, global.cells());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}
