//! Checkpoint/restart integration: solver state survives the round trip
//! exactly, restarts continue bit-identically, and corruption is detected.

use swlb_core::prelude::*;
use swlb_io::{read_checkpoint, write_checkpoint, Checkpoint, CheckpointError};

fn make_solver() -> Solver<D2Q9> {
    let dims = GridDims::new2d(24, 24);
    let mut s = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.7)).build();
    s.flags_mut().set_box_walls();
    s.flags_mut().paint_lid([0.06, 0.0, 0.0]);
    s.initialize_uniform(1.0, [0.0; 3]);
    s
}

fn capture(s: &Solver<D2Q9>) -> Checkpoint {
    let d = s.dims();
    Checkpoint {
        step: s.step_count(),
        dims: (d.nx as u32, d.ny as u32, d.nz as u32),
        q: 9,
        scheme: swlb_io::checkpoint::SCHEME_AB,
        parity: 0,
        data: s.canonical_populations().raw().to_vec(),
    }
}

fn restore(s: &mut Solver<D2Q9>, ck: &Checkpoint) {
    assert_eq!(ck.dims.0 as usize, s.dims().nx);
    assert_eq!(ck.dims.1 as usize, s.dims().ny);
    s.restore_canonical(&ck.data, ck.step).unwrap();
}

#[test]
fn restart_continues_bit_identically() {
    // Run 40 steps straight through.
    let mut straight = make_solver();
    straight.run(40);

    // Run 15, checkpoint through the binary codec, restore, run 25 more.
    let mut first = make_solver();
    first.run(15);
    let ck = capture(&first);
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &ck).unwrap();
    let restored_ck = read_checkpoint(&mut bytes.as_slice()).unwrap();
    assert_eq!(restored_ck.step, 15);

    let mut resumed = make_solver();
    restore(&mut resumed, &restored_ck);
    resumed.run(25);

    let (a, b) = (straight.state(), resumed.state());
    for cell in 0..straight.dims().cells() {
        for q in 0..9 {
            assert_eq!(a.get(cell, q), b.get(cell, q), "cell {cell} q {q}");
        }
    }
}

#[test]
fn checkpoint_through_a_file_on_disk() {
    let mut s = make_solver();
    s.run(7);
    let ck = capture(&s);

    let dir = std::env::temp_dir().join("swlb_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.swlb");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        write_checkpoint(&mut f, &ck).unwrap();
    }
    let mut f = std::fs::File::open(&path).unwrap();
    let back = read_checkpoint(&mut f).unwrap();
    assert_eq!(back, ck);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checkpoint_refuses_to_restore() {
    let mut s = make_solver();
    s.run(3);
    let ck = capture(&s);
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &ck).unwrap();
    // Flip one population bit in the middle of the payload.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    match read_checkpoint(&mut bytes.as_slice()) {
        Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("corruption not detected: {other:?}"),
    }
}

#[test]
fn distributed_checkpoint_restart_continues_bit_identically() {
    // The paper's checkpoint/restart controller operates on multi-process
    // runs: gather → write → (crash) → read → scatter → continue. The resumed
    // trajectory must equal the uninterrupted one bit-for-bit.
    use swlb_comm::World;
    use swlb_core::collision::CollisionKind;
    use swlb_core::layout::PopField;
    use swlb_sim::{DistributedSolver, ExchangeMode};

    let global = GridDims::new2d(16, 12);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let flags_ref = &flags;

    // Uninterrupted 20-step run.
    let straight = World::new(4).run(|comm| {
        let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::OnTheFly)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.run(20).unwrap();
        s.gather_populations().unwrap()
    });

    // First 8 steps, checkpoint through the binary codec on rank 0.
    let ckpt_bytes = World::new(4).run(|comm| {
        let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::OnTheFly)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        s.run(8).unwrap();
        let gathered = s.gather_populations().unwrap();
        gathered.map(|field| {
            let ck = Checkpoint {
                step: s.step_count(),
                dims: (global.nx as u32, global.ny as u32, global.nz as u32),
                q: 9,
                scheme: swlb_io::checkpoint::SCHEME_AB,
                parity: 0,
                data: field.raw().to_vec(),
            };
            let mut bytes = Vec::new();
            write_checkpoint(&mut bytes, &ck).unwrap();
            bytes
        })
    });
    let bytes = ckpt_bytes[0].clone().expect("rank 0 wrote the checkpoint");

    // Fresh world: restore and run the remaining 12 steps.
    let bytes_ref = &bytes;
    let resumed = World::new(4).run(|comm| {
        let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
            .exchange(ExchangeMode::OnTheFly)
            .build();
        s.initialize_uniform(1.0, [0.0; 3]);
        let (global_field, step) = if comm.rank() == 0 {
            let ck = read_checkpoint(&mut bytes_ref.as_slice()).unwrap();
            assert_eq!(ck.step, 8);
            let mut field = swlb_core::layout::SoaField::<D2Q9>::new(global);
            field.raw_mut().copy_from_slice(&ck.data);
            (Some(field), ck.step)
        } else {
            (None, 8)
        };
        s.scatter_populations(global_field.as_ref(), step).unwrap();
        assert_eq!(s.step_count(), 8);
        s.run(12).unwrap();
        s.gather_populations().unwrap()
    });

    let (a, b) = (straight[0].as_ref().unwrap(), resumed[0].as_ref().unwrap());
    for cell in 0..global.cells() {
        for q in 0..9 {
            assert_eq!(a.get(cell, q), b.get(cell, q), "cell {cell} q {q}");
        }
    }
}

#[test]
fn restart_from_store_skips_corrupted_newest_checkpoint() {
    // The recovery controller's restart path: a run checkpoints periodically
    // into a store, crashes, and the newest checkpoint file turns out damaged
    // (torn write, bad disk). `load_latest_valid` must fall back to the newest
    // checkpoint that passes its CRC, and the resumed trajectory from there
    // must still match the uninterrupted one bit-for-bit.
    use swlb_io::CheckpointStore;

    let mut straight = make_solver();
    straight.run(30);

    let dir = std::env::temp_dir().join(format!("swlb_ckpt_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir, 4).unwrap();
    let mut s = make_solver();
    for _ in 0..3 {
        s.run(10);
        store.save(&capture(&s)).unwrap();
    }

    // Damage the newest checkpoint (step 30): flip a payload bit on disk.
    let (newest_step, newest) = store.latest().unwrap().expect("store has checkpoints");
    assert_eq!(newest_step, 30);
    assert_eq!(newest, store.path_for(30));
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    std::fs::write(&newest, bytes).unwrap();
    match store.load(30) {
        Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("damaged file not flagged: {other:?}"),
    }

    // Restart: fall back to step 20 and replay the last 10 steps.
    let (ck, skipped) = store
        .load_latest_valid()
        .unwrap()
        .expect("a valid checkpoint survives");
    assert_eq!(ck.step, 20);
    assert_eq!(skipped, vec![store.path_for(30)]);
    let mut resumed = make_solver();
    restore(&mut resumed, &ck);
    resumed.run(10);

    let (a, b) = (straight.state(), resumed.state());
    for cell in 0..straight.dims().cells() {
        for q in 0..9 {
            assert_eq!(a.get(cell, q), b.get(cell, q), "cell {cell} q {q}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_of_3d_solver_roundtrips() {
    let dims = GridDims::new(8, 8, 8);
    let mut s = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(0.8)).build();
    s.flags_mut().set_box_walls();
    s.initialize_uniform(1.0, [0.01, 0.0, 0.0]);
    s.run(5);
    let ck = Checkpoint {
        step: s.step_count(),
        dims: (8, 8, 8),
        q: 19,
        scheme: swlb_io::checkpoint::SCHEME_AB,
        parity: 0,
        data: s.canonical_populations().raw().to_vec(),
    };
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &ck).unwrap();
    let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
    assert_eq!(back.data.len(), 8 * 8 * 8 * 19);
    assert_eq!(back, ck);
}

/// Reshard equivalence matrix: a chunked (v3) checkpoint taken on N ranks
/// resumes on M ranks for every (N, M) in {1,2,4} × {1,2,6}, and the resumed
/// trajectory matches the uninterrupted one within dispatch tolerance — for
/// AB storage and for AA captured mid-cycle (odd step, the parity that must
/// reshard through the canonical form).
#[test]
fn reshard_matrix_resumes_on_any_rank_count() {
    use swlb_comm::World;
    use swlb_core::collision::CollisionKind;
    use swlb_sim::{DistributedSolver, ExchangeMode};

    let global = GridDims::new2d(20, 16);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let flags_ref = &flags;
    let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);

    let run_world = |ranks: usize,
                     scheme: StorageScheme,
                     resume_from: Option<&swlb_io::chunked::ChunkedCheckpoint>,
                     steps: u64| {
        World::new(ranks)
            .run(|comm| {
                let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                    .exchange(ExchangeMode::OnTheFly)
                    .storage(scheme)
                    .try_build()
                    .unwrap();
                s.initialize_uniform(1.0, [0.0; 3]);
                if let Some(ck) = resume_from {
                    s.restore_chunked(if comm.rank() == 0 { Some(ck) } else { None })
                        .unwrap();
                    assert_eq!(s.step_count(), ck.step);
                }
                s.run(steps).unwrap();
                s.capture_chunked().unwrap()
            })
            .into_iter()
            .flatten()
            .next()
            .expect("rank 0 captures")
    };

    for scheme in [StorageScheme::Ab, StorageScheme::Aa] {
        // Uninterrupted 24-step reference, exported canonically.
        let want = run_world(1, scheme, None, 24).assemble_global().unwrap();

        for n in [1usize, 2, 4] {
            // Checkpoint at step 9: odd, so an AA producer is mid-cycle.
            let ck = run_world(n, scheme, None, 9);
            assert_eq!(ck.chunks.len(), n, "one chunk per source rank");
            assert_eq!(ck.parity, 0, "chunks are always canonical");

            for m in [1usize, 2, 6] {
                let got = run_world(m, scheme, Some(&ck), 15)
                    .assemble_global()
                    .unwrap();
                assert_eq!(got.len(), want.len());
                for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                    assert!(
                        (a - b).abs() <= tol,
                        "{scheme:?} {n}->{m} ranks: element {i}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// Degenerate source subdomains: a 5-column domain over a 2x2 rank grid
/// produces chunks only 2–3 cells wide; resuming on 6 ranks slices them
/// narrower still (lnx = 1). The reassembly must stay exact.
#[test]
fn reshard_handles_degenerate_narrow_source_subdomains() {
    use swlb_comm::World;
    use swlb_core::collision::CollisionKind;
    use swlb_sim::{DistributedSolver, ExchangeMode};

    let global = GridDims::new2d(5, 12);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let flags_ref = &flags;
    let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);

    let run_world =
        |ranks: usize, resume_from: Option<&swlb_io::chunked::ChunkedCheckpoint>, steps: u64| {
            World::new(ranks)
                .run(|comm| {
                    let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                        .exchange(ExchangeMode::OnTheFly)
                        .try_build()
                        .unwrap();
                    s.initialize_uniform(1.0, [0.0; 3]);
                    if let Some(ck) = resume_from {
                        s.restore_chunked(if comm.rank() == 0 { Some(ck) } else { None })
                            .unwrap();
                    }
                    s.run(steps).unwrap();
                    s.capture_chunked().unwrap()
                })
                .into_iter()
                .flatten()
                .next()
                .expect("rank 0 captures")
        };

    let want = run_world(1, None, 20).assemble_global().unwrap();
    let ck = run_world(4, None, 8);
    assert!(
        ck.chunks.iter().any(|c| c.meta.lnx <= 2),
        "expected a degenerate narrow source chunk: {:?}",
        ck.chunks.iter().map(|c| c.meta).collect::<Vec<_>>()
    );

    for m in [1usize, 6] {
        let got = run_world(m, Some(&ck), 12).assemble_global().unwrap();
        for (i, (a, b)) in want.iter().zip(&got).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "4->{m} ranks: element {i}: {a} vs {b}"
            );
        }
    }
}

/// A depth-2 run checkpointed at a block boundary (step 6 = three complete
/// sweeps) must resume into either scheme and either compatible depth and
/// continue the uninterrupted trajectory: the canonical payload carries no
/// trace of the producer's blocking depth.
#[test]
fn blocked_checkpoint_at_block_boundary_restores_across_schemes_and_depths() {
    let make = |scheme: StorageScheme, k: usize| {
        let dims = GridDims::new2d(20, 16);
        let mut s = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.7))
            .storage(scheme)
            .time_block(k)
            .try_build()
            .unwrap();
        s.flags_mut().set_box_walls();
        s.flags_mut().paint_lid([0.06, 0.0, 0.0]);
        s.initialize_uniform(1.0, [0.0; 3]);
        s
    };

    let mut straight = make(StorageScheme::Ab, 2);
    straight.run(24);

    let mut first = make(StorageScheme::Ab, 2);
    first.run(6);
    let d = first.dims();
    let ck = Checkpoint {
        step: first.step_count(),
        dims: (d.nx as u32, d.ny as u32, d.nz as u32),
        q: 9,
        scheme: swlb_io::checkpoint::SCHEME_AB,
        parity: 0,
        data: first.canonical_populations().raw().to_vec(),
    };
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &ck).unwrap();
    let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
    assert_eq!(back.step, 6);

    let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);
    for (scheme, k) in [
        (StorageScheme::Ab, 2usize),
        (StorageScheme::Ab, 4),
        (StorageScheme::Aa, 2),
    ] {
        let mut resumed = make(scheme, k);
        resumed.restore_canonical(&back.data, back.step).unwrap();
        resumed.run(18);
        assert_eq!(resumed.step_count(), 24);
        let a = straight.canonical_populations();
        let b = resumed.canonical_populations();
        for cell in 0..d.cells() {
            if straight.flags().kind(cell) != NodeKind::Fluid {
                continue;
            }
            for q in 0..9 {
                let (va, vb) = (a.get(cell, q), b.get(cell, q));
                assert!(
                    (va - vb).abs() <= tol,
                    "resume into {scheme:?} k={k}: cell {cell} q {q}: {va} vs {vb}"
                );
            }
        }
    }
}

/// The reshard matrix under temporal blocking: depth-2 producers checkpoint
/// at a block boundary (step 10) and depth-2 consumers of any rank count
/// resume the trajectory. Restore resets the intra-block phase, so the first
/// resumed step re-pays the deep exchange before reading any ghost.
#[test]
fn reshard_matrix_resumes_blocked_runs_on_any_rank_count() {
    use swlb_comm::World;
    use swlb_core::collision::CollisionKind;
    use swlb_sim::{DistributedSolver, ExchangeMode};

    let global = GridDims::new2d(20, 16);
    let mut flags = FlagField::new(global);
    flags.set_box_walls();
    flags.paint_lid([0.05, 0.0, 0.0]);
    let coll = CollisionKind::Bgk(BgkParams::from_tau(0.8));
    let flags_ref = &flags;
    let tol = 1e-14_f64.max(swlb_core::simd::dispatch_tolerance() * 100.0);

    let run_world = |ranks: usize,
                     scheme: StorageScheme,
                     resume_from: Option<&swlb_io::chunked::ChunkedCheckpoint>,
                     steps: u64| {
        World::new(ranks)
            .run(|comm| {
                let mut s = DistributedSolver::<D2Q9>::builder(&comm, global, flags_ref, coll)
                    .exchange(ExchangeMode::OnTheFly)
                    .storage(scheme)
                    .time_block(2)
                    .try_build()
                    .unwrap();
                s.initialize_uniform(1.0, [0.0; 3]);
                if let Some(ck) = resume_from {
                    s.restore_chunked(if comm.rank() == 0 { Some(ck) } else { None })
                        .unwrap();
                    assert_eq!(s.step_count(), ck.step);
                }
                s.run(steps).unwrap();
                s.capture_chunked().unwrap()
            })
            .into_iter()
            .flatten()
            .next()
            .expect("rank 0 captures")
    };

    for scheme in [StorageScheme::Ab, StorageScheme::Aa] {
        let want = run_world(1, scheme, None, 24).assemble_global().unwrap();
        for n in [1usize, 2, 4] {
            let ck = run_world(n, scheme, None, 10);
            assert_eq!(ck.chunks.len(), n, "one chunk per source rank");
            assert_eq!(ck.parity, 0, "chunks are always canonical");
            for m in [1usize, 2, 6] {
                let got = run_world(m, scheme, Some(&ck), 14)
                    .assemble_global()
                    .unwrap();
                for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                    assert!(
                        (a - b).abs() <= tol,
                        "blocked {scheme:?} {n}->{m} ranks: element {i}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn aa_mid_parity_checkpoint_restores_across_schemes() {
    // Capture an AA solver at odd step count (Streamed parity, the "hard"
    // half of the AA cycle). The canonical payload must restore into a fresh
    // solver of EITHER scheme and continue the same trajectory.
    use swlb_io::checkpoint::SCHEME_AA;

    let make = |scheme: StorageScheme| {
        let dims = GridDims::new2d(20, 16);
        let mut s = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.7))
            .storage(scheme)
            .build();
        s.flags_mut().set_box_walls();
        s.flags_mut().paint_lid([0.06, 0.0, 0.0]);
        s.initialize_uniform(1.0, [0.0; 3]);
        s
    };

    let mut straight = make(StorageScheme::Aa);
    straight.run(24);

    let mut first = make(StorageScheme::Aa);
    first.run(9);
    assert_eq!(first.parity(), Some(AaParity::Streamed));
    let d = first.dims();
    let ck = Checkpoint {
        step: first.step_count(),
        dims: (d.nx as u32, d.ny as u32, d.nz as u32),
        q: 9,
        scheme: SCHEME_AA,
        parity: 0,
        data: first.canonical_populations().raw().to_vec(),
    };
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &ck).unwrap();
    let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
    assert_eq!((back.scheme, back.parity, back.step), (SCHEME_AA, 0, 9));

    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
    for scheme in [StorageScheme::Aa, StorageScheme::Ab] {
        let mut resumed = make(scheme);
        resumed.restore_canonical(&back.data, back.step).unwrap();
        resumed.run(15);
        assert_eq!(resumed.step_count(), 24);
        let a = straight.canonical_populations();
        let b = resumed.canonical_populations();
        for cell in 0..d.cells() {
            if straight.flags().kind(cell) != NodeKind::Fluid {
                continue;
            }
            for q in 0..9 {
                let (va, vb) = (a.get(cell, q), b.get(cell, q));
                assert!(
                    (va - vb).abs() <= tol,
                    "resume into {scheme:?}: cell {cell} q {q}: {va} vs {vb}"
                );
            }
        }
    }
}
