//! End-to-end framework pipeline tests: the full path the paper's Fig. 4
//! describes — geometry input → pre-processing → solver → post-processing —
//! across all the crates at once.

use swlb_core::collision::{CollisionKind, SmagorinskyParams};
use swlb_core::post::q_criterion;
use swlb_core::prelude::*;
use swlb_io::{
    colormap_viridis_like, write_ppm, write_vtk_scalars, PpmImage, ProbeLog,
};
use swlb_mesh::{
    read_stl_bytes, suboff_mask, voxelize, write_stl_binary, Heightmap, SuboffHull,
    UrbanParams, UrbanScene,
};
use swlb_mesh::primitives::cube_triangles;
use swlb_sim::forces::momentum_exchange_force;

/// CAD path: generate STL → write → read back → voxelize → simulate → verify
/// the obstacle actually deflects the flow.
#[test]
fn stl_to_simulation_pipeline() {
    // A cube obstacle in the middle of a small channel.
    let tris = cube_triangles([6.0, 4.0, 0.0], [10.0, 8.0, 4.0]);
    let mut stl_bytes = Vec::new();
    write_stl_binary(&mut stl_bytes, &tris).unwrap();
    let loaded = read_stl_bytes(&stl_bytes).unwrap();
    assert_eq!(loaded.len(), 12);

    let dims = GridDims::new(24, 12, 4);
    let mask = voxelize(dims, [0.5, 0.5, 0.5], 1.0, &loaded);
    assert!(mask.iter().any(|&s| s), "voxelizer produced an empty mask");

    let mut solver = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(0.8)).build();
    solver.flags_mut().paint_inflow_outflow_x(1.0, [0.04, 0.0, 0.0]);
    solver.flags_mut().apply_mask(&mask).unwrap();
    solver.initialize_uniform(1.0, [0.04, 0.0, 0.0]);
    solver.run_checked(200, 50).unwrap();

    // The cube must feel downstream drag.
    let f = momentum_exchange_force::<D3Q19, _>(solver.flags(), solver.state());
    assert!(f[0] > 1e-6, "obstacle feels no drag: {:?}", f);

    // And the wake must be slower than the free stream beside it.
    let m = solver.macroscopic();
    let wake = m.u[dims.idx(12, 6, 2)][0];
    let free = m.u[dims.idx(12, 1, 2)][0];
    assert!(wake < free, "no wake deficit: wake {wake} vs free {free}");
}

/// GIS path: heightmap text → terrain mask → simulation over the ridge.
#[test]
fn terrain_to_simulation_pipeline() {
    let text = "ncols 6\nnrows 4\n\
                0 0 2 2 0 0\n0 0 3 3 0 0\n0 0 3 3 0 0\n0 0 2 2 0 0\n";
    let hm = Heightmap::parse(text).unwrap();
    let dims = GridDims::new(18, 8, 6);
    let mask = hm.to_mask(dims);
    assert!(mask.iter().any(|&s| s));

    let mut solver = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(0.9)).build();
    solver.flags_mut().paint_ground_z();
    solver.flags_mut().paint_inflow_outflow_x(1.0, [0.03, 0.0, 0.0]);
    solver.flags_mut().apply_mask(&mask).unwrap();
    solver.initialize_uniform(1.0, [0.03, 0.0, 0.0]);
    solver.run_checked(150, 50).unwrap();

    // Flow accelerates over the ridge crest relative to the blocked level.
    let m = solver.macroscopic();
    assert!(!m.has_non_finite());
    let over_ridge = m.u[dims.idx(8, 4, 4)][0];
    assert!(over_ridge > 0.0, "flow stalled over the ridge");
}

/// Urban path: procedural city → LES run → post-processing artifacts (PPM +
/// VTK + probe CSV) all written and structurally valid.
#[test]
fn urban_les_with_full_postprocessing() {
    let dims = GridDims::new(48, 32, 16);
    let scene = UrbanScene::generate(
        dims,
        UrbanParams {
            block_pitch: 12,
            street_width: 4,
            min_height: 3,
            max_height: 10,
            occupancy: 0.9,
            seed: 7,
        },
    );
    let mut solver = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(0.55))
        .collision(CollisionKind::SmagorinskyLes(
            SmagorinskyParams::new(BgkParams::from_tau(0.55), 0.17).unwrap(),
        ))
        .build();
    solver.flags_mut().paint_ground_z();
    solver.flags_mut().apply_mask(&scene.to_mask(dims)).unwrap();
    solver.flags_mut().paint_inflow_outflow_x(1.0, [0.05, 0.0, 0.0]);
    solver.initialize_uniform(1.0, [0.05, 0.0, 0.0]);

    let mut log = ProbeLog::new(&["step", "ek"]);
    let flags_snapshot = solver.flags().clone();
    for i in 0..10 {
        solver.run_checked(20, 20).unwrap();
        let e = solver.macroscopic().kinetic_energy(&flags_snapshot);
        log.push(&[(i * 20) as f64, e]);
    }

    let m = solver.macroscopic();
    // PPM slice.
    let slice = m.slice_xy_speed(2);
    let img = PpmImage::from_scalar(dims.nx, dims.ny, &slice, colormap_viridis_like);
    let mut ppm = Vec::new();
    write_ppm(&mut ppm, &img).unwrap();
    assert!(ppm.starts_with(b"P6"));
    assert!(ppm.len() > 3 * dims.nx * dims.ny);

    // VTK volume with Q-criterion.
    let q = q_criterion(&m);
    let mut vtk = Vec::new();
    write_vtk_scalars(&mut vtk, "urban", dims, &[("q", &q)]).unwrap();
    let text = String::from_utf8(vtk).unwrap();
    assert!(text.contains("DIMENSIONS 48 32 16"));

    // Probe CSV.
    let mut csv = Vec::new();
    log.write_csv(&mut csv).unwrap();
    assert_eq!(String::from_utf8(csv).unwrap().lines().count(), 11);
}

/// Engineering path: Suboff hull → drag measurement is positive and bounded.
#[test]
fn suboff_drag_is_physical() {
    let dims = GridDims::new(48, 16, 16);
    let hull = SuboffHull::with_length(28.0);
    let mask = suboff_mask(dims, hull, 8.0, 8.0, 8.0);
    let mut solver = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(0.75)).build();
    solver.flags_mut().paint_inflow_outflow_x(1.0, [0.04, 0.0, 0.0]);
    solver.flags_mut().apply_mask(&mask).unwrap();
    solver.initialize_uniform(1.0, [0.04, 0.0, 0.0]);
    solver.run_checked(400, 200).unwrap();

    let f = momentum_exchange_force::<D3Q19, _>(solver.flags(), solver.state());
    assert!(f[0] > 0.0, "hull drag must point downstream: {:?}", f);
    // Slender axisymmetric body: lateral force negligible vs drag.
    assert!(f[1].abs() < f[0], "lateral force {} vs drag {}", f[1], f[0]);
    assert!(f[2].abs() < f[0], "vertical force {} vs drag {}", f[2], f[0]);
}
