//! Fleet-tier crash acceptance — the two deaths the issue demands a fleet
//! job survive, proven with real `kill -9`:
//!
//! * **worker death** — a job running on a worker child process is killed
//!   with SIGKILL; the controller's heartbeat misses run out, the dead
//!   worker's acknowledged jobs replay onto a survivor from their newest
//!   valid checkpoints (read from the dead worker's state directory), and
//!   the job completes under its original fleet id, resumed rather than
//!   restarted;
//! * **controller death** — the controller child process is killed with
//!   SIGKILL mid-workload and restarted on the same journal directory;
//!   every acknowledged job replays exactly once with its id preserved,
//!   pre-kill terminals stay terminal, and the placement journal records
//!   each terminal exactly once.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use swlb_serve::json::Json;
use swlb_serve::{
    http, CaseKind, CaseSpec, JobSpec, LatticeKind, Priority, ServeClient, ServeConfig, Server,
    StorageScheme,
};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swlb-fleetcrash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn job(name: &str, nx: usize, steps: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        case: CaseSpec {
            case: CaseKind::Cavity,
            lattice: LatticeKind::D2Q9,
            nx,
            ny: nx,
            nz: 1,
            tau: 0.8,
            u_lattice: 0.05,
            storage: StorageScheme::Ab,
            time_block: 1,
        },
        steps,
        priority: Priority::Batch,
        deadline_ms: None,
        outputs: vec![],
        chaos_nan_at_step: None,
        width: 1,
        tenant: "acme".into(),
    }
}

/// Spawn a `swlb-fleet` subcommand child and parse the bound address from
/// its banner (whitespace token 3, the workspace convention).
fn spawn_fleet_process(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swlb-fleet"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn swlb-fleet");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn field_str<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or("")
}

fn wait_fleet(
    client: &ServeClient,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&[Json]) -> bool,
) -> Vec<Json> {
    let start = Instant::now();
    loop {
        if let Ok(items) = client.list() {
            if pred(&items) {
                return items;
            }
            if start.elapsed() > timeout {
                let states: Vec<String> = items
                    .iter()
                    .map(|j| {
                        format!(
                            "#{} {} on {:?} step {}",
                            field_u64(j, "id"),
                            field_str(j, "state"),
                            field_str(j, "worker"),
                            field_u64(j, "step"),
                        )
                    })
                    .collect();
                panic!("timed out waiting for {what}; fleet jobs: {states:?}");
            }
        } else if start.elapsed() > timeout {
            panic!("timed out waiting for {what}; controller unreachable");
        }
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Register an in-process worker with a controller (used by the controller
/// -kill test, where the workers must outlive the controller process).
fn register_worker(dir: &Path, name: &str, controller_addr: &str, server: &Server) {
    let worker_dir = dir.join(name);
    let body = Json::obj([
        ("name", Json::str(name)),
        ("addr", Json::str(server.addr().to_string())),
        (
            "dir",
            Json::str(
                worker_dir
                    .canonicalize()
                    .unwrap_or(worker_dir)
                    .display()
                    .to_string(),
            ),
        ),
    ])
    .to_text();
    let start = Instant::now();
    loop {
        if let Ok((200, _)) = http::roundtrip(
            controller_addr,
            "POST",
            "/v1/fleet/register",
            body.as_bytes(),
        ) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "worker {name} could not register"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn worker_kill_resumes_jobs_on_survivor_with_fleet_id_preserved() {
    use swlb_fleet::{Controller, FleetConfig};

    let dir = unique_dir("worker-kill");
    // Controller in-process (it must survive); workers as child processes
    // (one of them dies for real).
    let mut cfg = FleetConfig::new(dir.join("controller"));
    cfg.heartbeat = Duration::from_millis(100);
    cfg.max_missed = 3;
    cfg.rebalance = false; // deaths only: keep placement deterministic
    let controller = Controller::spawn(cfg).unwrap();
    let caddr = controller.addr().to_string();

    let victim_dir = dir.join("victim");
    let (mut victim, _) = spawn_fleet_process(&[
        "worker",
        "--addr",
        "127.0.0.1:0",
        "--dir",
        victim_dir.to_str().unwrap(),
        "--name",
        "victim",
        "--slice-steps",
        "8",
        "--threads",
        "2",
        "--controller",
        &caddr,
    ]);
    let client = ServeClient::new(caddr.clone());

    // One long job; with a single registered worker its placement is
    // deterministic.
    let id = client.submit(&job("survivor-job", 40, 4000)).unwrap();
    let placed = wait_fleet(
        &client,
        Duration::from_secs(60),
        "job checkpointed on the victim",
        |jobs| {
            jobs.iter().any(|j| {
                field_u64(j, "id") == id
                    && field_str(j, "worker") == "victim"
                    && field_u64(j, "step") >= 120
            })
        },
    );
    let step_before = placed
        .iter()
        .find(|j| field_u64(j, "id") == id)
        .map(|j| field_u64(j, "step"))
        .unwrap();

    // Bring up the survivor, then SIGKILL the victim mid-run.
    let survivor_dir = dir.join("survivor");
    let (mut survivor, _) = spawn_fleet_process(&[
        "worker",
        "--addr",
        "127.0.0.1:0",
        "--dir",
        survivor_dir.to_str().unwrap(),
        "--name",
        "survivor",
        "--slice-steps",
        "8",
        "--threads",
        "2",
        "--controller",
        &caddr,
    ]);
    victim.kill().expect("kill -9 the victim worker");
    let _ = victim.wait();

    // The controller declares the victim dead and replays the job onto the
    // survivor from the newest valid checkpoint in the victim's state dir —
    // same fleet id, progress preserved.
    let finished = wait_fleet(
        &client,
        Duration::from_secs(180),
        "job to complete on the survivor",
        |jobs| {
            jobs.iter()
                .any(|j| field_u64(j, "id") == id && field_str(j, "state") == "completed")
        },
    );
    let done = finished.iter().find(|j| field_u64(j, "id") == id).unwrap();
    assert!(
        field_u64(done, "migrations") >= 1,
        "job finished without ever migrating off the dead worker"
    );
    let stats = client.stats().unwrap();
    let workers = stats.get("workers").and_then(Json::as_arr).unwrap();
    let victim_row = workers
        .iter()
        .find(|w| field_str(w, "name") == "victim")
        .unwrap();
    assert_eq!(victim_row.get("alive"), Some(&Json::Bool(false)));

    // Resumed, not restarted: the survivor's local copy of the job reports
    // a resume at (at least) the victim's last synced checkpoint step.
    let survivor_addr = workers
        .iter()
        .find(|w| field_str(w, "name") == "survivor")
        .map(|w| field_str(w, "addr").to_string())
        .unwrap();
    let survivor_client = ServeClient::new(survivor_addr);
    let local = survivor_client.list().unwrap();
    let moved = local
        .iter()
        .find(|j| field_str(j, "name") == "survivor-job")
        .expect("the job should exist on the survivor");
    assert_eq!(field_str(moved, "state"), "completed");
    let events = survivor_client
        .watch(field_u64(moved, "id"), 0)
        .unwrap();
    let resumed_at = events
        .iter()
        .filter_map(|e| swlb_serve::json::parse(e).ok())
        .find(|e| field_str(e, "event") == "resumed")
        .map(|e| field_u64(&e, "at_step"))
        .expect("survivor should resume from the dead worker's checkpoint");
    assert!(
        resumed_at >= 50 && resumed_at <= step_before + 4000,
        "survivor resumed at step {resumed_at}, victim had reached {step_before}"
    );

    survivor.kill().expect("stop the survivor");
    let _ = survivor.wait();
    controller.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn controller_kill_restart_replays_acknowledged_state_exactly_once() {
    let dir = unique_dir("ctl-kill");
    let ctl_dir = dir.join("controller");
    let (mut ctl, caddr) = spawn_fleet_process(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--dir",
        ctl_dir.to_str().unwrap(),
        "--heartbeat-ms",
        "50",
    ]);

    // Workers live in-process so they survive the controller's death.
    let mk_worker = |name: &str| {
        let mut cfg = ServeConfig::new(dir.join(name));
        cfg.worker_routes = true;
        cfg.slice_steps = 8;
        cfg.threads = 2;
        let server = Server::spawn(cfg).unwrap();
        register_worker(&dir, name, &caddr, &server);
        server
    };
    let w1 = mk_worker("w1");
    let w2 = mk_worker("w2");

    let client = ServeClient::new(caddr.clone());
    // Shorts complete before the kill; longs are mid-flight when it lands.
    let mut ids = Vec::new();
    for i in 0..2 {
        ids.push(client.submit(&job(&format!("short-{i}"), 12, 48)).unwrap());
    }
    for i in 0..2 {
        ids.push(client.submit(&job(&format!("long-{i}"), 40, 3000)).unwrap());
    }
    let completed_before: Vec<u64> = wait_fleet(
        &client,
        Duration::from_secs(60),
        "shorts done, longs running",
        |jobs| {
            let shorts_done = jobs
                .iter()
                .filter(|j| field_str(j, "state") == "completed")
                .count()
                >= 2;
            let long_running = jobs
                .iter()
                .any(|j| field_str(j, "state") == "placed" && field_u64(j, "step") >= 50);
            shorts_done && long_running
        },
    )
    .iter()
    .filter(|j| field_str(j, "state") == "completed")
    .map(|j| field_u64(j, "id"))
    .collect();

    // SIGKILL the controller: no drain, no journal flush beyond what the
    // write-ahead discipline already guaranteed.
    ctl.kill().expect("kill -9 the controller");
    let _ = ctl.wait();

    // Restart on the same state dir. The journal replays admissions,
    // registrations, and terminals; the sync phase re-adopts the still-
    // running local jobs from the (surviving) workers.
    let (mut ctl2, caddr2) = spawn_fleet_process(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--dir",
        ctl_dir.to_str().unwrap(),
        "--heartbeat-ms",
        "50",
    ]);
    let client2 = ServeClient::new(caddr2);

    // Zero lost, zero duplicated, ids preserved.
    let after = wait_fleet(
        &client2,
        Duration::from_secs(30),
        "replayed job table",
        |jobs| jobs.len() == ids.len(),
    );
    for id in &ids {
        assert_eq!(
            after.iter().filter(|j| field_u64(j, "id") == *id).count(),
            1,
            "job {id} lost or duplicated across the controller kill"
        );
    }
    // Pre-kill terminals replay terminal — never re-run.
    for id in &completed_before {
        let j = after.iter().find(|j| field_u64(j, "id") == *id).unwrap();
        assert_eq!(field_str(j, "state"), "completed");
    }

    // Everything completes; the longs keep their original fleet ids.
    wait_fleet(
        &client2,
        Duration::from_secs(180),
        "full workload after restart",
        |jobs| jobs.iter().all(|j| field_str(j, "state") == "completed"),
    );

    // Exactly-once terminals, proven against the journal itself: one
    // completion record per job across both controller lifetimes.
    let (lines, _) = swlb_io::Journal::replay(&ctl_dir.join("journal")).unwrap();
    for id in &ids {
        let completions = lines
            .iter()
            .filter_map(|l| swlb_serve::json::parse(l).ok())
            .filter(|v| field_str(v, "rec") == "completed" && field_u64(v, "id") == *id)
            .count();
        assert_eq!(
            completions, 1,
            "job {id} journaled {completions} completion records"
        );
    }

    ctl2.kill().expect("stop the restarted controller");
    let _ = ctl2.wait();
    w1.shutdown();
    w2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
