//! Quantitative physics validation of the solver against analytic solutions —
//! the evidence that this reproduction solves the same equations as SunwayLB.
#![allow(clippy::needless_range_loop)] // indexed loops mirror the profile math

use swlb_core::collision::{CollisionKind, SmagorinskyParams};
use swlb_core::prelude::*;

/// Taylor–Green vortex: kinetic energy decays as `exp(−4 ν k² t)` in 2-D.
/// The measured viscosity must match `ν = (2τ−1)/6` (paper §IV-A) closely.
#[test]
fn taylor_green_decay_recovers_configured_viscosity() {
    let n = 48usize;
    let tau = 0.8;
    let u0 = 0.02;
    let steps = 200u64;
    let dims = GridDims::new2d(n, n);
    let params = BgkParams::from_tau(tau);
    let nu = params.viscosity();
    let k = std::f64::consts::TAU / n as Scalar;

    let mut solver = Solver::<D2Q9>::builder(dims, params).build();
    solver.initialize_field(|x, y, _| {
        let (xs, ys) = (x as Scalar * k, y as Scalar * k);
        let u = [u0 * xs.sin() * ys.cos(), -u0 * xs.cos() * ys.sin(), 0.0];
        let p = -0.25 * u0 * u0 * ((2.0 * xs).cos() + (2.0 * ys).cos());
        (1.0 + 3.0 * p, u)
    });
    let flags = FlagField::new(dims);
    let e0 = solver.macroscopic().kinetic_energy(&flags);
    solver.run(steps);
    let e1 = solver.macroscopic().kinetic_energy(&flags);

    let nu_measured = -(e1 / e0).ln() / (4.0 * k * k * steps as Scalar);
    let err = (nu_measured - nu).abs() / nu;
    assert!(
        err < 0.03,
        "viscosity error {:.2}%: configured {nu}, measured {nu_measured}",
        err * 100.0
    );
}

/// Couette flow: a moving lid over a stationary wall produces a linear
/// velocity profile at steady state.
#[test]
fn couette_flow_has_linear_profile() {
    let (nx, ny) = (8usize, 33usize);
    let u_lid = 0.05;
    let dims = GridDims::new2d(nx, ny);
    let mut solver = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(1.0)).build();
    // Walls top (moving) and bottom (static); x periodic.
    for x in 0..nx {
        solver.flags_mut().set(x, 0, 0, NodeKind::Wall);
        solver.flags_mut().set(
            x,
            ny - 1,
            0,
            NodeKind::MovingWall {
                u: [u_lid, 0.0, 0.0],
            },
        );
    }
    solver.initialize_uniform(1.0, [0.0; 3]);
    solver.run(6000);

    let m = solver.macroscopic();
    // Expected: u_x(y) = u_lid · (y − y_wall)/(height) with halfway walls at
    // y = 0.5 and y = ny − 1.5.
    let height = ny as Scalar - 2.0;
    let mut max_err: Scalar = 0.0;
    for y in 1..ny - 1 {
        let s = (y as Scalar - 0.5) / height;
        let expect = u_lid * s;
        let got = m.u[dims.idx(nx / 2, y, 0)][0];
        max_err = max_err.max((got - expect).abs());
    }
    assert!(
        max_err / u_lid < 0.02,
        "Couette profile deviates {:.2}% from linear",
        max_err / u_lid * 100.0
    );
}

/// Lid-driven cavity: the steady flow forms a single primary vortex whose
/// center velocity is a well-known benchmark quantity (rotating clockwise for
/// a lid moving in +x: u_x > 0 above center, u_x < 0 below).
#[test]
fn cavity_develops_primary_vortex_with_correct_rotation() {
    let n = 48usize;
    let u_lid = 0.08;
    let dims = GridDims::new2d(n, n);
    let mut solver = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.6))
        .pool(ThreadPool::new(4))
        .build();
    solver.flags_mut().set_box_walls();
    solver.flags_mut().paint_lid([u_lid, 0.0, 0.0]);
    solver.initialize_uniform(1.0, [0.0; 3]);
    solver.run_checked(6000, 1000).unwrap();

    let m = solver.macroscopic();
    let upper = m.u[dims.idx(n / 2, 3 * n / 4, 0)][0];
    let lower = m.u[dims.idx(n / 2, n / 4, 0)][0];
    assert!(upper > 1e-4, "flow under the lid should follow it: {upper}");
    assert!(
        lower < -1e-5,
        "return flow at the bottom should reverse: {lower}"
    );
}

/// Channel flow driven by an inlet relaxes toward a parabolic profile
/// downstream (Poiseuille), with no-slip at both walls.
#[test]
fn channel_flow_profile_is_parabolic_downstream() {
    let (nx, ny) = (120usize, 31usize);
    let u_in = 0.04;
    let dims = GridDims::new2d(nx, ny);
    let mut solver = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(1.0)).build();
    solver.flags_mut().paint_channel_walls_y();
    solver
        .flags_mut()
        .paint_inflow_outflow_x(1.0, [u_in, 0.0, 0.0]);
    solver.initialize_uniform(1.0, [u_in, 0.0, 0.0]);
    solver.run_checked(8000, 2000).unwrap();

    let m = solver.macroscopic();
    let xs = 3 * nx / 4;
    let profile: Vec<Scalar> = (0..ny).map(|y| m.u[dims.idx(xs, y, 0)][0]).collect();
    let umax = profile.iter().cloned().fold(0.0, Scalar::max);
    // Parabola with halfway walls: u(s) ∝ s (2h − s), s = y − 0.5, h = (ny−2)/2.
    let h = (ny - 2) as Scalar / 2.0;
    let mut rms = 0.0;
    for y in 1..ny - 1 {
        let s = y as Scalar - 0.5;
        let para = umax * s * (2.0 * h - s) / (h * h);
        rms += (profile[y] - para) * (profile[y] - para);
    }
    let rms = (rms / (ny - 2) as Scalar).sqrt() / umax;
    assert!(rms < 0.05, "profile RMS off parabola: {:.2}%", rms * 100.0);
    // The equilibrium inlet is a "soft" boundary: the operating flux settles
    // below the nominal plug value, but the centerline still ends above the
    // section mean (parabolic shape) and the mass flux must be conserved along
    // the channel at steady state.
    assert!(umax > u_in, "centerline {umax} vs inlet {u_in}");
    let flux = |x: usize| -> Scalar {
        (1..ny - 1)
            .map(|y| m.u[dims.idx(x, y, 0)][0] * m.rho[dims.idx(x, y, 0)])
            .sum()
    };
    let (f_in, f_mid, f_out) = (flux(2), flux(nx / 2), flux(nx - 3));
    assert!(
        (f_in - f_mid).abs() / f_in < 1e-3 && (f_mid - f_out).abs() / f_in < 1e-3,
        "flux not conserved along the channel: {f_in} {f_mid} {f_out}"
    );
}

/// The Smagorinsky LES closure keeps an under-resolved driven flow stable
/// where the plain BGK viscosity is near the limit, and stays conservative.
#[test]
fn smagorinsky_les_is_stable_and_conservative_at_low_tau() {
    let n = 40usize;
    let dims = GridDims::new2d(n, n);
    let les = CollisionKind::SmagorinskyLes(
        SmagorinskyParams::new(BgkParams::from_tau(0.51), 0.16).unwrap(),
    );
    let mut solver = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(0.51))
        .collision(les)
        .build();
    solver.flags_mut().set_box_walls();
    solver.flags_mut().paint_lid([0.12, 0.0, 0.0]);
    solver.initialize_uniform(1.0, [0.0; 3]);
    let m0 = solver.stats().mass;
    solver
        .run_checked(3000, 200)
        .expect("LES run must stay finite");
    let s = solver.stats();
    assert!((s.mass - m0).abs() / m0 < 1e-10, "mass drift under LES");
    assert!(s.max_velocity < 0.6, "runaway velocity {}", s.max_velocity);
}

/// The sharp NEBB velocity inlet must deliver the imposed flux exactly —
/// the capability the soft equilibrium inlet lacks (it settles ~20-30 % low
/// in the same channel; see `channel_flow_profile_is_parabolic_downstream`).
#[test]
fn nebb_inlet_delivers_the_imposed_flux() {
    let (nx, ny) = (80usize, 25usize);
    let u_in = 0.04;
    let dims = GridDims::new2d(nx, ny);
    let mut solver = Solver::<D2Q9>::builder(dims, BgkParams::from_tau(1.0)).build();
    solver.flags_mut().paint_channel_walls_y();
    solver
        .flags_mut()
        .paint_nebb_inflow_outflow_x([u_in, 0.0, 0.0], 1.0);
    // Re-seal the corners (walls take precedence at the duct corners).
    for x in [0, nx - 1] {
        solver.flags_mut().set(x, 0, 0, NodeKind::Wall);
        solver.flags_mut().set(x, ny - 1, 0, NodeKind::Wall);
    }
    solver.initialize_uniform(1.0, [u_in, 0.0, 0.0]);
    solver.run_checked(12_000, 2_000).unwrap();

    let m = solver.macroscopic();
    // Flux through a mid-channel section vs the imposed plug flux over the
    // *interior* inlet cells (the wall-adjacent inlet cells carry the no-slip
    // deficit, as in any real duct).
    let flux_mid: Scalar = (1..ny - 1)
        .map(|y| m.rho[dims.idx(nx / 2, y, 0)] * m.u[dims.idx(nx / 2, y, 0)][0])
        .sum();
    let imposed: Scalar = u_in * (ny - 2) as Scalar;
    let ratio = flux_mid / imposed;
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "NEBB flux ratio {ratio:.3} (soft inlet gives ~0.7 here)"
    );
    // And the inlet plane itself carries u_in exactly on interior cells.
    let u_inlet = m.u[dims.idx(0, ny / 2, 0)][0];
    assert!(
        (u_inlet - u_in).abs() < 1e-9,
        "inlet velocity {u_inlet} vs imposed {u_in}"
    );
}

/// Force-driven periodic Poiseuille flow: with the Guo forcing scheme the
/// steady profile is the exact parabola `u(s) = F s (2h − s) / (2ρν)` with
/// halfway walls — a sharper validation than the inlet-driven channel because
/// there is no development length and the analytic amplitude is known.
#[test]
fn body_force_driven_poiseuille_matches_analytic_amplitude() {
    let (nx, ny) = (4usize, 27usize);
    let tau = 0.9;
    let params = BgkParams::from_tau(tau);
    let nu = params.viscosity();
    let fx = 1.0e-6;

    let dims = GridDims::new2d(nx, ny);
    let mut solver = Solver::<D2Q9>::builder(dims, params)
        .collision(CollisionKind::BgkForced {
            params,
            force: [fx, 0.0, 0.0],
        })
        .build();
    // Walls top and bottom; periodic in x.
    for x in 0..nx {
        solver.flags_mut().set(x, 0, 0, NodeKind::Wall);
        solver.flags_mut().set(x, ny - 1, 0, NodeKind::Wall);
    }
    solver.initialize_uniform(1.0, [0.0; 3]);
    solver.run(30_000);

    let m = solver.macroscopic();
    // Half-width with halfway bounce-back walls: h = (ny − 2)/2.
    let h = (ny - 2) as Scalar / 2.0;
    let mut max_err: Scalar = 0.0;
    let mut umax_measured: Scalar = 0.0;
    for y in 1..ny - 1 {
        let s = y as Scalar - 0.5;
        let analytic = fx * s * (2.0 * h - s) / (2.0 * nu);
        let got = m.u[dims.idx(nx / 2, y, 0)][0];
        umax_measured = umax_measured.max(got);
        max_err = max_err.max((got - analytic).abs());
    }
    let umax_analytic = fx * h * h / (2.0 * nu);
    assert!(
        max_err / umax_analytic < 0.01,
        "profile error {:.3}% of u_max (analytic {umax_analytic:.3e}, got {umax_measured:.3e})",
        max_err / umax_analytic * 100.0
    );
}

/// Galilean check: a uniform flow through a fully periodic box is an exact
/// steady state of the discrete dynamics for every 3-D lattice.
#[test]
fn uniform_flow_is_exact_steady_state_on_all_lattices() {
    fn check<L: Lattice>() {
        let dims = GridDims::new(6, 5, 4);
        let mut solver = Solver::<L>::builder(dims, BgkParams::from_tau(0.7)).build();
        solver.initialize_uniform(1.0, [0.04, -0.02, 0.01]);
        solver.run(10);
        let m = solver.macroscopic();
        for c in 0..dims.cells() {
            assert!((m.rho[c] - 1.0).abs() < 1e-12, "{}: rho drift", L::NAME);
            assert!((m.u[c][0] - 0.04).abs() < 1e-12, "{}: u drift", L::NAME);
        }
    }
    check::<D3Q15>();
    check::<D3Q19>();
    check::<D3Q27>();
}
