//! Cross-crate equivalence: the Sunway core-group emulator (swlb-arch) must
//! reproduce the reference solver (swlb-core) exactly while moving every byte
//! through the LDM hierarchy — and its traffic counters must be consistent
//! with the performance model's accounting.

use swlb_arch::cpe::{CoreGroupExecutor, FusionMode, SharingMode};
use swlb_arch::machine::MachineSpec;
use swlb_arch::perf::BYTES_PER_LUP;
use swlb_core::collision::{BgkParams, CollisionKind};
use swlb_core::flags::FlagField;
use swlb_core::geometry::GridDims;
use swlb_core::lattice::D3Q19;
use swlb_core::layout::{PopField, SoaField};
use swlb_core::prelude::Solver;
use swlb_mesh::{cylinder_z_mask, sphere_mask};

fn run_reference(dims: GridDims, flags: &FlagField, tau: f64, steps: usize) -> SoaField<D3Q19> {
    let mut s = Solver::<D3Q19>::builder(dims, BgkParams::from_tau(tau))
        .collision(CollisionKind::Bgk(BgkParams::from_tau(tau)))
        .build();
    *s.flags_mut() = flags.clone();
    s.initialize_field(|x, y, z| {
        let v = 0.006 * ((x * 3 + y * 7 + z * 5) % 17) as f64;
        (1.0 + v, [0.02 - v * 0.1, v * 0.05, -0.01])
    });
    s.run(steps as u64);
    s.state().clone()
}

fn run_emulated(
    dims: GridDims,
    flags: &FlagField,
    tau: f64,
    steps: usize,
    exec: &CoreGroupExecutor,
) -> SoaField<D3Q19> {
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(flags, &mut src, |x, y, z| {
        let v = 0.006 * ((x * 3 + y * 7 + z * 5) % 17) as f64;
        (1.0 + v, [0.02 - v * 0.1, v * 0.05, -0.01])
    });
    let mut dst = SoaField::<D3Q19>::new(dims);
    for _ in 0..steps {
        exec.step(flags, &src, &mut dst, 1.0 / tau).unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[test]
fn emulator_trajectory_matches_solver_on_cylinder_mesh() {
    let dims = GridDims::new(14, 10, 6);
    let mut flags = FlagField::new(dims);
    flags.paint_channel_walls_y();
    flags.paint_inflow_outflow_x(1.0, [0.03, 0.0, 0.0]);
    flags
        .apply_mask(&cylinder_z_mask(dims, 5.0, 5.0, 1.8))
        .unwrap();

    let exec = CoreGroupExecutor::new(MachineSpec::taihulight()).with_cpes(8);
    let want = run_reference(dims, &flags, 0.8, 4);
    let got = run_emulated(dims, &flags, 0.8, 4, &exec);
    // Exact when the solver dispatches with scalar semantics; under
    // auto-selected AVX2 the solver's fused multiply-adds differ by rounding.
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
    for cell in 0..dims.cells() {
        for q in 0..19 {
            let (w, g) = (want.get(cell, q), got.get(cell, q));
            assert!((w - g).abs() <= tol, "cell {cell} q {q}: {w} vs {g}");
        }
    }
}

#[test]
fn emulator_matches_on_the_pro_with_sphere_mesh() {
    let dims = GridDims::new(10, 12, 8);
    let mut flags = FlagField::new(dims);
    flags.set_box_walls();
    flags
        .apply_mask(&sphere_mask(dims, [5.0, 6.0, 4.0], 2.0))
        .unwrap();

    let exec = CoreGroupExecutor::new(MachineSpec::new_sunway()).with_cpes(6);
    let want = run_reference(dims, &flags, 0.7, 3);
    let got = run_emulated(dims, &flags, 0.7, 3, &exec);
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
    for cell in 0..dims.cells() {
        for q in 0..19 {
            let (w, g) = (want.get(cell, q), got.get(cell, q));
            assert!((w - g).abs() <= tol, "cell {cell} q {q}: {w} vs {g}");
        }
    }
}

#[test]
fn emulator_matches_with_nebb_boundaries() {
    let dims = GridDims::new(12, 8, 5);
    let mut flags = FlagField::new(dims);
    flags.paint_channel_walls_y();
    flags.paint_nebb_inflow_outflow_x([0.03, 0.0, 0.0], 1.0);
    let exec = CoreGroupExecutor::new(MachineSpec::taihulight()).with_cpes(4);
    let want = run_reference(dims, &flags, 0.8, 4);
    let got = run_emulated(dims, &flags, 0.8, 4, &exec);
    let tol = swlb_core::simd::dispatch_tolerance() * 100.0;
    for cell in 0..dims.cells() {
        for q in 0..19 {
            let (w, g) = (want.get(cell, q), got.get(cell, q));
            assert!((w - g).abs() <= tol, "cell {cell} q {q}: {w} vs {g}");
        }
    }
}

#[test]
fn emulated_dma_traffic_is_close_to_the_papers_bytes_per_lup() {
    // The model charges 380 B per lattice update (§IV-C.3). The emulator's
    // measured DMA traffic per cell should be of that order: more than the
    // pure payload (2 × 19 × 8 = 304 B, since halo re-reads add overhead),
    // and well under 2× once sharing and the sliding window reuse data.
    let dims = GridDims::new(12, 16, 16);
    let flags = FlagField::new(dims);
    let exec = CoreGroupExecutor::new(MachineSpec::taihulight()).with_cpes(8);
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, |_, _, _| {
        (1.0, [0.01, 0.0, 0.0])
    });
    let mut dst = SoaField::<D3Q19>::new(dims);
    let c = exec.step(&flags, &src, &mut dst, 1.25).unwrap();
    let per_cell = c.dma.bytes() as f64 / dims.cells() as f64;
    assert!(
        per_cell > 304.0 && per_cell < 2.0 * BYTES_PER_LUP,
        "emulated DMA bytes/LUP = {per_cell}"
    );
}

#[test]
fn sharing_and_fusion_compose() {
    // All four (fusion × sharing) configurations produce identical physics;
    // traffic is ordered: fused+shared < fused+dma < split+shared < split+dma.
    let dims = GridDims::new(8, 12, 10);
    let flags = FlagField::new(dims);
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, |x, y, z| {
        (1.0 + 0.001 * ((x + y + z) % 5) as f64, [0.01, 0.0, 0.0])
    });

    let mk = |fusion, sharing| {
        CoreGroupExecutor::new(MachineSpec::taihulight())
            .with_cpes(6)
            .with_fusion(fusion)
            .with_sharing(sharing)
    };
    let configs = [
        mk(FusionMode::Fused, SharingMode::NeighborFabric),
        mk(FusionMode::Fused, SharingMode::DmaOnly),
        mk(FusionMode::Split, SharingMode::NeighborFabric),
        mk(FusionMode::Split, SharingMode::DmaOnly),
    ];
    let mut bytes = Vec::new();
    let mut fields = Vec::new();
    for exec in &configs {
        let mut dst = SoaField::<D3Q19>::new(dims);
        let c = exec.step(&flags, &src, &mut dst, 1.25).unwrap();
        bytes.push(c.dma.bytes());
        fields.push(dst);
    }
    // Identical results everywhere (split collides after streaming, which for
    // BGK equals the fused result exactly).
    for f in &fields[1..] {
        for cell in 0..dims.cells() {
            for q in 0..19 {
                assert!((fields[0].get(cell, q) - f.get(cell, q)).abs() < 1e-15);
            }
        }
    }
    assert!(bytes[0] < bytes[1], "sharing must cut DMA: {bytes:?}");
    assert!(bytes[1] < bytes[3], "fusion must cut DMA: {bytes:?}");
    assert!(
        bytes[2] < bytes[3],
        "sharing helps split mode too: {bytes:?}"
    );
}

#[test]
fn ldm_pressure_stays_within_capacity_on_both_machines() {
    let dims = GridDims::new(10, 12, 40);
    let flags = FlagField::new(dims);
    let mut src = SoaField::<D3Q19>::new(dims);
    swlb_core::kernels::initialize_with::<D3Q19, _>(&flags, &mut src, |_, _, _| (1.0, [0.0; 3]));
    for machine in [MachineSpec::taihulight(), MachineSpec::new_sunway()] {
        let exec = CoreGroupExecutor::new(machine).with_cpes(4);
        let mut dst = SoaField::<D3Q19>::new(dims);
        let c = exec.step(&flags, &src, &mut dst, 1.25).unwrap();
        assert!(
            c.ldm_high_water <= machine.cg.ldm_bytes,
            "{}: LDM high water {} exceeds {}",
            machine.kind.name(),
            c.ldm_high_water,
            machine.cg.ldm_bytes
        );
        // And the emulator actually used a significant fraction of it.
        assert!(c.ldm_high_water > machine.cg.ldm_bytes / 20);
    }
}
